//! Proves the NUISE hot path is allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator with a
//! thread-local allocation counter; after one warm-up call populates
//! the [`NuiseWorkspace`] scratch memory, a further `nuise_step_into`
//! must perform **zero** heap allocations — the property the per-mode
//! workspaces exist to guarantee (and the reason the fan-out can run
//! at control-loop rates without allocator contention across workers).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use roboads_core::{nuise_step, nuise_step_into, NuiseInput, NuiseWorkspace, RoboAdsConfig};
use roboads_core::{FleetEngine, Linearization, ModeSet, RecorderConfig, RoboAds, RobotInput};
use roboads_linalg::{Matrix, Vector};
use roboads_models::presets;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: defers all memory management to the system allocator; the
// added bookkeeping is a plain thread-local counter (`Cell<u64>` has a
// const initializer and no destructor, so bumping it cannot recurse
// into the allocator).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations performed on this thread while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn warmed_up_nuise_step_into_is_allocation_free() {
    let system = presets::khepera_system();
    let modes = ModeSet::complete(&system);
    let config = RoboAdsConfig::paper_defaults();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let p0 = Matrix::identity(3) * config.initial_covariance;
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings: Vec<Vector> = (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(&x1))
        .collect();
    let linearization = Linearization::PerIteration;

    for (m, mode) in modes.modes().iter().enumerate() {
        let mut ws = NuiseWorkspace::new(&system, mode);
        let mut out = ws.new_output();
        let input = NuiseInput {
            system: &system,
            mode,
            x_prev: &x0,
            p_prev: &p0,
            u_prev: &u,
            readings: &readings,
            linearization: &linearization,
            compensate: config.compensate_actuator_anomalies,
        };

        // Sanity: the counter actually sees the allocating reference
        // implementation at work.
        let reference_allocs = allocations_during(|| {
            nuise_step(input).unwrap();
        });
        assert!(
            reference_allocs > 0,
            "counting allocator failed to observe the allocating path"
        );

        // Warm-up: first call may still fault in lazily-sized output
        // storage.
        nuise_step_into(input, &mut ws, &mut out).unwrap();

        // Steady state: zero heap traffic.
        let steady_allocs = allocations_during(|| {
            for _ in 0..3 {
                nuise_step_into(input, &mut ws, &mut out).unwrap();
            }
        });
        assert_eq!(
            steady_allocs, 0,
            "mode {m}: warmed-up nuise_step_into allocated {steady_allocs} times"
        );
    }
}

#[test]
fn warmed_up_sequential_fleet_batch_is_allocation_free() {
    // The fleet hot path — engine step, decision maker, report refill,
    // for every robot — must be zero-alloc once warm: this is what lets
    // a batch scale to hundreds of robots per tick without allocator
    // traffic. The property is asserted on the sequential fleet
    // (threads = 1, the per-robot code path all configurations share);
    // a parallel fleet adds only the pool's per-job boxes, O(workers).
    //
    // Asserted for every slab lane width: `1` is the scalar per-robot
    // path, `4`/`8` the SIMD-batched slab path (load → batched run →
    // scatter → commit, whose scratch is the per-job `SlabJob` bank
    // sized at first resolution). The robot count is deliberately not a
    // multiple of the lane width, so the warm path includes a masked
    // remainder tile.
    for lanes in [1, 4, 8] {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        const ROBOTS: usize = 11;
        let modes = ModeSet::one_reference_per_sensor(&system);
        let config = RoboAdsConfig::paper_defaults().with_slab_lanes(lanes);
        let mut fleet = FleetEngine::new(
            (0..ROBOTS)
                .map(|_| {
                    RoboAds::new(system.clone(), config.clone(), x0.clone(), modes.clone()).unwrap()
                })
                .collect(),
            1,
        );
        let mut x_true = x0;

        // Warm-up: several steps so every lazily-sized buffer — decision
        // scratch maps, report vectors, per-sensor slots, slab job banks
        // — reaches its steady-state shape, including post-spoof shapes
        // (mode selection shifts which per-sensor views come from which
        // mode).
        for k in 0..6 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings: Vec<Vector> = (0..system.sensor_count())
                .map(|i| system.sensor(i).unwrap().measure(&x_true))
                .collect();
            if k >= 3 {
                readings[0][0] += 0.07;
            }
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                };
                ROBOTS
            ];
            fleet.step_batch(&inputs).unwrap();
        }

        // Steady state: zero heap traffic across whole batches.
        x_true = system.dynamics().step(&x_true, &u);
        let mut readings: Vec<Vector> = (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(&x_true))
            .collect();
        readings[0][0] += 0.07;
        let inputs = vec![
            RobotInput {
                u_prev: &u,
                readings: &readings,
            };
            ROBOTS
        ];
        let steady_allocs = allocations_during(|| {
            for _ in 0..3 {
                fleet.step_batch(&inputs).unwrap();
            }
        });
        assert_eq!(
            steady_allocs, 0,
            "warmed-up fleet step_batch (slab_lanes = {lanes}) \
             allocated {steady_allocs} times"
        );
    }
}

#[test]
fn warmed_up_grouped_fleet_batch_is_allocation_free() {
    // The heterogeneous partition must not smuggle allocation back into
    // the warm path: once `resolve_slab` has reordered the cells
    // group-major and sized each group's slab bank, a mixed-signature
    // batch walks the groups with `split_at_mut` and reuses the per-job
    // scratch — zero heap traffic, exactly like the homogeneous fleet.
    // Two pointer-distinct Khepera instances interleaved 11 + 9: at 4/8
    // lanes both groups slab (with masked remainder tiles); at 1 both
    // run scalar.
    for lanes in [1, 4, 8] {
        let system_a = presets::khepera_system();
        let system_b = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        const ROBOTS: usize = 20;
        let detector_for = |system: &roboads_models::RobotSystem| {
            RoboAds::new(
                system.clone(),
                RoboAdsConfig::paper_defaults().with_slab_lanes(lanes),
                x0.clone(),
                ModeSet::one_reference_per_sensor(system),
            )
            .unwrap()
        };
        // Interleaved: robots 0,2,4,… group a (11 robots), 1,3,5,…,17
        // group b (9 robots) — the reorder genuinely permutes cells.
        let mut fleet = FleetEngine::new(
            (0..ROBOTS)
                .map(|i| {
                    detector_for(if i % 2 == 0 || i >= 18 {
                        &system_a
                    } else {
                        &system_b
                    })
                })
                .collect(),
            1,
        );
        let mut x_true = x0.clone();

        for k in 0..6 {
            x_true = system_a.dynamics().step(&x_true, &u);
            let mut readings: Vec<Vector> = (0..system_a.sensor_count())
                .map(|i| system_a.sensor(i).unwrap().measure(&x_true))
                .collect();
            if k >= 3 {
                readings[0][0] += 0.07;
            }
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                };
                ROBOTS
            ];
            fleet.step_batch(&inputs).unwrap();
        }
        if lanes > 1 {
            assert_eq!(fleet.slab_groups(), 2);
            assert_eq!(fleet.slab_robots(), ROBOTS);
        } else {
            assert_eq!(fleet.scalar_robots(), ROBOTS);
        }

        x_true = system_a.dynamics().step(&x_true, &u);
        let mut readings: Vec<Vector> = (0..system_a.sensor_count())
            .map(|i| system_a.sensor(i).unwrap().measure(&x_true))
            .collect();
        readings[0][0] += 0.07;
        let inputs = vec![
            RobotInput {
                u_prev: &u,
                readings: &readings,
            };
            ROBOTS
        ];
        let steady_allocs = allocations_during(|| {
            for _ in 0..3 {
                fleet.step_batch(&inputs).unwrap();
            }
        });
        assert_eq!(
            steady_allocs, 0,
            "warmed-up grouped fleet step_batch (slab_lanes = {lanes}) \
             allocated {steady_allocs} times"
        );
    }
}

#[test]
fn warmed_up_lazy_wake_sleep_cycle_is_allocation_free() {
    // The adaptive mode bank (DESIGN.md §17) must not buy its quiescent
    // speedup with allocator traffic at the transitions: dormant-mode
    // audits, the wake re-anchor (full-bank re-activation) and the
    // re-sleep all reuse the filter states and scratch sized at
    // construction. Warm up with one complete sleep → wake → re-sleep
    // cycle, then assert a second identical cycle allocates zero times.
    use roboads_core::{ActivationPolicy, DetectionReport};
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::lazy_defaults()),
        x0.clone(),
        ModeSet::one_reference_per_sensor(&system),
    )
    .unwrap();
    let mut report = DetectionReport::blank();
    let mut x_true = x0;

    // One cycle = long clean stretch (bank sleeps, audits run), a spoof
    // burst (χ²/consistency wake, alarm, identification), then clean
    // recovery (windows drain, bank re-sleeps). Readings are built
    // outside the measured region; only `step_into` is counted.
    let cycle = |ads: &mut RoboAds, report: &mut DetectionReport, x: &mut Vector, measure: bool| {
        let mut spoofed_while_asleep = false;
        let mut step_allocs = 0;
        for k in 0..60 {
            *x = system.dynamics().step(x, &u);
            let mut readings: Vec<Vector> = (0..system.sensor_count())
                .map(|i| system.sensor(i).unwrap().measure(x))
                .collect();
            if (25..33).contains(&k) {
                if !ads.bank_awake() {
                    spoofed_while_asleep = true;
                }
                readings[0][0] += 0.07;
            }
            if measure {
                step_allocs += allocations_during(|| {
                    ads.step_into(&u, &readings, report).unwrap();
                });
            } else {
                ads.step_into(&u, &readings, report).unwrap();
            }
        }
        (spoofed_while_asleep, step_allocs)
    };

    // Warm-up cycle: every buffer — including post-identification report
    // shapes and the woken bank's scratch — reaches steady state.
    let (woke, _) = cycle(&mut ads, &mut report, &mut x_true, false);
    assert!(woke, "warm-up spoof burst must hit a sleeping bank");
    assert!(!ads.bank_awake(), "bank must re-sleep after recovery");
    assert_eq!(ads.active_modes(), 2);

    // Second cycle: zero heap traffic through sleep, audit, wake,
    // alarm and re-sleep.
    let (woke, steady_allocs) = cycle(&mut ads, &mut report, &mut x_true, true);
    assert!(woke, "measured spoof burst must hit a sleeping bank");
    assert!(!ads.bank_awake());
    assert_eq!(
        steady_allocs, 0,
        "lazy wake/sleep cycle allocated {steady_allocs} times"
    );
}

#[test]
fn warmed_up_flight_recorder_tick_is_allocation_free() {
    // The flight recorder rides the control loop's hot path: on a clean
    // tick, `record_tick` must refill a pre-sized ring slot in place and
    // touch the allocator zero times. The ring capacity is deliberately
    // tiny so the measured window includes wraparound (slot reuse), the
    // recorder's steady state. Allocation is reserved for the alarm
    // edge, where a capsule is frozen — the same boundary the forensic
    // log draws.
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        ModeSet::one_reference_per_sensor(&system),
    )
    .unwrap()
    .with_recorder(RecorderConfig {
        capacity: 3,
        ..RecorderConfig::default()
    });

    let mut x = x0;
    let step = |ads: &mut RoboAds, x: &mut Vector| {
        *x = system.dynamics().step(x, &u);
        let readings: Vec<Vector> = (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect();
        let report = ads.step(&u, &readings).unwrap();
        (report, readings)
    };

    // Warm-up: fill every ring slot (and wrap once) so each slot's
    // vectors have reached steady-state capacity.
    for k in 0..5 {
        let (report, readings) = step(&mut ads, &mut x);
        ads.record_tick(k, &u, &readings, &report);
    }

    for k in 5..8 {
        let (report, readings) = step(&mut ads, &mut x);
        let recording_allocs = allocations_during(|| ads.record_tick(k, &u, &readings, &report));
        assert_eq!(
            recording_allocs, 0,
            "tick {k}: warmed-up record_tick allocated {recording_allocs} times"
        );
    }
    assert_eq!(ads.recorder().unwrap().recorded(), 8);
}
