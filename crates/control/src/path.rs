use crate::{ControlError, Result};

/// A piecewise-linear waypoint path through the arena.
///
/// Produced by the [`crate::RrtStar`] planner and consumed by the path
/// trackers, which chase a *lookahead point* a fixed arc-length ahead of
/// the robot's current progress along the path.
///
/// # Example
///
/// ```
/// use roboads_control::Path;
///
/// # fn main() -> Result<(), roboads_control::ControlError> {
/// let path = Path::new(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])?;
/// assert!((path.length() - 2.0).abs() < 1e-12);
/// let (x, y) = path.point_at(1.5);
/// assert!((x - 1.0).abs() < 1e-12 && (y - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Path {
    waypoints: Vec<(f64, f64)>,
    /// Cumulative arc length at each waypoint; `cumulative[0] = 0`.
    cumulative: Vec<f64>,
}

impl Path {
    /// Creates a path from at least two waypoints.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for fewer than two
    /// waypoints or non-finite coordinates.
    pub fn new(waypoints: Vec<(f64, f64)>) -> Result<Self> {
        if waypoints.len() < 2 {
            return Err(ControlError::InvalidParameter {
                name: "waypoints",
                value: format!("{} points", waypoints.len()),
            });
        }
        if waypoints
            .iter()
            .any(|(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(ControlError::InvalidParameter {
                name: "waypoints",
                value: "non-finite coordinate".into(),
            });
        }
        let mut cumulative = Vec::with_capacity(waypoints.len());
        cumulative.push(0.0);
        for pair in waypoints.windows(2) {
            let d = dist(pair[0], pair[1]);
            cumulative.push(cumulative.last().expect("nonempty") + d);
        }
        Ok(Path {
            waypoints,
            cumulative,
        })
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[(f64, f64)] {
        &self.waypoints
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Paths always have ≥ 2 waypoints, so this is always `false`; kept
    /// for the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("nonempty")
    }

    /// The final waypoint (mission goal).
    pub fn goal(&self) -> (f64, f64) {
        *self.waypoints.last().expect("nonempty")
    }

    /// The point at arc length `s` from the start, clamped to the ends.
    pub fn point_at(&self, s: f64) -> (f64, f64) {
        if s <= 0.0 {
            return self.waypoints[0];
        }
        if s >= self.length() {
            return self.goal();
        }
        // Find the segment containing s.
        let seg = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite lengths"))
        {
            Ok(i) => i.min(self.waypoints.len() - 2),
            Err(i) => i - 1,
        };
        let seg_len = self.cumulative[seg + 1] - self.cumulative[seg];
        let t = if seg_len > 0.0 {
            (s - self.cumulative[seg]) / seg_len
        } else {
            0.0
        };
        let (x0, y0) = self.waypoints[seg];
        let (x1, y1) = self.waypoints[seg + 1];
        (x0 + t * (x1 - x0), y0 + t * (y1 - y0))
    }

    /// Arc length of the point on the path closest to `(x, y)`
    /// (the robot's *progress*), found by projecting onto each segment.
    pub fn progress_of(&self, x: f64, y: f64) -> f64 {
        let mut best_s = 0.0;
        let mut best_d2 = f64::INFINITY;
        for (i, pair) in self.waypoints.windows(2).enumerate() {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let (dx, dy) = (x1 - x0, y1 - y0);
            let len2 = dx * dx + dy * dy;
            let t = if len2 > 0.0 {
                (((x - x0) * dx + (y - y0) * dy) / len2).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let (px, py) = (x0 + t * dx, y0 + t * dy);
            let d2 = (x - px).powi(2) + (y - py).powi(2);
            if d2 < best_d2 {
                best_d2 = d2;
                best_s = self.cumulative[i] + t * len2.sqrt();
            }
        }
        best_s
    }

    /// The lookahead target: the path point `lookahead` meters beyond the
    /// projection of `(x, y)` onto the path.
    pub fn lookahead_point(&self, x: f64, y: f64, lookahead: f64) -> (f64, f64) {
        self.point_at(self.progress_of(x, y) + lookahead)
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> Path {
        Path::new(vec![(0.0, 0.0), (2.0, 0.0), (2.0, 2.0)]).unwrap()
    }

    #[test]
    fn length_and_endpoints() {
        let p = l_path();
        assert_eq!(p.length(), 4.0);
        assert_eq!(p.goal(), (2.0, 2.0));
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn point_at_interpolates_and_clamps() {
        let p = l_path();
        assert_eq!(p.point_at(-1.0), (0.0, 0.0));
        assert_eq!(p.point_at(1.0), (1.0, 0.0));
        assert_eq!(p.point_at(3.0), (2.0, 1.0));
        assert_eq!(p.point_at(99.0), (2.0, 2.0));
    }

    #[test]
    fn point_at_exact_waypoint() {
        let p = l_path();
        let (x, y) = p.point_at(2.0);
        assert!((x - 2.0).abs() < 1e-12 && y.abs() < 1e-12);
    }

    #[test]
    fn progress_projects_onto_nearest_segment() {
        let p = l_path();
        // Slightly off the first segment.
        assert!((p.progress_of(1.0, 0.1) - 1.0).abs() < 1e-12);
        // Near the corner but closer to the second segment.
        assert!((p.progress_of(2.1, 1.0) - 3.0).abs() < 1e-12);
        // Before the start clamps to 0.
        assert_eq!(p.progress_of(-1.0, -1.0), 0.0);
    }

    #[test]
    fn lookahead_chases_along_the_path() {
        let p = l_path();
        let (x, y) = p.lookahead_point(1.0, 0.0, 0.5);
        assert!((x - 1.5).abs() < 1e-12 && y.abs() < 1e-12);
        // Lookahead past the corner bends with the path.
        let (x, y) = p.lookahead_point(1.8, 0.0, 1.0);
        assert!((x - 2.0).abs() < 1e-12);
        assert!((y - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_paths() {
        assert!(Path::new(vec![(0.0, 0.0)]).is_err());
        assert!(Path::new(vec![(0.0, 0.0), (f64::NAN, 1.0)]).is_err());
    }

    #[test]
    fn zero_length_segments_are_tolerated() {
        let p = Path::new(vec![(0.0, 0.0), (0.0, 0.0), (1.0, 0.0)]).unwrap();
        assert_eq!(p.length(), 1.0);
        assert_eq!(p.point_at(0.5), (0.5, 0.0));
    }
}
