//! Structure-of-arrays "slab" storage: K same-shaped matrices/vectors
//! interleaved lane-wise for cross-robot vectorization.
//!
//! A fleet of robots sharing one system model steps through identical
//! NUISE control flow per tick; the dense kernels involved operate on
//! small fixed-shape matrices, which vectorize poorly *within* a matrix
//! but perfectly *across* robots. A [`MatrixSlab<K>`] stores element
//! `(i, j)` of all K robots' matrices contiguously as a `[f64; K]` lane
//! group, so the plain inner `for l in 0..K` loops below compile to SIMD
//! lanes (LLVM autovectorizes the fixed-width arrays; no intrinsics, no
//! nightly features, no dependencies).
//!
//! # Bitwise contract
//!
//! Every kernel here is **bitwise identical per lane** to the scalar
//! in-place operation in [`crate::inplace`] (same loop structure, same
//! accumulation order, same pivot/convergence decisions applied
//! per-lane). Data-dependent branches in the scalar code (`if aik ==
//! 0.0 { continue }` zero-skips, LU pivot selection and singularity
//! skips, Jacobi rotation and convergence checks) become per-lane
//! *selects*: each lane takes exactly the value it would have taken in
//! the scalar code, and lanes that diverge simply mask their stores.
//! The fleet determinism suite pins slab output against the scalar path
//! with exact `==` comparisons.
//!
//! Lanes that hit a numeric failure (singular LU, non-converged Jacobi)
//! are reported via per-lane flags; their buffers may hold garbage
//! (inf/NaN propagated through masked arithmetic) which callers must
//! discard — IEEE arithmetic on garbage lanes cannot trap or affect
//! neighbouring lanes.
//!
//! Shape mismatches panic, matching [`crate::inplace`]'s contract: all
//! shapes come from a validated system description.
// Lane loops are written in index form (`for l in 0..K`) throughout:
// every kernel touches several slabs at the same lane, the trip count
// is the const generic K, and keeping one uniform shape is what makes
// the bitwise-pinned kernels reviewable against their scalar twins.
#![allow(clippy::needless_range_loop)]

use crate::pseudo::RANK_TOL;
use crate::{LinalgError, Matrix, Result, Vector};
use std::ops::{AddAssign, SubAssign};

/// Relative pivot threshold; equal to the scalar `LuWorkspace`'s for
/// identical per-lane singularity classification.
const PIVOT_TOL: f64 = 1e-13;

/// Jacobi sweep cap and convergence tolerance; equal to the scalar
/// `EigenWorkspace`'s.
const MAX_SWEEPS: usize = 64;
const CONVERGENCE_TOL: f64 = 1e-14;

fn assert_shape(op: &str, got: (usize, usize), want: (usize, usize)) {
    assert!(
        got == want,
        "{op}: destination shape {}x{} does not match required {}x{}",
        got.0,
        got.1,
        want.0,
        want.1
    );
}

/// K same-shaped dense matrices stored lane-interleaved: element
/// `(i, j)` of every lane lives in one `[f64; K]` group, row-major over
/// `(i, j)` exactly like [`Matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSlab<const K: usize> {
    rows: usize,
    cols: usize,
    data: Vec<[f64; K]>,
}

impl<const K: usize> MatrixSlab<K> {
    /// Allocates a `rows × cols` slab with every lane zeroed.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixSlab {
            rows,
            cols,
            data: vec![[0.0; K]; rows * cols],
        }
    }

    /// Number of rows (per lane).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (per lane).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` shape (per lane).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether each lane's matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Lane group at `(i, j)`.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> &[f64; K] {
        &self.data[i * self.cols + j]
    }

    /// Mutable lane group at `(i, j)`.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut [f64; K] {
        &mut self.data[i * self.cols + j]
    }

    /// Row `i` as a slice of lane groups.
    #[inline(always)]
    fn row(&self, i: usize) -> &[[f64; K]] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i` as a slice of lane groups.
    #[inline(always)]
    fn row_mut(&mut self, i: usize) -> &mut [[f64; K]] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Sets every entry of every lane to `value`.
    pub fn fill(&mut self, value: f64) {
        for g in &mut self.data {
            *g = [value; K];
        }
    }

    /// Overwrites all lanes with `src` (same shape required).
    pub fn copy_from(&mut self, src: &MatrixSlab<K>) {
        assert_shape("slab copy_from", self.shape(), src.shape());
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites lane `lane` with the scalar matrix `src`.
    pub fn load_lane(&mut self, lane: usize, src: &Matrix) {
        assert_shape("slab load_lane", self.shape(), src.shape());
        for (g, &s) in self.data.iter_mut().zip(src.as_slice()) {
            g[lane] = s;
        }
    }

    /// Copies lane `lane` out into the scalar matrix `dst`.
    pub fn store_lane(&self, lane: usize, dst: &mut Matrix) {
        assert_shape("slab store_lane", dst.shape(), self.shape());
        for (d, g) in dst.as_mut_slice().iter_mut().zip(&self.data) {
            *d = g[lane];
        }
    }

    /// Overwrites every lane with the identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if the slab is not square.
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "set_identity on {:?} slab", self.shape());
        let n = self.rows;
        self.fill(0.0);
        for i in 0..n {
            *self.at_mut(i, i) = [1.0; K];
        }
    }

    /// Writes each lane's transpose into `out`.
    pub fn transpose_into(&self, out: &mut MatrixSlab<K>) {
        assert_shape("slab transpose_into", out.shape(), (self.cols, self.rows));
        for i in 0..self.rows {
            for j in 0..self.cols {
                *out.at_mut(j, i) = *self.at(i, j);
            }
        }
    }

    /// Negates every entry of every lane in place.
    pub fn negate(&mut self) {
        for g in &mut self.data {
            for v in g {
                *v = -*v;
            }
        }
    }

    /// Per-lane `self · rhs` into `out`; bitwise identical per lane to
    /// [`Matrix::mul_into`] (same i-k-j loop; the scalar zero-skip
    /// becomes a per-lane select so each lane accumulates exactly the
    /// terms the scalar path would).
    pub fn mul_into(&self, rhs: &MatrixSlab<K>, out: &mut MatrixSlab<K>) {
        assert!(
            self.cols == rhs.rows,
            "slab mul_into of shapes {}x{} and {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
        assert_shape("slab mul_into", out.shape(), (self.rows, rhs.cols));
        out.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = *self.at(i, k);
                if aik.iter().all(|&v| v == 0.0) {
                    // Every lane skips: identical to the scalar
                    // `continue`, and skipping leaves `out` untouched
                    // in all lanes.
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    for l in 0..K {
                        if aik[l] != 0.0 {
                            o[l] += aik[l] * b[l];
                        }
                    }
                }
            }
        }
    }

    /// Per-lane `self · rhsᵀ` into `out`; bitwise identical per lane to
    /// [`Matrix::mul_transpose_into`].
    pub fn mul_transpose_into(&self, rhs: &MatrixSlab<K>, out: &mut MatrixSlab<K>) {
        assert!(
            self.cols == rhs.cols,
            "slab mul_transpose_into of shapes {}x{} and {}x{}ᵀ",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
        assert_shape(
            "slab mul_transpose_into",
            out.shape(),
            (self.rows, rhs.rows),
        );
        out.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = *self.at(i, k);
                if aik.iter().all(|&v| v == 0.0) {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b = rhs.at(j, k);
                    for l in 0..K {
                        if aik[l] != 0.0 {
                            o[l] += aik[l] * b[l];
                        }
                    }
                }
            }
        }
    }

    /// Per-lane `self · rhs` with a lane-uniform (broadcast) right-hand
    /// side; bitwise identical per lane to [`Matrix::mul_into`] with
    /// `rhs` as the scalar operand.
    pub fn mul_broadcast_into(&self, rhs: &Matrix, out: &mut MatrixSlab<K>) {
        assert!(
            self.cols == rhs.rows(),
            "slab mul_broadcast_into of shapes {}x{} and {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        assert_shape(
            "slab mul_broadcast_into",
            out.shape(),
            (self.rows, rhs.cols()),
        );
        out.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = *self.at(i, k);
                if aik.iter().all(|&v| v == 0.0) {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(&rhs.as_slice()[k * rhs.cols()..]) {
                    for l in 0..K {
                        if aik[l] != 0.0 {
                            o[l] += aik[l] * b;
                        }
                    }
                }
            }
        }
    }

    /// `lhs · selfᵀ` with a lane-uniform (broadcast) left-hand side,
    /// written into `out`; bitwise identical per lane to
    /// [`Matrix::mul_transpose_into`] with `lhs` as the scalar operand.
    /// Because `aik` is lane-uniform, the scalar zero-skip is a uniform
    /// `continue` — exactly the branch the scalar code takes.
    pub fn premul_transpose_into(&self, lhs: &Matrix, out: &mut MatrixSlab<K>) {
        assert!(
            lhs.cols() == self.cols,
            "slab premul_transpose_into of shapes {}x{} and {}x{}ᵀ",
            lhs.rows(),
            lhs.cols(),
            self.rows,
            self.cols
        );
        assert_shape(
            "slab premul_transpose_into",
            out.shape(),
            (lhs.rows(), self.rows),
        );
        out.fill(0.0);
        for i in 0..lhs.rows() {
            for k in 0..lhs.cols() {
                let aik = lhs[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b = self.at(j, k);
                    for l in 0..K {
                        o[l] += aik * b[l];
                    }
                }
            }
        }
    }

    /// Per-lane `self · v` into `out`; bitwise identical per lane to
    /// [`Matrix::mul_vec_into`] (per-row accumulator, j-ascending).
    pub fn mul_vec_into(&self, v: &VectorSlab<K>, out: &mut VectorSlab<K>) {
        assert!(
            self.cols == v.len(),
            "slab mul_vec_into of {}x{} slab with length-{} vector slab",
            self.rows,
            self.cols,
            v.len()
        );
        assert!(
            out.len() == self.rows,
            "slab mul_vec_into: destination length {} does not match {} rows",
            out.len(),
            self.rows
        );
        for i in 0..self.rows {
            let mut acc = [0.0; K];
            let row = self.row(i);
            for (a, vj) in row.iter().zip(&v.data) {
                for l in 0..K {
                    acc[l] += a[l] * vj[l];
                }
            }
            out.data[i] = acc;
        }
    }

    /// Replaces every lane with its symmetric part; bitwise identical
    /// per lane to [`Matrix::symmetrize_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for a non-square slab.
    pub fn symmetrize_in_place(&mut self) -> Result<()> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let x = *self.at(i, j);
                let y = *self.at(j, i);
                let mut avg = [0.0; K];
                for l in 0..K {
                    avg[l] = 0.5 * (x[l] + y[l]);
                }
                *self.at_mut(i, j) = avg;
                *self.at_mut(j, i) = avg;
            }
        }
        Ok(())
    }

    /// Per-lane `self · p · selfᵀ` into `out` via `scratch`; bitwise
    /// identical per lane to [`Matrix::congruence_into`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `p` is not square
    /// with side `self.cols()`.
    pub fn congruence_into(
        &self,
        p: &MatrixSlab<K>,
        scratch: &mut MatrixSlab<K>,
        out: &mut MatrixSlab<K>,
    ) -> Result<()> {
        if p.rows != self.cols || p.cols != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "congruence",
                lhs: self.shape(),
                rhs: p.shape(),
            });
        }
        p.mul_transpose_into(self, scratch);
        self.mul_into(scratch, out);
        Ok(())
    }

    /// Per-lane `self · p · selfᵀ` with a lane-uniform middle matrix;
    /// bitwise identical per lane to [`Matrix::congruence_into`] with
    /// `p` as the scalar operand.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `p` is not square
    /// with side `self.cols()`.
    pub fn congruence_broadcast_into(
        &self,
        p: &Matrix,
        scratch: &mut MatrixSlab<K>,
        out: &mut MatrixSlab<K>,
    ) -> Result<()> {
        if p.rows() != self.cols || p.cols() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "congruence",
                lhs: self.shape(),
                rhs: p.shape(),
            });
        }
        self.premul_transpose_into(p, scratch);
        self.mul_into(scratch, out);
        Ok(())
    }
}

impl<const K: usize> AddAssign<&MatrixSlab<K>> for MatrixSlab<K> {
    /// Per-lane elementwise `self += rhs`; bitwise identical per lane
    /// to the scalar `+=`.
    fn add_assign(&mut self, rhs: &MatrixSlab<K>) {
        assert_shape("slab add_assign", self.shape(), rhs.shape());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            for l in 0..K {
                a[l] += b[l];
            }
        }
    }
}

impl<const K: usize> SubAssign<&MatrixSlab<K>> for MatrixSlab<K> {
    /// Per-lane elementwise `self -= rhs`; bitwise identical per lane
    /// to the scalar `-=`.
    fn sub_assign(&mut self, rhs: &MatrixSlab<K>) {
        assert_shape("slab sub_assign", self.shape(), rhs.shape());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            for l in 0..K {
                a[l] -= b[l];
            }
        }
    }
}

impl<const K: usize> MatrixSlab<K> {
    /// `self += rhs` with a lane-uniform (broadcast) right-hand side.
    pub fn add_assign_broadcast(&mut self, rhs: &Matrix) {
        assert_shape("slab add_assign_broadcast", self.shape(), rhs.shape());
        for (a, &b) in self.data.iter_mut().zip(rhs.as_slice()) {
            for l in 0..K {
                a[l] += b;
            }
        }
    }

    /// Overwrites every lane with the scalar matrix `src` (the
    /// broadcast analogue of a `copy_from`).
    pub fn broadcast_from(&mut self, src: &Matrix) {
        assert_shape("slab broadcast_from", self.shape(), src.shape());
        for (g, &s) in self.data.iter_mut().zip(src.as_slice()) {
            *g = [s; K];
        }
    }
}

/// K same-length dense vectors stored lane-interleaved.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSlab<const K: usize> {
    data: Vec<[f64; K]>,
}

impl<const K: usize> VectorSlab<K> {
    /// Allocates a length-`len` slab with every lane zeroed.
    pub fn zeros(len: usize) -> Self {
        VectorSlab {
            data: vec![[0.0; K]; len],
        }
    }

    /// Length (per lane).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Lane group at index `i`.
    #[inline(always)]
    pub fn at(&self, i: usize) -> &[f64; K] {
        &self.data[i]
    }

    /// Mutable lane group at index `i`.
    #[inline(always)]
    pub fn at_mut(&mut self, i: usize) -> &mut [f64; K] {
        &mut self.data[i]
    }

    /// Sets every entry of every lane to `value`.
    pub fn fill(&mut self, value: f64) {
        for g in &mut self.data {
            *g = [value; K];
        }
    }

    /// Overwrites all lanes with `src` (same length required).
    pub fn copy_from(&mut self, src: &VectorSlab<K>) {
        assert_eq!(
            self.len(),
            src.len(),
            "slab copy_from of vector slabs with lengths {} and {}",
            self.len(),
            src.len()
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites lane `lane` with the scalar vector `src`.
    pub fn load_lane(&mut self, lane: usize, src: &Vector) {
        assert_eq!(
            self.len(),
            src.len(),
            "slab load_lane of length-{} slab from length-{} vector",
            self.len(),
            src.len()
        );
        for (g, &s) in self.data.iter_mut().zip(src.as_slice()) {
            g[lane] = s;
        }
    }

    /// Copies lane `lane` out into the scalar vector `dst`.
    pub fn store_lane(&self, lane: usize, dst: &mut Vector) {
        assert_eq!(
            dst.len(),
            self.len(),
            "slab store_lane of length-{} slab into length-{} vector",
            self.len(),
            dst.len()
        );
        for (d, g) in dst.as_mut_slice().iter_mut().zip(&self.data) {
            *d = g[lane];
        }
    }

    /// Negates every entry of every lane in place.
    pub fn negate(&mut self) {
        for g in &mut self.data {
            for v in g {
                *v = -*v;
            }
        }
    }

    /// Per-lane quadratic form `vᵀ · m · v`; bitwise identical per lane
    /// to [`Vector::quadratic_form`] (i-outer, j-inner accumulation).
    pub fn quadratic_form(&self, m: &MatrixSlab<K>) -> [f64; K] {
        assert!(
            m.rows() == self.len() && m.cols() == self.len(),
            "slab quadratic_form of length-{} vector slab with {}x{} slab",
            self.len(),
            m.rows(),
            m.cols()
        );
        let mut acc = [0.0; K];
        for i in 0..self.len() {
            let di = self.data[i];
            let row = m.row(i);
            for (mij, dj) in row.iter().zip(&self.data) {
                for l in 0..K {
                    acc[l] += di[l] * mij[l] * dj[l];
                }
            }
        }
        acc
    }
}

impl<const K: usize> AddAssign<&VectorSlab<K>> for VectorSlab<K> {
    /// Per-lane elementwise `self += rhs`.
    fn add_assign(&mut self, rhs: &VectorSlab<K>) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "slab add_assign of vector slabs with lengths {} and {}",
            self.len(),
            rhs.len()
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            for l in 0..K {
                a[l] += b[l];
            }
        }
    }
}

impl<const K: usize> SubAssign<&VectorSlab<K>> for VectorSlab<K> {
    /// Per-lane elementwise `self -= rhs`.
    fn sub_assign(&mut self, rhs: &VectorSlab<K>) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "slab sub_assign of vector slabs with lengths {} and {}",
            self.len(),
            rhs.len()
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            for l in 0..K {
                a[l] -= b[l];
            }
        }
    }
}

/// Lane-batched LU with per-lane partial pivoting; per lane bitwise
/// identical to the scalar [`crate::LuWorkspace`].
///
/// Singularity is tracked per lane: a lane whose pivot falls below the
/// relative tolerance at step `k` skips that step's elimination (its
/// stores are masked), exactly as the scalar `continue` does, and its
/// flag in [`LuSlabWorkspace::singular`] is set. [`inverse_into`] runs
/// for all lanes unconditionally — singular lanes produce garbage the
/// caller must discard after checking the flags.
///
/// [`inverse_into`]: LuSlabWorkspace::inverse_into
#[derive(Debug, Clone)]
pub struct LuSlabWorkspace<const K: usize> {
    factors: MatrixSlab<K>,
    perm: Vec<[usize; K]>,
    singular: [bool; K],
    col: VectorSlab<K>,
}

impl<const K: usize> LuSlabWorkspace<K> {
    /// Allocates buffers for `n × n` lane-batched factorizations.
    pub fn new(n: usize) -> Self {
        LuSlabWorkspace {
            factors: MatrixSlab::zeros(n, n),
            perm: vec![[0; K]; n],
            singular: [false; K],
            col: VectorSlab::zeros(n),
        }
    }

    /// Workspace dimension.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Per-lane singularity flags for the last factorization.
    pub fn singular(&self) -> &[bool; K] {
        &self.singular
    }

    /// Factorizes all K lanes of `a`; per lane bitwise identical to
    /// [`crate::LuWorkspace::factorize`] (same per-lane pivot search,
    /// row swaps, singularity skips and elimination updates).
    ///
    /// # Panics
    ///
    /// Panics if `a` does not match the workspace dimension.
    pub fn factorize(&mut self, a: &MatrixSlab<K>) {
        let n = self.dim();
        assert_shape("slab lu factorize", a.shape(), (n, n));
        // Per-lane scale = max_abs().max(1.0), folded in storage order
        // like the scalar Matrix::max_abs.
        let mut scale = [0.0f64; K];
        for g in &a.data {
            for l in 0..K {
                scale[l] = scale[l].max(g[l].abs());
            }
        }
        for l in 0..K {
            scale[l] = scale[l].max(1.0);
        }
        self.factors.copy_from(a);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = [i; K];
        }
        self.singular = [false; K];

        let f = &mut self.factors;
        for k in 0..n {
            // Per-lane pivot search (strict >, scanning i ascending).
            let mut pivot_row = [k; K];
            let mut pivot_val = [0.0f64; K];
            {
                let fkk = f.at(k, k);
                for l in 0..K {
                    pivot_val[l] = fkk[l].abs();
                }
            }
            for i in (k + 1)..n {
                let fik = f.at(i, k);
                for l in 0..K {
                    let v = fik[l].abs();
                    if v > pivot_val[l] {
                        pivot_val[l] = v;
                        pivot_row[l] = i;
                    }
                }
            }
            // Per-lane row swap (lane-scalar; lanes are independent).
            for l in 0..K {
                let pr = pivot_row[l];
                if pr != k {
                    for j in 0..n {
                        let a = f.data[k * n + j][l];
                        f.data[k * n + j][l] = f.data[pr * n + j][l];
                        f.data[pr * n + j][l] = a;
                    }
                    let p = self.perm[k][l];
                    self.perm[k][l] = self.perm[pr][l];
                    self.perm[pr][l] = p;
                }
            }
            // Per-lane singularity: a skipped lane leaves this step's
            // elimination untouched (masked stores), like the scalar
            // `continue`, and accumulates into the singular flags.
            let mut skip = [false; K];
            for l in 0..K {
                if pivot_val[l] <= PIVOT_TOL * scale[l] {
                    self.singular[l] = true;
                    skip[l] = true;
                }
            }
            let pivot = *f.at(k, k);
            let (top, bottom) = f.data.split_at_mut((k + 1) * n);
            let row_k = &top[k * n..(k + 1) * n];
            for i in (k + 1)..n {
                let row_i = &mut bottom[(i - k - 1) * n..(i - k) * n];
                let mut factor = [0.0f64; K];
                for l in 0..K {
                    // Division by a ~0 pivot in skipped lanes yields
                    // inf/NaN that the masked store discards.
                    let val = row_i[k][l] / pivot[l];
                    factor[l] = val;
                    row_i[k][l] = if skip[l] { row_i[k][l] } else { val };
                }
                for j in (k + 1)..n {
                    let fkj = row_k[j];
                    let fij = &mut row_i[j];
                    for l in 0..K {
                        let upd = fij[l] - factor[l] * fkj[l];
                        fij[l] = if skip[l] { fij[l] } else { upd };
                    }
                }
            }
        }
    }

    /// Writes all K lanes' inverses into `out`; per lane bitwise
    /// identical to [`crate::LuWorkspace::inverse_into`]. Runs for
    /// every lane unconditionally — lanes flagged in
    /// [`LuSlabWorkspace::singular`] produce garbage the caller must
    /// discard.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the workspace dimension.
    pub fn inverse_into(&mut self, out: &mut MatrixSlab<K>) {
        let n = self.dim();
        assert_shape("slab lu inverse", out.shape(), (n, n));
        let (factors, col, perm) = (&self.factors, &mut self.col, &self.perm);
        for j in 0..n {
            for i in 0..n {
                for l in 0..K {
                    col.data[i][l] = if perm[i][l] == j { 1.0 } else { 0.0 };
                }
            }
            for i in 1..n {
                for jj in 0..i {
                    let lij = factors.at(i, jj);
                    let cjj = col.data[jj];
                    let ci = &mut col.data[i];
                    for l in 0..K {
                        ci[l] -= lij[l] * cjj[l];
                    }
                }
            }
            for i in (0..n).rev() {
                for jj in (i + 1)..n {
                    let uij = factors.at(i, jj);
                    let cjj = col.data[jj];
                    let ci = &mut col.data[i];
                    for l in 0..K {
                        ci[l] -= uij[l] * cjj[l];
                    }
                }
                let fii = factors.at(i, i);
                let ci = &mut col.data[i];
                for l in 0..K {
                    ci[l] /= fii[l];
                }
            }
            for i in 0..n {
                *out.at_mut(i, j) = col.data[i];
            }
        }
    }
}

/// Lane-batched cyclic Jacobi eigendecomposition for symmetric
/// matrices; per lane bitwise identical to the scalar
/// [`crate::EigenWorkspace`].
///
/// Convergence is tracked per lane: a lane whose off-diagonal norm
/// passes the sweep-top check freezes (its eigenvalues are captured and
/// all further rotation stores are masked), exactly where the scalar
/// path would have returned. Lanes still unconverged after the sweep
/// cap are reported via the returned flags — the scalar path's
/// `NoConvergence` error.
#[derive(Debug, Clone)]
pub struct EigenSlabWorkspace<const K: usize> {
    a: MatrixSlab<K>,
    v: MatrixSlab<K>,
    eigenvalues: VectorSlab<K>,
}

impl<const K: usize> EigenSlabWorkspace<K> {
    /// Allocates buffers for `n × n` lane-batched decompositions.
    pub fn new(n: usize) -> Self {
        EigenSlabWorkspace {
            a: MatrixSlab::zeros(n, n),
            v: MatrixSlab::zeros(n, n),
            eigenvalues: VectorSlab::zeros(n),
        }
    }

    /// Workspace dimension.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Decomposes the active lanes of `m` (upper triangle, as the
    /// scalar path does) and returns per-lane convergence flags:
    /// `true` means that lane's eigenvalues/eigenvectors are valid and
    /// bitwise identical to [`crate::EigenWorkspace::factorize`] on
    /// that lane's matrix; `false` for an active lane means the scalar
    /// path would have returned `NoConvergence`. Inactive lanes are
    /// skipped entirely (their buffers hold stale data) and report
    /// `false`.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not match the workspace dimension.
    pub fn factorize(&mut self, m: &MatrixSlab<K>, active: &[bool; K]) -> [bool; K] {
        let n = self.dim();
        assert_shape("slab eigen factorize", m.shape(), (n, n));
        let a = &mut self.a;
        let v = &mut self.v;
        for i in 0..n {
            for j in 0..n {
                *a.at_mut(i, j) = if i <= j { *m.at(i, j) } else { *m.at(j, i) };
            }
        }
        v.set_identity();
        // Per-lane Frobenius norm in storage order, then the scalar
        // floor: norm = frobenius.max(MIN_POSITIVE).
        let mut norm = [0.0f64; K];
        for g in &a.data {
            for l in 0..K {
                norm[l] += g[l] * g[l];
            }
        }
        for l in 0..K {
            norm[l] = norm[l].sqrt().max(f64::MIN_POSITIVE);
        }

        let mut done = [false; K];
        let mut converged = [false; K];
        for l in 0..K {
            done[l] = !active[l];
        }

        for _sweep in 0..MAX_SWEEPS {
            // Sweep-top convergence check, per lane (i asc, j asc sum
            // order as in the scalar path).
            let mut off = [0.0f64; K];
            for i in 0..n {
                for j in (i + 1)..n {
                    let g = a.at(i, j);
                    for l in 0..K {
                        off[l] += g[l] * g[l];
                    }
                }
            }
            for l in 0..K {
                if !done[l] && off[l].sqrt() <= CONVERGENCE_TOL * norm[l] {
                    for i in 0..n {
                        self.eigenvalues.data[i][l] = a.at(i, i)[l];
                    }
                    done[l] = true;
                    converged[l] = true;
                }
            }
            if done.iter().all(|&d| d) {
                return converged;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = *a.at(p, q);
                    let mut rot = [false; K];
                    let mut any = false;
                    for l in 0..K {
                        rot[l] = !done[l] && apq[l].abs() > f64::MIN_POSITIVE;
                        any |= rot[l];
                    }
                    if !any {
                        continue;
                    }
                    let app = *a.at(p, p);
                    let aqq = *a.at(q, q);
                    let mut c = [0.0f64; K];
                    let mut s = [0.0f64; K];
                    for l in 0..K {
                        // Computed for every lane; masked lanes may
                        // produce inf/NaN here which the guarded
                        // stores below discard.
                        let theta = (aqq[l] - app[l]) / (2.0 * apq[l]);
                        let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                        let cl = 1.0 / (t * t + 1.0).sqrt();
                        c[l] = cl;
                        s[l] = t * cl;
                    }
                    for k in 0..n {
                        let akp = *a.at(k, p);
                        let akq = *a.at(k, q);
                        let gp = a.at_mut(k, p);
                        for l in 0..K {
                            if rot[l] {
                                gp[l] = c[l] * akp[l] - s[l] * akq[l];
                            }
                        }
                        let gq = a.at_mut(k, q);
                        for l in 0..K {
                            if rot[l] {
                                gq[l] = s[l] * akp[l] + c[l] * akq[l];
                            }
                        }
                    }
                    for k in 0..n {
                        let apk = *a.at(p, k);
                        let aqk = *a.at(q, k);
                        let gp = a.at_mut(p, k);
                        for l in 0..K {
                            if rot[l] {
                                gp[l] = c[l] * apk[l] - s[l] * aqk[l];
                            }
                        }
                        let gq = a.at_mut(q, k);
                        for l in 0..K {
                            if rot[l] {
                                gq[l] = s[l] * apk[l] + c[l] * aqk[l];
                            }
                        }
                    }
                    {
                        let gpq = a.at_mut(p, q);
                        for l in 0..K {
                            if rot[l] {
                                gpq[l] = 0.0;
                            }
                        }
                        let gqp = a.at_mut(q, p);
                        for l in 0..K {
                            if rot[l] {
                                gqp[l] = 0.0;
                            }
                        }
                    }
                    for k in 0..n {
                        let vkp = *v.at(k, p);
                        let vkq = *v.at(k, q);
                        let gp = v.at_mut(k, p);
                        for l in 0..K {
                            if rot[l] {
                                gp[l] = c[l] * vkp[l] - s[l] * vkq[l];
                            }
                        }
                        let gq = v.at_mut(k, q);
                        for l in 0..K {
                            if rot[l] {
                                gq[l] = s[l] * vkp[l] + c[l] * vkq[l];
                            }
                        }
                    }
                }
            }
        }
        // Lanes still running after the sweep cap mirror the scalar
        // NoConvergence error; their flags stay false.
        converged
    }

    /// Eigenvalues of the last decomposition (unsorted, matching
    /// eigenvector columns). Lanes that did not converge hold garbage.
    pub fn eigenvalues(&self) -> &VectorSlab<K> {
        &self.eigenvalues
    }

    /// Largest eigenvalue of lane `lane`; bitwise identical to
    /// [`crate::EigenWorkspace::max_eigenvalue`] for converged lanes.
    pub fn max_eigenvalue(&self, lane: usize) -> f64 {
        self.eigenvalues
            .data
            .iter()
            .fold(f64::NEG_INFINITY, |a, g| a.max(g[lane]))
    }

    /// Rank cutoff for lane `lane`'s spectrum; bitwise identical to the
    /// shared `spectrum_cutoff` used by [`Matrix::pseudo_inverse_into`]
    /// (same fold order, same `RANK_TOL`).
    pub fn spectrum_cutoff(&self, lane: usize) -> f64 {
        let max_abs = self
            .eigenvalues
            .data
            .iter()
            .fold(0.0f64, |a, g| a.max(g[lane].abs()));
        RANK_TOL * max_abs.max(f64::MIN_POSITIVE)
    }

    /// Writes `V·f(Λ)·Vᵀ` into `out`, with `f` receiving `(lane,
    /// eigenvalue)`; per lane bitwise identical to
    /// [`crate::EigenWorkspace::spectral_map_into`] when `f(lane, ·)`
    /// matches the scalar map. The scalar zero-skip becomes a per-lane
    /// masked accumulate (never adding a literal zero, which could
    /// flip a `-0.0` sign). Unconverged lanes produce garbage.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not match the workspace dimension.
    pub fn spectral_map_into(&self, f: impl Fn(usize, f64) -> f64, out: &mut MatrixSlab<K>) {
        let n = self.dim();
        assert_shape("slab spectral_map_into", out.shape(), (n, n));
        let v = &self.v;
        out.fill(0.0);
        for k in 0..n {
            let mut fl = [0.0f64; K];
            let mut any = false;
            for l in 0..K {
                fl[l] = f(l, self.eigenvalues.data[k][l]);
                any |= fl[l] != 0.0;
            }
            if !any {
                continue;
            }
            for i in 0..n {
                let vik = *v.at(i, k);
                let out_row = out.row_mut(i);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let vjk = v.at(j, k);
                    for l in 0..K {
                        if fl[l] != 0.0 {
                            o[l] += fl[l] * vik[l] * vjk[l];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let mut slab = MatrixSlab::<4>::zeros(2, 2);
        slab.load_lane(2, &m);
        let mut back = Matrix::zeros(2, 2);
        slab.store_lane(2, &mut back);
        assert_eq!(back, m);
        slab.store_lane(0, &mut back);
        assert_eq!(back, Matrix::zeros(2, 2));
    }

    #[test]
    fn vector_slab_roundtrip_and_ops() {
        let v = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let mut slab = VectorSlab::<2>::zeros(3);
        slab.load_lane(0, &v);
        slab.load_lane(1, &v);
        let mut twice = slab.clone();
        twice += &slab;
        let mut back = Vector::zeros(3);
        twice.store_lane(1, &mut back);
        let mut expected = v.clone();
        expected += &v;
        assert_eq!(back, expected);
    }
}
