//! The per-robot flight recorder: an allocation-free ring of stamped
//! tick records, edge-triggered incident capsules, and bitwise replay.
//!
//! ## Why a recorder inside the detector
//!
//! The paper motivates anomaly quantification "for forensics purposes"
//! (§III-C) and names post-detection forensics as future work; a
//! forensic verdict is only as trustworthy as the evidence trail behind
//! it. The [`FlightRecorder`] keeps that trail: every control iteration
//! it captures the detector's exact inputs (`u_{k−1}`, the per-sensor
//! readings, and the tick stamp from the bus/ingest path) together with
//! a compact [`DecisionDigest`] of the resulting [`DetectionReport`].
//! When an alarm confirms (rising edge), the pre-alarm window is frozen,
//! a configurable post-alarm window is appended, and the whole thing is
//! sealed into a versioned [`IncidentCapsule`] enriched with the robot's
//! [`ForensicLog`] incident summary and telemetry histograms.
//!
//! ## The replay contract
//!
//! [`replay_capsule`] feeds a capsule's recorded inputs through a fresh
//! [`RoboAds`] and compares every produced report against the recorded
//! digests **bitwise** (`f64::to_bits`). Because the detector is
//! deterministic, any divergence means either capsule corruption or a
//! detector behavior change — observability doubling as a correctness
//! oracle. The current contract requires the capsule to be *anchored at
//! detector birth* (its first record is iteration 1, so the ring
//! capacity must cover the full run up to the trigger); this is the
//! degenerate state snapshot, and the capsule format is versioned so a
//! mid-run estimator snapshot can be added without breaking readers.
//!
//! ## Zero-alloc warm path
//!
//! [`FlightRecorder::record`] on a clean tick performs no heap
//! allocation: the ring is a [`SlotRing`] whose [`TickRecord`] slots are
//! pre-sized at attach time from the robot's dimensions and refilled in
//! place (`clear()` + `extend_from_slice`, never rebuilding the outer
//! `Vec`s). Allocation happens only when an incident opens — the same
//! boundary the [`ForensicLog`] draws.

use roboads_linalg::Vector;
use roboads_models::RobotSystem;
use roboads_obs::json::{self, JsonObject, JsonValue};
use roboads_obs::wire::{feq, lossless_array, lossless_field, refill, slice_feq, usize_array};
use roboads_obs::{HistogramSummary, SlotRing, Telemetry};

use crate::detector::RoboAds;
use crate::forensics::ForensicLog;
use crate::report::DetectionReport;
use crate::{CoreError, Result};

/// Version stamped into every capsule header; bump on any change to the
/// JSONL schema (see README's schema table).
pub const CAPSULE_VERSION: u32 = 1;

/// Compact, digestible projection of one [`DetectionReport`]: what the
/// recorder persists per tick, and what [`replay_capsule`] compares.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionDigest {
    /// Control iteration `k` (1-based).
    pub iteration: u64,
    /// Selected mode index.
    pub selected_mode: usize,
    /// Normalized mode probabilities.
    pub mode_probabilities: Vec<f64>,
    /// Updated state estimate `x̂_{k|k}`.
    pub state_estimate: Vec<f64>,
    /// Aggregate sensor χ² statistic of the selected mode.
    pub sensor_statistic: f64,
    /// The χ² critical value the sensor statistic was tested against.
    pub sensor_threshold: f64,
    /// Raw per-iteration sensor test outcome.
    pub sensor_exceeds: bool,
    /// Window-confirmed sensor alarm.
    pub sensor_alarm: bool,
    /// Identified misbehaving sensors (sorted suite indices).
    pub misbehaving_sensors: Vec<usize>,
    /// Sensor anomaly-vector estimate `d̂^s` (stacked testing sensors).
    pub sensor_estimate: Vec<f64>,
    /// Actuator χ² statistic of the selected mode.
    pub actuator_statistic: f64,
    /// The χ² critical value the actuator statistic was tested against.
    pub actuator_threshold: f64,
    /// Raw per-iteration actuator test outcome.
    pub actuator_exceeds: bool,
    /// Window-confirmed actuator alarm.
    pub actuator_alarm: bool,
    /// Actuator anomaly-vector estimate `d̂^a`.
    pub actuator_estimate: Vec<f64>,
}

impl DecisionDigest {
    /// Builds a digest of `report` (allocating; used by replay/tests).
    pub fn of(report: &DetectionReport) -> Self {
        let mut d = DecisionDigest::default();
        d.fill(report);
        d
    }

    /// Overwrites this digest in place from `report`. Allocation-free
    /// once the vectors have reached their steady-state capacity.
    pub fn fill(&mut self, report: &DetectionReport) {
        self.iteration = report.iteration;
        self.selected_mode = report.selected_mode;
        refill(&mut self.mode_probabilities, &report.mode_probabilities);
        refill(&mut self.state_estimate, report.state_estimate.as_slice());
        self.sensor_statistic = report.sensor_anomaly.statistic;
        self.sensor_threshold = report.sensor_anomaly.threshold;
        self.sensor_exceeds = report.sensor_anomaly.exceeds;
        self.sensor_alarm = report.sensor_alarm;
        self.misbehaving_sensors.clear();
        self.misbehaving_sensors
            .extend_from_slice(&report.misbehaving_sensors);
        refill(
            &mut self.sensor_estimate,
            report.sensor_anomaly.estimate.as_slice(),
        );
        self.actuator_statistic = report.actuator_anomaly.statistic;
        self.actuator_threshold = report.actuator_anomaly.threshold;
        self.actuator_exceeds = report.actuator_anomaly.exceeds;
        self.actuator_alarm = report.actuator_alarm;
        refill(
            &mut self.actuator_estimate,
            report.actuator_anomaly.estimate.as_slice(),
        );
    }

    /// Whether `other` matches this digest bitwise (floats compared via
    /// `to_bits`, NaNs matching NaNs).
    pub fn bitwise_eq(&self, other: &DecisionDigest) -> bool {
        self.iteration == other.iteration
            && self.selected_mode == other.selected_mode
            && slice_feq(&self.mode_probabilities, &other.mode_probabilities)
            && slice_feq(&self.state_estimate, &other.state_estimate)
            && feq(self.sensor_statistic, other.sensor_statistic)
            && feq(self.sensor_threshold, other.sensor_threshold)
            && self.sensor_exceeds == other.sensor_exceeds
            && self.sensor_alarm == other.sensor_alarm
            && self.misbehaving_sensors == other.misbehaving_sensors
            && slice_feq(&self.sensor_estimate, &other.sensor_estimate)
            && feq(self.actuator_statistic, other.actuator_statistic)
            && feq(self.actuator_threshold, other.actuator_threshold)
            && self.actuator_exceeds == other.actuator_exceeds
            && self.actuator_alarm == other.actuator_alarm
            && slice_feq(&self.actuator_estimate, &other.actuator_estimate)
    }
}

/// One recorded control iteration: the detector's exact inputs plus the
/// decision digest they produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickRecord {
    /// Detector iteration (1-based, equals the digest's).
    pub seq: u64,
    /// Bus/ingest tick stamp the inputs arrived under.
    pub stamp: u64,
    /// Planned commands `u_{k−1}`.
    pub u_prev: Vec<f64>,
    /// Per-sensor readings `z_k`.
    pub readings: Vec<Vec<f64>>,
    /// Digest of the resulting report.
    pub digest: DecisionDigest,
}

impl TickRecord {
    fn fill(
        &mut self,
        seq: u64,
        stamp: u64,
        u_prev: &Vector,
        readings: &[Vector],
        report: &DetectionReport,
    ) {
        self.seq = seq;
        self.stamp = stamp;
        refill(&mut self.u_prev, u_prev.as_slice());
        // Refill inner vectors in place: truncating the outer Vec would
        // drop (deallocate) the inner buffers, so it only ever grows.
        if self.readings.len() < readings.len() {
            self.readings.resize_with(readings.len(), Vec::new);
        }
        for (dst, src) in self.readings.iter_mut().zip(readings) {
            refill(dst, src.as_slice());
        }
        for dst in self.readings.iter_mut().skip(readings.len()) {
            dst.clear();
        }
        self.digest.fill(report);
    }
}

/// Sizing and windows of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecorderConfig {
    /// Ring capacity in ticks. For bitwise replay the ring must cover
    /// every tick since detector birth (see the module docs' replay
    /// contract); beyond that it bounds the recorder's memory.
    pub capacity: usize,
    /// Pre-trigger window frozen into a capsule (clamped to what the
    /// ring holds).
    pub pre: usize,
    /// Post-trigger window appended before the capsule seals.
    pub post: usize,
    /// Control period in seconds (drives the forensic timeline).
    pub dt: f64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 1024,
            pre: 64,
            post: 16,
            dt: 0.1,
        }
    }
}

/// What kind of misbehavior triggered a capsule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// Sensor alarm only.
    Sensor,
    /// Actuator alarm only.
    Actuator,
    /// Both alarms at the trigger tick.
    Both,
}

impl IncidentKind {
    fn as_str(self) -> &'static str {
        match self {
            IncidentKind::Sensor => "sensor",
            IncidentKind::Actuator => "actuator",
            IncidentKind::Both => "both",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "sensor" => Some(IncidentKind::Sensor),
            "actuator" => Some(IncidentKind::Actuator),
            "both" => Some(IncidentKind::Both),
            _ => None,
        }
    }
}

/// The [`ForensicLog`] summary carried inside a capsule (a flattened
/// [`crate::forensics::Incident`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CapsuleIncident {
    /// Condition label, e.g. `"S1"`, `"A1"`, `"S2+A1"`.
    pub label: String,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds (exclusive).
    pub end: f64,
    /// Identified misbehaving sensors.
    pub sensors: Vec<usize>,
    /// Whether an actuator misbehavior was confirmed.
    pub actuator: bool,
    /// Iterations the incident spanned.
    pub iterations: u64,
    /// One-number severity (largest mean anomaly component).
    pub peak_magnitude: f64,
}

/// A sealed, self-contained incident record: the frozen pre/post tick
/// window plus forensic and telemetry enrichment, serializable as JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentCapsule {
    /// Schema version ([`CAPSULE_VERSION`] at write time).
    pub version: u32,
    /// Fleet robot index (`0` for a standalone detector).
    pub robot: u32,
    /// Which alarm(s) fired at the trigger tick.
    pub kind: IncidentKind,
    /// Detector iteration of the trigger tick.
    pub trigger_seq: u64,
    /// Bus/ingest stamp of the trigger tick.
    pub trigger_stamp: u64,
    /// The frozen window, oldest first (trigger included).
    pub records: Vec<TickRecord>,
    /// Forensic incident summary, when the [`ForensicLog`] had resolved
    /// one by seal time.
    pub incident: Option<CapsuleIncident>,
    /// Telemetry histogram summaries at seal time, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl IncidentCapsule {
    /// Whether the capsule starts at detector birth (iteration 1) and
    /// therefore satisfies the bitwise replay contract.
    pub fn anchored_at_birth(&self) -> bool {
        self.records
            .first()
            .is_some_and(|r| r.digest.iteration == 1)
    }

    /// Serializes the capsule as JSONL: one header line followed by one
    /// line per tick record. Every float is written losslessly
    /// ([`json::write_f64_lossless`]), so a parsed capsule replays
    /// bitwise.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut header = JsonObject::new();
        header.field_str("type", "roboads.capsule");
        header.field_u64("version", u64::from(self.version));
        header.field_u64("robot", u64::from(self.robot));
        header.field_str("kind", self.kind.as_str());
        header.field_u64("trigger_seq", self.trigger_seq);
        header.field_u64("trigger_stamp", self.trigger_stamp);
        header.field_u64("records", self.records.len() as u64);
        match &self.incident {
            None => header.field_raw("incident", "null"),
            Some(inc) => {
                let mut o = JsonObject::new();
                o.field_str("label", &inc.label);
                o.field_f64("start", inc.start);
                o.field_f64("end", inc.end);
                o.field_raw("sensors", &usize_array(&inc.sensors));
                o.field_bool("actuator", inc.actuator);
                o.field_u64("iterations", inc.iterations);
                lossless_field(&mut o, "peak_magnitude", inc.peak_magnitude);
                header.field_raw("incident", &o.finish());
            }
        }
        let mut hists = JsonObject::new();
        for (name, s) in &self.histograms {
            hists.field_raw(name, &summary_json(s));
        }
        header.field_raw("histograms", &hists.finish());
        out.push_str(&header.finish());
        out.push('\n');
        for r in &self.records {
            out.push_str(&tick_json(r));
            out.push('\n');
        }
        out
    }

    /// Parses a capsule back from its JSONL form.
    ///
    /// # Errors
    ///
    /// [`CoreError::Capsule`] on malformed JSON, an unknown schema
    /// version, or a record-count mismatch.
    pub fn from_jsonl(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or_else(|| capsule_err("empty capsule"))?;
        let header = parse_line(header_line)?;
        if header.get("type").and_then(JsonValue::as_str) != Some("roboads.capsule") {
            return Err(capsule_err("missing roboads.capsule header"));
        }
        let version = field_u64(&header, "version")? as u32;
        if version != CAPSULE_VERSION {
            return Err(CoreError::Capsule {
                reason: format!(
                    "unsupported capsule version {version} (reader supports {CAPSULE_VERSION})"
                ),
            });
        }
        let expected = field_u64(&header, "records")? as usize;
        let incident = match header.get("incident") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(CapsuleIncident {
                label: field_str(v, "label")?,
                start: field_f64(v, "start")?,
                end: field_f64(v, "end")?,
                sensors: field_usize_array(v, "sensors")?,
                actuator: field_bool(v, "actuator")?,
                iterations: field_u64(v, "iterations")?,
                peak_magnitude: field_f64(v, "peak_magnitude")?,
            }),
        };
        let mut histograms = Vec::new();
        if let Some(JsonValue::Object(fields)) = header.get("histograms") {
            for (name, v) in fields {
                histograms.push((name.clone(), parse_summary(v)?));
            }
        }
        let mut records = Vec::with_capacity(expected);
        for line in lines {
            let v = parse_line(line)?;
            if v.get("type").and_then(JsonValue::as_str) != Some("tick") {
                return Err(capsule_err("non-tick line in capsule body"));
            }
            records.push(parse_tick(&v)?);
        }
        if records.len() != expected {
            return Err(CoreError::Capsule {
                reason: format!(
                    "record count mismatch: header says {expected}, body has {}",
                    records.len()
                ),
            });
        }
        Ok(IncidentCapsule {
            version,
            robot: field_u64(&header, "robot")? as u32,
            kind: header
                .get("kind")
                .and_then(JsonValue::as_str)
                .and_then(IncidentKind::parse)
                .ok_or_else(|| capsule_err("bad incident kind"))?,
            trigger_seq: field_u64(&header, "trigger_seq")?,
            trigger_stamp: field_u64(&header, "trigger_stamp")?,
            records,
            incident,
            histograms,
        })
    }
}

fn capsule_err(reason: &str) -> CoreError {
    CoreError::Capsule {
        reason: reason.to_string(),
    }
}

fn parse_line(line: &str) -> Result<JsonValue> {
    json::parse(line).map_err(|e| CoreError::Capsule {
        reason: format!("malformed capsule line: {e}"),
    })
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| CoreError::Capsule {
            reason: format!("missing integer field {key:?}"),
        })
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64> {
    v.get(key)
        .and_then(JsonValue::as_lossless_f64)
        .ok_or_else(|| CoreError::Capsule {
            reason: format!("missing float field {key:?}"),
        })
}

fn field_bool(v: &JsonValue, key: &str) -> Result<bool> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| CoreError::Capsule {
            reason: format!("missing bool field {key:?}"),
        })
}

fn field_str(v: &JsonValue, key: &str) -> Result<String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| CoreError::Capsule {
            reason: format!("missing string field {key:?}"),
        })
}

fn field_f64_array(v: &JsonValue, key: &str) -> Result<Vec<f64>> {
    let items = v
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| CoreError::Capsule {
            reason: format!("missing array field {key:?}"),
        })?;
    items
        .iter()
        .map(|x| {
            x.as_lossless_f64().ok_or_else(|| CoreError::Capsule {
                reason: format!("non-numeric entry in {key:?}"),
            })
        })
        .collect()
}

fn field_usize_array(v: &JsonValue, key: &str) -> Result<Vec<usize>> {
    let items = v
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| CoreError::Capsule {
            reason: format!("missing array field {key:?}"),
        })?;
    items
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| CoreError::Capsule {
                    reason: format!("non-integer entry in {key:?}"),
                })
        })
        .collect()
}

fn summary_json(s: &HistogramSummary) -> String {
    let mut o = JsonObject::new();
    o.field_u64("count", s.count);
    o.field_u64("nonfinite", s.nonfinite);
    lossless_field(&mut o, "mean", s.mean);
    lossless_field(&mut o, "min", s.min);
    lossless_field(&mut o, "max", s.max);
    lossless_field(&mut o, "p50", s.p50);
    lossless_field(&mut o, "p95", s.p95);
    lossless_field(&mut o, "p99", s.p99);
    o.finish()
}

fn parse_summary(v: &JsonValue) -> Result<HistogramSummary> {
    Ok(HistogramSummary {
        count: field_u64(v, "count")?,
        nonfinite: field_u64(v, "nonfinite")?,
        mean: field_f64(v, "mean")?,
        min: field_f64(v, "min")?,
        max: field_f64(v, "max")?,
        p50: field_f64(v, "p50")?,
        p95: field_f64(v, "p95")?,
        p99: field_f64(v, "p99")?,
    })
}

fn tick_json(r: &TickRecord) -> String {
    let mut o = JsonObject::new();
    o.field_str("type", "tick");
    o.field_u64("seq", r.seq);
    o.field_u64("stamp", r.stamp);
    o.field_raw("u", &lossless_array(&r.u_prev));
    let readings: Vec<String> = r.readings.iter().map(|z| lossless_array(z)).collect();
    o.field_raw("readings", &format!("[{}]", readings.join(",")));
    let d = &r.digest;
    let mut dig = JsonObject::new();
    dig.field_u64("iteration", d.iteration);
    dig.field_u64("selected_mode", d.selected_mode as u64);
    dig.field_raw("mode_probabilities", &lossless_array(&d.mode_probabilities));
    dig.field_raw("state_estimate", &lossless_array(&d.state_estimate));
    lossless_field(&mut dig, "sensor_statistic", d.sensor_statistic);
    lossless_field(&mut dig, "sensor_threshold", d.sensor_threshold);
    dig.field_bool("sensor_exceeds", d.sensor_exceeds);
    dig.field_bool("sensor_alarm", d.sensor_alarm);
    dig.field_raw("misbehaving_sensors", &usize_array(&d.misbehaving_sensors));
    dig.field_raw("sensor_estimate", &lossless_array(&d.sensor_estimate));
    lossless_field(&mut dig, "actuator_statistic", d.actuator_statistic);
    lossless_field(&mut dig, "actuator_threshold", d.actuator_threshold);
    dig.field_bool("actuator_exceeds", d.actuator_exceeds);
    dig.field_bool("actuator_alarm", d.actuator_alarm);
    dig.field_raw("actuator_estimate", &lossless_array(&d.actuator_estimate));
    o.field_raw("digest", &dig.finish());
    o.finish()
}

fn parse_tick(v: &JsonValue) -> Result<TickRecord> {
    let readings_v = v
        .get("readings")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| capsule_err("tick missing readings"))?;
    let mut readings = Vec::with_capacity(readings_v.len());
    for (i, z) in readings_v.iter().enumerate() {
        let items = z.as_array().ok_or_else(|| CoreError::Capsule {
            reason: format!("reading {i} is not an array"),
        })?;
        let mut sensor = Vec::with_capacity(items.len());
        for x in items {
            sensor.push(x.as_lossless_f64().ok_or_else(|| CoreError::Capsule {
                reason: format!("non-numeric sample in reading {i}"),
            })?);
        }
        readings.push(sensor);
    }
    let d = v
        .get("digest")
        .ok_or_else(|| capsule_err("tick missing digest"))?;
    Ok(TickRecord {
        seq: field_u64(v, "seq")?,
        stamp: field_u64(v, "stamp")?,
        u_prev: field_f64_array(v, "u")?,
        readings,
        digest: DecisionDigest {
            iteration: field_u64(d, "iteration")?,
            selected_mode: field_u64(d, "selected_mode")? as usize,
            mode_probabilities: field_f64_array(d, "mode_probabilities")?,
            state_estimate: field_f64_array(d, "state_estimate")?,
            sensor_statistic: field_f64(d, "sensor_statistic")?,
            sensor_threshold: field_f64(d, "sensor_threshold")?,
            sensor_exceeds: field_bool(d, "sensor_exceeds")?,
            sensor_alarm: field_bool(d, "sensor_alarm")?,
            misbehaving_sensors: field_usize_array(d, "misbehaving_sensors")?,
            sensor_estimate: field_f64_array(d, "sensor_estimate")?,
            actuator_statistic: field_f64(d, "actuator_statistic")?,
            actuator_threshold: field_f64(d, "actuator_threshold")?,
            actuator_exceeds: field_bool(d, "actuator_exceeds")?,
            actuator_alarm: field_bool(d, "actuator_alarm")?,
            actuator_estimate: field_f64_array(d, "actuator_estimate")?,
        },
    })
}

#[derive(Debug, Clone)]
struct PendingCapsule {
    capsule: IncidentCapsule,
    post_left: usize,
}

/// The per-robot flight recorder. See the module docs for the design;
/// construct via [`RoboAds::attach_recorder`] (which pre-sizes the ring
/// from the robot's dimensions) rather than directly.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    config: RecorderConfig,
    robot: u32,
    ring: SlotRing<TickRecord>,
    forensics: ForensicLog,
    telemetry: Telemetry,
    prev_alarm: bool,
    recorded: u64,
    pending: Option<PendingCapsule>,
    capsules: Vec<IncidentCapsule>,
}

impl FlightRecorder {
    /// Builds a recorder sized for `system` (slot vectors pre-allocated
    /// to the robot's exact dimensions so the warm record path never
    /// allocates).
    pub fn for_system(config: RecorderConfig, system: &RobotSystem, mode_count: usize) -> Self {
        let sensor_dims: Vec<usize> = (0..system.sensor_count())
            .map(|i| system.sensor(i).map(|s| s.dim()).unwrap_or(0))
            .collect();
        let slot = || TickRecord {
            seq: 0,
            stamp: 0,
            u_prev: Vec::with_capacity(system.input_dim()),
            readings: sensor_dims.iter().map(|&d| Vec::with_capacity(d)).collect(),
            digest: DecisionDigest {
                mode_probabilities: Vec::with_capacity(mode_count),
                state_estimate: Vec::with_capacity(system.state_dim()),
                misbehaving_sensors: Vec::with_capacity(system.sensor_count()),
                sensor_estimate: Vec::with_capacity(system.total_measurement_dim()),
                actuator_estimate: Vec::with_capacity(system.input_dim()),
                ..DecisionDigest::default()
            },
        };
        let slots = (0..config.capacity.max(1)).map(|_| slot()).collect();
        FlightRecorder {
            config,
            robot: 0,
            ring: SlotRing::from_slots(slots),
            forensics: ForensicLog::new(config.dt),
            telemetry: Telemetry::disabled(),
            prev_alarm: false,
            recorded: 0,
            pending: None,
            capsules: Vec::new(),
        }
    }

    /// Sets the fleet robot index stamped into capsules.
    pub fn set_robot(&mut self, robot: u32) {
        self.robot = robot;
    }

    /// The fleet robot index stamped into capsules (0 standalone).
    pub fn robot(&self) -> u32 {
        self.robot
    }

    /// Attaches the telemetry context whose histograms enrich capsules.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// Number of ticks recorded so far.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Number of live records in the ring.
    pub fn ring_len(&self) -> usize {
        self.ring.len()
    }

    /// The `i`-th live ring record, oldest first.
    pub fn ring_record(&self, i: usize) -> Option<&TickRecord> {
        self.ring.get(i)
    }

    /// The forensic log fed by this recorder.
    pub fn forensics(&self) -> &ForensicLog {
        &self.forensics
    }

    /// Sealed capsules waiting for collection.
    pub fn capsules(&self) -> &[IncidentCapsule] {
        &self.capsules
    }

    /// Takes ownership of the sealed capsules.
    pub fn take_capsules(&mut self) -> Vec<IncidentCapsule> {
        std::mem::take(&mut self.capsules)
    }

    /// Records one completed control iteration. Clean ticks are
    /// allocation-free (ring slots are refilled in place); alarm edges
    /// freeze the pre-window and start accumulating a capsule.
    pub fn record(
        &mut self,
        stamp: u64,
        u_prev: &Vector,
        readings: &[Vector],
        report: &DetectionReport,
    ) {
        self.recorded += 1;
        self.ring
            .push_with(|slot| slot.fill(report.iteration, stamp, u_prev, readings, report));
        self.forensics.push(report);

        let alarm = report.sensor_alarm || report.actuator_alarm;
        if let Some(pending) = &mut self.pending {
            let latest = self.ring.latest().expect("just pushed").clone();
            pending.capsule.records.push(latest);
            pending.post_left -= 1;
            if pending.post_left == 0 {
                self.seal();
            }
        } else if alarm && !self.prev_alarm {
            // Rising edge: freeze the pre-window (trigger tick included).
            let kind = match (report.sensor_alarm, report.actuator_alarm) {
                (true, true) => IncidentKind::Both,
                (true, false) => IncidentKind::Sensor,
                _ => IncidentKind::Actuator,
            };
            let window = (self.config.pre + 1).min(self.ring.len());
            let start = self.ring.len() - window;
            let records: Vec<TickRecord> = (start..self.ring.len())
                .map(|i| self.ring.get(i).expect("index in range").clone())
                .collect();
            let capsule = IncidentCapsule {
                version: CAPSULE_VERSION,
                robot: self.robot,
                kind,
                trigger_seq: report.iteration,
                trigger_stamp: stamp,
                records,
                incident: None,
                histograms: Vec::new(),
            };
            if self.config.post == 0 {
                self.pending = Some(PendingCapsule {
                    capsule,
                    post_left: 0,
                });
                self.seal();
            } else {
                self.pending = Some(PendingCapsule {
                    capsule,
                    post_left: self.config.post,
                });
            }
        }
        self.prev_alarm = alarm;
    }

    /// Seals any in-flight capsule (short post-window) — call at the end
    /// of a run so a late-run incident is not lost.
    pub fn finish(&mut self) {
        if self.pending.is_some() {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        let mut capsule = pending.capsule;
        capsule.incident = self
            .forensics
            .incidents()
            .last()
            .map(|inc| CapsuleIncident {
                label: inc.label.clone(),
                start: inc.start,
                end: inc.end,
                sensors: inc.sensors.clone(),
                actuator: inc.actuator,
                iterations: inc.iterations as u64,
                peak_magnitude: inc.peak_magnitude(),
            });
        capsule.histograms = self.telemetry.metrics().snapshot().histograms;
        self.capsules.push(capsule);
    }
}

/// Outcome of one [`replay_capsule`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Ticks replayed.
    pub ticks: usize,
    /// Sequence numbers whose replayed digest diverged from the record.
    pub mismatched_seqs: Vec<u64>,
}

impl ReplayOutcome {
    /// Whether every replayed tick reproduced its recorded digest
    /// bitwise.
    pub fn is_bitwise(&self) -> bool {
        self.mismatched_seqs.is_empty()
    }
}

/// Feeds `capsule`'s recorded inputs through `detector` and compares
/// every produced report against the recorded digests bitwise.
///
/// The detector must be *fresh and identically constructed* (same
/// system, config, initial state and mode set as the recording robot)
/// and the capsule anchored at detector birth — the replay contract in
/// the module docs.
///
/// # Errors
///
/// [`CoreError::Capsule`] when the capsule is empty or not aligned with
/// the detector's next iteration; any detector stepping error is
/// propagated.
pub fn replay_capsule(capsule: &IncidentCapsule, detector: &mut RoboAds) -> Result<ReplayOutcome> {
    let first = capsule
        .records
        .first()
        .ok_or_else(|| capsule_err("capsule has no records"))?;
    if first.digest.iteration != detector.iteration() + 1 {
        return Err(CoreError::Capsule {
            reason: format!(
                "capsule starts at iteration {} but the detector's next iteration is {} — \
                 replay requires a fresh detector and a birth-anchored capsule",
                first.digest.iteration,
                detector.iteration() + 1
            ),
        });
    }
    let mut mismatched_seqs = Vec::new();
    for record in &capsule.records {
        let u = Vector::from_slice(&record.u_prev);
        let readings: Vec<Vector> = record
            .readings
            .iter()
            .map(|z| Vector::from_slice(z))
            .collect();
        let report = detector.step(&u, &readings)?;
        if !DecisionDigest::of(&report).bitwise_eq(&record.digest) {
            mismatched_seqs.push(record.seq);
        }
    }
    Ok(ReplayOutcome {
        ticks: capsule.records.len(),
        mismatched_seqs,
    })
}
