use rand::{Rng, RngExt};

use roboads_linalg::{Cholesky, Matrix, Vector};

use crate::{Result, StatsError};

/// Standard-normal sampler using the Box–Muller transform.
///
/// `rand` itself only ships uniform distributions; the Gaussian process
/// and measurement noises the RoboADS system model assumes (§III-A of the
/// paper) are produced here. The transform generates pairs, so one value
/// is cached between calls.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use roboads_stats::GaussianSampler;
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let mut gauss = GaussianSampler::new();
/// let x = gauss.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        GaussianSampler { cached: None }
    }

    /// Draws one standard-normal value.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller on two uniforms in (0, 1].
        let u1: f64 = loop {
            let u: f64 = rng.random();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a mean-zero normal value with the given standard deviation.
    pub fn sample_scaled(&mut self, rng: &mut impl Rng, std_dev: f64) -> f64 {
        self.sample(rng) * std_dev
    }

    /// Draws a vector of independent standard-normal values.
    pub fn sample_vector(&mut self, rng: &mut impl Rng, n: usize) -> Vector {
        Vector::from_fn(n, |_| self.sample(rng))
    }
}

/// A multivariate normal distribution `N(mean, covariance)`.
///
/// Sampling uses the Cholesky factor: `x = μ + L·z` with `z` standard
/// normal. This is how the simulation substrate draws correlated process
/// and measurement noise with the exact covariances the estimator is
/// configured with.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use roboads_linalg::{Matrix, Vector};
/// use roboads_stats::MultivariateNormal;
///
/// # fn main() -> Result<(), roboads_stats::StatsError> {
/// let mvn = MultivariateNormal::new(
///     Vector::zeros(2),
///     Matrix::from_diagonal(&[0.01, 0.04]),
/// )?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let draw = mvn.sample(&mut rng);
/// assert_eq!(draw.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vector,
    chol: Cholesky,
}

impl MultivariateNormal {
    /// Creates the distribution from a mean and an SPD covariance.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the dimensions of the
    /// mean and covariance disagree, or wraps the Cholesky error if the
    /// covariance is not symmetric positive definite.
    pub fn new(mean: Vector, covariance: Matrix) -> Result<Self> {
        if covariance.rows() != mean.len() {
            return Err(StatsError::InvalidParameter {
                name: "covariance",
                value: format!(
                    "{}x{} for mean of length {}",
                    covariance.rows(),
                    covariance.cols(),
                    mean.len()
                ),
            });
        }
        let chol = covariance.cholesky()?;
        Ok(MultivariateNormal { mean, chol })
    }

    /// Creates a mean-zero distribution from a covariance matrix.
    ///
    /// # Errors
    ///
    /// Same as [`MultivariateNormal::new`].
    pub fn zero_mean(covariance: Matrix) -> Result<Self> {
        let n = covariance.rows();
        MultivariateNormal::new(Vector::zeros(n), covariance)
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Vector {
        let mut gauss = GaussianSampler::new();
        let z = gauss.sample_vector(rng, self.dim());
        let correlated = self
            .chol
            .apply_factor(&z)
            .expect("factor dimension matches by construction");
        &self.mean + &correlated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut g = GaussianSampler::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn scaled_sampling_scales_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = GaussianSampler::new();
        let n = 100_000;
        let var = (0..n)
            .map(|_| g.sample_scaled(&mut rng, 3.0).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - 9.0).abs() < 0.25, "var = {var}");
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = GaussianSampler::new();
            g.sample_vector(&mut rng, 5)
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    #[test]
    fn mvn_sample_covariance_converges() {
        let cov = Matrix::from_rows(&[&[0.04, 0.01], &[0.01, 0.09]]).unwrap();
        let mvn = MultivariateNormal::zero_mean(cov.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..n {
            let s = mvn.sample(&mut rng);
            for i in 0..2 {
                for j in 0..2 {
                    acc[(i, j)] += s[i] * s[j];
                }
            }
        }
        let emp = &acc * (1.0 / n as f64);
        assert!((&emp - &cov).max_abs() < 0.005, "empirical covariance {emp:?}");
    }

    #[test]
    fn mvn_mean_offset() {
        let mvn = MultivariateNormal::new(
            Vector::from_slice(&[10.0, -5.0]),
            Matrix::from_diagonal(&[0.01, 0.01]),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean = Vector::zeros(2);
        let n = 20_000;
        for _ in 0..n {
            mean = &mean + &mvn.sample(&mut rng);
        }
        mean = &mean * (1.0 / n as f64);
        assert!((mean[0] - 10.0).abs() < 0.01);
        assert!((mean[1] + 5.0).abs() < 0.01);
    }

    #[test]
    fn mvn_rejects_bad_input() {
        assert!(MultivariateNormal::new(Vector::zeros(3), Matrix::identity(2)).is_err());
        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(MultivariateNormal::zero_mean(indefinite).is_err());
    }
}
