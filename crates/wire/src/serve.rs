//! Socket plumbing: a buffered frame writer for producers and the
//! service-side pump that feeds a [`ShardedFleet`] from a byte stream.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;

use roboads_core::ShardedFleet;

use crate::codec::{encode_frame, FrameDecoder, WireError, WireFrame, WIRE_VERSION};

/// Buffered frame writer: the producer half of the protocol. Frames
/// accumulate in one buffer and hit the socket on [`FrameWriter::flush`]
/// (or drop), so a tick's worth of frames usually travels as one write.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a sink and queues the opening [`WireFrame::Hello`].
    pub fn new(inner: W) -> Self {
        let mut writer = FrameWriter {
            inner,
            buf: Vec::with_capacity(4096),
        };
        writer.send(&WireFrame::Hello {
            version: WIRE_VERSION,
        });
        writer
    }

    /// Queues one frame (buffered; nothing touches the socket yet).
    pub fn send(&mut self, frame: &WireFrame) {
        encode_frame(frame, &mut self.buf);
    }

    /// Writes every queued frame to the underlying sink.
    ///
    /// # Errors
    ///
    /// The sink's I/O error; queued bytes are retained for retry.
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.inner.write_all(&self.buf)?;
        self.buf.clear();
        self.inner.flush()?;
        Ok(())
    }

    /// Queues [`WireFrame::Bye`] and flushes.
    ///
    /// # Errors
    ///
    /// The sink's I/O error.
    pub fn finish(mut self) -> Result<(), WireError> {
        self.send(&WireFrame::Bye);
        self.flush()
    }
}

/// Outcome of one pumped connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Data frames decoded (readings + inputs).
    pub frames: u64,
    /// Data frames accepted into a staging window.
    pub accepted: u64,
    /// Data frames rejected (stale stamp or unknown robot).
    pub rejected: u64,
    /// Tick boundaries crossed.
    pub ticks: u64,
    /// Ticks whose batch step reported a detection-level error (the
    /// verdicts stay queryable per robot; the stream keeps flowing).
    pub step_errors: u64,
    /// Whether the producer closed with an orderly [`WireFrame::Bye`].
    pub clean_shutdown: bool,
}

/// Pumps one byte stream into the fleet until `Bye` or EOF: data
/// frames stage via [`ShardedFleet::offer_frame`], every
/// [`WireFrame::TickEnd`] steps all shards. The stream must open with
/// a matching [`WireFrame::Hello`].
///
/// Detection-level step errors (a missed deadline, a robot's numeric
/// failure) are *not* protocol errors: they are counted in the summary
/// and the pump continues, exactly as an in-process driver would keep
/// ticking. Unknown robots and stale stamps count as rejected frames.
///
/// # Errors
///
/// [`WireError`] on protocol violations: bad version, malformed or
/// oversized frames, data before `Hello`, or socket failures.
pub fn pump<R: Read>(mut stream: R, fleet: &mut ShardedFleet) -> Result<ServeSummary, WireError> {
    let mut decoder = FrameDecoder::new();
    let mut summary = ServeSummary::default();
    let mut greeted = false;
    let mut chunk = [0u8; 8192];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(summary); // EOF without Bye: summary says so
        }
        decoder.feed(&chunk[..n])?;
        while let Some(frame) = decoder.next_frame()? {
            match frame {
                WireFrame::Hello { version } => {
                    if version != WIRE_VERSION {
                        return Err(WireError::Version { found: version });
                    }
                    greeted = true;
                }
                WireFrame::Bye => {
                    summary.clean_shutdown = true;
                    return Ok(summary);
                }
                WireFrame::TickEnd { .. } => {
                    if !greeted {
                        return Err(WireError::Corrupt {
                            at: 0,
                            reason: "data frame before Hello",
                        });
                    }
                    summary.ticks += 1;
                    if fleet.step().is_err() {
                        summary.step_errors += 1;
                    }
                }
                data => {
                    if !greeted {
                        return Err(WireError::Corrupt {
                            at: 0,
                            reason: "data frame before Hello",
                        });
                    }
                    let stamped = data.to_stamped().expect("reading/input is a data frame");
                    summary.frames += 1;
                    match fleet.offer_frame(&stamped) {
                        Ok(true) => summary.accepted += 1,
                        // A stale stamp or unknown robot drops the
                        // frame, not the connection.
                        Ok(false) | Err(_) => summary.rejected += 1,
                    }
                }
            }
        }
    }
}

/// Accepts **one** connection on an already-bound TCP listener and
/// pumps it to completion. The single-connection shape matches the
/// deployment: one load generator (or bus bridge) per service process.
///
/// # Errors
///
/// Accept/socket failures or any [`pump`] protocol error.
pub fn serve_tcp(
    listener: &TcpListener,
    fleet: &mut ShardedFleet,
) -> Result<ServeSummary, WireError> {
    let (stream, _addr) = listener.accept()?;
    pump(stream, fleet)
}

/// Accepts **one** connection on an already-bound Unix-domain listener
/// and pumps it to completion (see [`serve_tcp`]).
///
/// # Errors
///
/// Accept/socket failures or any [`pump`] protocol error.
pub fn serve_uds(
    listener: &UnixListener,
    fleet: &mut ShardedFleet,
) -> Result<ServeSummary, WireError> {
    let (stream, _addr) = listener.accept()?;
    pump(stream, fleet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_buffers_until_flush() {
        let mut sink = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut sink);
            writer.send(&WireFrame::TickEnd { tick: 0 });
            writer.flush().unwrap();
        }
        let mut decoder = FrameDecoder::new();
        decoder.feed(&sink).unwrap();
        assert!(matches!(
            decoder.next_frame().unwrap(),
            Some(WireFrame::Hello {
                version: WIRE_VERSION
            })
        ));
        assert!(matches!(
            decoder.next_frame().unwrap(),
            Some(WireFrame::TickEnd { tick: 0 })
        ));
        assert!(decoder.next_frame().unwrap().is_none());
    }
}
