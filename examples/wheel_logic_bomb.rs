//! Actuator-misbehavior walkthrough: Table II scenario #1 (wheel
//! controller logic bomb, ∓6000 speed units) — how the unknown-input
//! estimator quantifies an attack it cannot observe directly.
//!
//! ```text
//! cargo run --release --example wheel_logic_bomb
//! ```

use roboads::sim::{Scenario, SimulationBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::wheel_logic_bomb();
    println!("scenario #1: {}\n", scenario.description());

    let outcome = SimulationBuilder::khepera()
        .scenario(scenario)
        .seed(42)
        .run()?;

    // The differential channel (vR − vL) is what the attack drives and
    // what the pose sensors observe sharply; the common-mode channel is
    // noisier (it only shows up through forward speed).
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "t (s)", "d̂a vL (m/s)", "d̂a vR (m/s)", "Δ = vR−vL", "χ² stat", "alarm"
    );
    for r in outcome.trace.records() {
        if r.k % 20 != 19 {
            continue; // one line per two seconds
        }
        let a = &r.report.actuator_anomaly;
        println!(
            "{:>5.1} {:>+12.4} {:>+12.4} {:>+12.4} {:>10.1} {:>10}",
            r.time,
            a.estimate[0],
            a.estimate[1],
            a.estimate[1] - a.estimate[0],
            a.statistic,
            if r.report.actuator_alarm {
                "ALARM"
            } else {
                "-"
            },
        );
    }

    // Quantification accuracy over the attack steady state.
    let (mut dl, mut dr, mut n) = (0.0, 0.0, 0);
    for r in outcome.trace.records().iter().filter(|r| r.k >= 50) {
        dl += r.report.actuator_anomaly.estimate[0];
        dr += r.report.actuator_anomaly.estimate[1];
        n += 1;
    }
    println!(
        "\nmean anomaly estimate after onset: vL {:+.4} m/s, vR {:+.4} m/s \
         (injected −0.04 / +0.04 = ∓6000 speed units)",
        dl / n as f64,
        dr / n as f64,
    );
    println!(
        "actuator detection delay: {:.2} s; FNR {:.2}%",
        outcome.eval.actuator_delay().expect("attack is detected"),
        outcome.eval.actuator_fnr() * 100.0,
    );
    Ok(())
}
