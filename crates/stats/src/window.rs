use std::collections::VecDeque;

use crate::{Result, StatsError};

/// The `c`-of-`w` sliding-window decision rule of the RoboADS decision
/// maker.
///
/// Raw χ² test outcomes are noisy: a bump in the floor or a transient
/// glitch can produce an isolated positive. The paper therefore raises an
/// alarm only when at least `c` (criteria) positives appear within the
/// last `w` (window size) iterations (§IV-D), and tunes `c/w = 2/2` for
/// sensor tests and `3/6` for actuator tests (§V-F).
///
/// # Example
///
/// ```
/// use roboads_stats::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3, 6).unwrap();
/// let inputs = [true, false, true, false, false, true];
/// let mut alarms = Vec::new();
/// for v in inputs {
///     alarms.push(w.push(v));
/// }
/// // Third positive arrives within the 6-wide window → alarm.
/// assert_eq!(alarms, [false, false, false, false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlidingWindow {
    criteria: usize,
    window: usize,
    history: VecDeque<bool>,
    positives: usize,
}

impl SlidingWindow {
    /// Creates a window requiring `criteria` positives within the last
    /// `window` pushes.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `criteria == 0`,
    /// `window == 0`, or `criteria > window` (which could never fire).
    pub fn new(criteria: usize, window: usize) -> Result<Self> {
        if criteria == 0 || window == 0 || criteria > window {
            return Err(StatsError::InvalidParameter {
                name: "criteria/window",
                value: format!("{criteria}/{window}"),
            });
        }
        Ok(SlidingWindow {
            criteria,
            window,
            history: VecDeque::with_capacity(window),
            positives: 0,
        })
    }

    /// The decision criteria `c`.
    pub fn criteria(&self) -> usize {
        self.criteria
    }

    /// The window size `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Pushes one test outcome and returns whether the window condition
    /// is met (`≥ c` positives among the last `w` outcomes).
    pub fn push(&mut self, positive: bool) -> bool {
        if self.history.len() == self.window && self.history.pop_front() == Some(true) {
            self.positives -= 1;
        }
        self.history.push_back(positive);
        if positive {
            self.positives += 1;
        }
        self.positives >= self.criteria
    }

    /// Current number of positives inside the window.
    pub fn positives(&self) -> usize {
        self.positives
    }

    /// Clears the window history.
    pub fn reset(&mut self) {
        self.history.clear();
        self.positives = 0;
    }

    /// The window history oldest-first, for snapshotting.
    pub fn history(&self) -> impl Iterator<Item = bool> + '_ {
        self.history.iter().copied()
    }

    /// Replaces the window history (oldest-first), recomputing the
    /// positive count.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `history` is longer
    /// than the window size.
    pub fn restore_history(&mut self, history: &[bool]) -> Result<()> {
        if history.len() > self.window {
            return Err(StatsError::InvalidParameter {
                name: "history",
                value: format!("{} entries > window {}", history.len(), self.window),
            });
        }
        self.history.clear();
        self.history.extend(history.iter().copied());
        self.positives = history.iter().filter(|&&p| p).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_of_one_passes_through() {
        let mut w = SlidingWindow::new(1, 1).unwrap();
        assert!(w.push(true));
        assert!(!w.push(false));
        assert!(w.push(true));
    }

    #[test]
    fn two_of_two_requires_consecutive() {
        let mut w = SlidingWindow::new(2, 2).unwrap();
        assert!(!w.push(true));
        assert!(!w.push(false));
        assert!(!w.push(true));
        assert!(w.push(true));
    }

    #[test]
    fn positives_expire_as_window_slides() {
        let mut w = SlidingWindow::new(2, 3).unwrap();
        assert!(!w.push(true));
        assert!(!w.push(false));
        assert!(w.push(true)); // [T F T] → 2 positives
        assert!(!w.push(false)); // [F T F] → 1 positive
        assert_eq!(w.positives(), 1);
    }

    #[test]
    fn transient_single_fault_is_suppressed() {
        // A single glitch inside a long clean run never fires a 2/2 window.
        let mut w = SlidingWindow::new(2, 2).unwrap();
        for i in 0..100 {
            let glitch = i == 50;
            assert!(!w.push(glitch), "fired at iteration {i}");
        }
    }

    #[test]
    fn persistent_anomaly_fires_with_delay_w() {
        let mut w = SlidingWindow::new(3, 6).unwrap();
        let mut first_alarm = None;
        for i in 0..10 {
            if w.push(true) && first_alarm.is_none() {
                first_alarm = Some(i);
            }
        }
        // Persistent positives fire at index c-1 = 2.
        assert_eq!(first_alarm, Some(2));
    }

    #[test]
    fn reset_clears_history() {
        let mut w = SlidingWindow::new(2, 2).unwrap();
        w.push(true);
        w.reset();
        assert_eq!(w.positives(), 0);
        assert!(!w.push(true));
    }

    #[test]
    fn invalid_configurations_rejected() {
        assert!(SlidingWindow::new(0, 2).is_err());
        assert!(SlidingWindow::new(2, 0).is_err());
        assert!(SlidingWindow::new(3, 2).is_err());
    }
}
