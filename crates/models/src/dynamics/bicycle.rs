use roboads_linalg::{Matrix, Vector};

use crate::angle::wrap_angle;
use crate::dynamics::DynamicsModel;
use crate::{ModelError, Result};

/// Kinematic bicycle model — the Tamiya TT-02 Ackermann RC car of §V-D.
///
/// State `x = (x, y, θ)`; input `u = (v, δ)` with `v` the rear-axle speed
/// in m/s and `δ` the front steering angle in radians. Over one control
/// period `Δt`:
///
/// ```text
/// x_k = x + v·cos(θ)·Δt
/// y_k = y + v·sin(θ)·Δt
/// θ_k = wrap(θ + (v / L)·tan(δ)·Δt)       (L = wheelbase)
/// ```
///
/// The steering angle is clamped to `±max_steer` before use, mirroring
/// the mechanical stop of the physical car; this keeps `tan(δ)` away from
/// its poles, so the model stays well-behaved under arbitrarily corrupted
/// actuator commands.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::dynamics::Bicycle;
/// use roboads_models::DynamicsModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let car = Bicycle::new(0.257, 0.45, 0.1)?; // Tamiya TT-02 at 10 Hz
/// let x1 = car.step(
///     &Vector::from_slice(&[0.0, 0.0, 0.0]),
///     &Vector::from_slice(&[0.5, 0.0]),
/// );
/// assert!((x1[0] - 0.05).abs() < 1e-12); // straight ahead
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bicycle {
    wheelbase: f64,
    max_steer: f64,
    dt: f64,
}

impl Bicycle {
    /// Creates the model from the wheelbase (m), the maximum steering
    /// angle (rad) and the control period (s).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive or
    /// non-finite parameters, or `max_steer ≥ π/2`.
    pub fn new(wheelbase: f64, max_steer: f64, dt: f64) -> Result<Self> {
        if !(wheelbase.is_finite() && wheelbase > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "wheelbase",
                value: format!("{wheelbase}"),
            });
        }
        if !(max_steer.is_finite() && max_steer > 0.0 && max_steer < std::f64::consts::FRAC_PI_2) {
            return Err(ModelError::InvalidParameter {
                name: "max_steer",
                value: format!("{max_steer}"),
            });
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "dt",
                value: format!("{dt}"),
            });
        }
        Ok(Bicycle {
            wheelbase,
            max_steer,
            dt,
        })
    }

    /// Wheelbase in meters.
    pub fn wheelbase(&self) -> f64 {
        self.wheelbase
    }

    /// Steering limit in radians.
    pub fn max_steer(&self) -> f64 {
        self.max_steer
    }

    /// Control period in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    fn clamp_steer(&self, delta: f64) -> f64 {
        delta.clamp(-self.max_steer, self.max_steer)
    }
}

impl DynamicsModel for Bicycle {
    fn state_dim(&self) -> usize {
        3
    }

    fn input_dim(&self) -> usize {
        2
    }

    fn angular_state_components(&self) -> &[usize] {
        &[2]
    }

    fn name(&self) -> &str {
        "bicycle"
    }

    fn step(&self, x: &Vector, u: &Vector) -> Vector {
        assert_eq!(x.len(), 3, "bicycle expects a 3-state");
        assert_eq!(u.len(), 2, "bicycle expects (speed, steering)");
        let v = u[0];
        let delta = self.clamp_steer(u[1]);
        let theta = x[2];
        Vector::from_slice(&[
            x[0] + v * theta.cos() * self.dt,
            x[1] + v * theta.sin() * self.dt,
            wrap_angle(theta + v / self.wheelbase * delta.tan() * self.dt),
        ])
    }

    fn state_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let v = u[0];
        let theta = x[2];
        Matrix::from_rows(&[
            &[1.0, 0.0, -v * theta.sin() * self.dt],
            &[0.0, 1.0, v * theta.cos() * self.dt],
            &[0.0, 0.0, 1.0],
        ])
        .expect("static shape")
    }

    fn input_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let v = u[0];
        let delta = self.clamp_steer(u[1]);
        let theta = x[2];
        let l = self.wheelbase;
        // Inside the clamp the derivative w.r.t. δ is v·Δt / (L·cos²δ);
        // at the stops it is zero, but we keep the interior derivative so
        // the anomaly-compensation gain never degenerates.
        let sec2 = 1.0 / (delta.cos() * delta.cos());
        Matrix::from_rows(&[
            &[theta.cos() * self.dt, 0.0],
            &[theta.sin() * self.dt, 0.0],
            &[delta.tan() * self.dt / l, v * self.dt * sec2 / l],
        ])
        .expect("static shape")
    }

    fn step_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        assert_eq!(x.len(), 3, "bicycle expects a 3-state");
        assert_eq!(u.len(), 2, "bicycle expects (speed, steering)");
        let v = u[0];
        let delta = self.clamp_steer(u[1]);
        let theta = x[2];
        out[0] = x[0] + v * theta.cos() * self.dt;
        out[1] = x[1] + v * theta.sin() * self.dt;
        out[2] = wrap_angle(theta + v / self.wheelbase * delta.tan() * self.dt);
    }

    fn state_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        let v = u[0];
        let theta = x[2];
        out.as_mut_slice().copy_from_slice(&[
            1.0,
            0.0,
            -v * theta.sin() * self.dt,
            0.0,
            1.0,
            v * theta.cos() * self.dt,
            0.0,
            0.0,
            1.0,
        ]);
    }

    fn input_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        let v = u[0];
        let delta = self.clamp_steer(u[1]);
        let theta = x[2];
        let l = self.wheelbase;
        let sec2 = 1.0 / (delta.cos() * delta.cos());
        out.as_mut_slice().copy_from_slice(&[
            theta.cos() * self.dt,
            0.0,
            theta.sin() * self.dt,
            0.0,
            delta.tan() * self.dt / l,
            v * self.dt * sec2 / l,
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::test_support::{assert_into_variants_match, assert_jacobians_match};

    fn car() -> Bicycle {
        Bicycle::new(0.257, 0.45, 0.1).unwrap()
    }

    #[test]
    fn straight_motion_with_zero_steer() {
        let b = car();
        let x1 = b.step(
            &Vector::from_slice(&[1.0, 2.0, 0.0]),
            &Vector::from_slice(&[1.0, 0.0]),
        );
        assert!((x1[0] - 1.1).abs() < 1e-12);
        assert_eq!(x1[1], 2.0);
        assert_eq!(x1[2], 0.0);
    }

    #[test]
    fn steering_turns_the_car() {
        let b = car();
        let x1 = b.step(
            &Vector::from_slice(&[0.0, 0.0, 0.0]),
            &Vector::from_slice(&[0.5, 0.3]),
        );
        let expected_dtheta = 0.5 / 0.257 * 0.3f64.tan() * 0.1;
        assert!((x1[2] - expected_dtheta).abs() < 1e-12);
    }

    #[test]
    fn steering_is_clamped_at_mechanical_stop() {
        let b = car();
        let sane = b.step(
            &Vector::from_slice(&[0.0, 0.0, 0.0]),
            &Vector::from_slice(&[0.5, 10.0]), // corrupted command
        );
        let at_stop = b.step(
            &Vector::from_slice(&[0.0, 0.0, 0.0]),
            &Vector::from_slice(&[0.5, 0.45]),
        );
        assert_eq!(sane.as_slice(), at_stop.as_slice());
    }

    #[test]
    fn jacobians_match_numeric_inside_clamp() {
        let b = car();
        for &(theta, v, delta) in &[(0.0, 0.3, 0.1), (1.2, 0.6, -0.3), (-2.0, 0.1, 0.44)] {
            let x = Vector::from_slice(&[0.5, 0.5, theta]);
            let u = Vector::from_slice(&[v, delta]);
            assert_jacobians_match(&b, &x, &u, 1e-5);
            assert_into_variants_match(&b, &x, &u);
        }
    }

    #[test]
    fn reverse_driving_works() {
        let b = car();
        let x1 = b.step(
            &Vector::from_slice(&[0.0, 0.0, 0.0]),
            &Vector::from_slice(&[-0.5, 0.0]),
        );
        assert!(x1[0] < 0.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Bicycle::new(0.0, 0.45, 0.1).is_err());
        assert!(Bicycle::new(0.257, 0.0, 0.1).is_err());
        assert!(Bicycle::new(0.257, 1.6, 0.1).is_err()); // ≥ π/2
        assert!(Bicycle::new(0.257, 0.45, 0.0).is_err());
    }

    #[test]
    fn metadata() {
        let b = car();
        assert_eq!(b.state_dim(), 3);
        assert_eq!(b.input_dim(), 2);
        assert_eq!(b.name(), "bicycle");
        assert_eq!(b.wheelbase(), 0.257);
        assert_eq!(b.max_steer(), 0.45);
        assert_eq!(b.dt(), 0.1);
    }
}
