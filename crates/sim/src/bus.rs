//! CAN-like communication bus: the "communication module" of the
//! paper's Figure 1.
//!
//! Every sensing workflow publishes its planner-visible reading as a
//! fixed-point [`Frame`] each control iteration, and the planner's
//! monitor decodes the frames back into reading vectors — so the data
//! the detector consumes really does round-trip through the bus, as it
//! does on a vehicle. Frame payloads are nano-unit integers (CAN buses
//! carry integers, not floats); the quantization error of 0.5 nm is far
//! below every sensor noise floor.
//!
//! The bus also gives Table I's *packet injection* attacks a concrete
//! surface: an injected frame with a sensing workflow's arbitration id
//! displaces the authentic reading for that iteration, exactly like the
//! speedometer-packet injection of the Jeep/Ford attacks the paper
//! cites.

use roboads_linalg::Vector;

/// Fixed-point scale: payload integers are nano-units (1e-9).
pub const PAYLOAD_SCALE: f64 = 1e-9;

/// Arbitration-id base for sensing workflows: sensor `i` publishes with
/// id `SENSOR_ID_BASE + i`.
pub const SENSOR_ID_BASE: u16 = 0x100;

/// Arbitration id for the planned-command frame.
pub const COMMAND_ID: u16 = 0x200;

/// One bus frame: an arbitration id, the publishing workflow's name and
/// a fixed-point payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Frame {
    /// Arbitration id (lower wins on a real CAN bus; here it only keys
    /// the consumer's lookup).
    pub id: u16,
    /// Publishing workflow, e.g. `"ips"`.
    pub source: String,
    /// Nano-unit payload words.
    pub payload: Vec<i64>,
}

impl Frame {
    /// Encodes a reading vector into a frame.
    ///
    /// # Panics
    ///
    /// Panics if a component exceeds the representable fixed-point range
    /// (±9.2e9 units — unreachable for meter/radian-scale signals).
    pub fn encode(id: u16, source: impl Into<String>, reading: &Vector) -> Frame {
        let payload = reading
            .as_slice()
            .iter()
            .map(|&v| {
                let scaled = v / PAYLOAD_SCALE;
                assert!(
                    scaled.abs() < i64::MAX as f64,
                    "value {v} exceeds the bus fixed-point range"
                );
                scaled.round() as i64
            })
            .collect();
        Frame {
            id,
            source: source.into(),
            payload,
        }
    }

    /// Decodes the payload back to a reading vector.
    pub fn decode(&self) -> Vector {
        Vector::from_fn(self.payload.len(), |i| {
            self.payload[i] as f64 * PAYLOAD_SCALE
        })
    }
}

/// A single-iteration bus: workflows publish, the monitor drains.
///
/// Later frames with the same arbitration id displace earlier ones
/// (the consumer keeps the freshest value), which is what makes packet
/// injection effective.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_sim::bus::{Bus, Frame, SENSOR_ID_BASE};
///
/// let mut bus = Bus::new();
/// bus.publish(Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[1.0, 2.0, 0.3])));
/// let reading = bus.latest(SENSOR_ID_BASE).unwrap().decode();
/// assert!((reading[0] - 1.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Bus {
    frames: Vec<Frame>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Publishes a frame (workflows and attackers alike).
    pub fn publish(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// The freshest frame carrying the given arbitration id.
    pub fn latest(&self, id: u16) -> Option<&Frame> {
        self.frames.iter().rev().find(|f| f.id == id)
    }

    /// All frames transmitted this iteration, in publish order (the
    /// forensic bus log).
    pub fn log(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames transmitted.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing was transmitted.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Clears the bus for the next control iteration.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_is_below_noise_floor() {
        let reading = Vector::from_slice(&[1.234_567_89, -0.000_123_456, 2.618_033_988]);
        let frame = Frame::encode(SENSOR_ID_BASE, "ips", &reading);
        let decoded = frame.decode();
        for i in 0..reading.len() {
            assert!(
                (decoded[i] - reading[i]).abs() <= PAYLOAD_SCALE / 2.0 + 1e-15,
                "component {i}: {} vs {}",
                decoded[i],
                reading[i]
            );
        }
    }

    #[test]
    fn latest_frame_wins_like_a_consumer_cache() {
        let mut bus = Bus::new();
        let authentic = Frame::encode(SENSOR_ID_BASE, "ips", &Vector::from_slice(&[1.0]));
        bus.publish(authentic);
        // Sensor packet injection (Table I): a forged frame with the
        // same id displaces the authentic reading.
        let forged = Frame::encode(SENSOR_ID_BASE, "attacker", &Vector::from_slice(&[9.0]));
        bus.publish(forged.clone());
        assert_eq!(bus.latest(SENSOR_ID_BASE), Some(&forged));
        assert_eq!(bus.len(), 2); // the log keeps both for forensics
    }

    #[test]
    fn ids_are_independent() {
        let mut bus = Bus::new();
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0]),
        ));
        bus.publish(Frame::encode(
            COMMAND_ID,
            "planner",
            &Vector::from_slice(&[0.05, 0.05]),
        ));
        assert_eq!(bus.latest(SENSOR_ID_BASE).unwrap().source, "ips");
        assert_eq!(bus.latest(COMMAND_ID).unwrap().payload.len(), 2);
        assert!(bus.latest(0x300).is_none());
    }

    #[test]
    fn clear_resets_for_the_next_iteration() {
        let mut bus = Bus::new();
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0]),
        ));
        assert!(!bus.is_empty());
        bus.clear();
        assert!(bus.is_empty());
        assert!(bus.latest(SENSOR_ID_BASE).is_none());
    }

    #[test]
    fn negative_and_angular_values_survive() {
        let reading = Vector::from_slice(&[-3.0, std::f64::consts::PI, -1e-6]);
        let decoded = Frame::encode(0x101, "enc", &reading).decode();
        assert!((decoded[0] + 3.0).abs() < 1e-8);
        assert!((decoded[1] - std::f64::consts::PI).abs() < 1e-8);
        assert!((decoded[2] + 1e-6).abs() < 1e-9);
    }
}
