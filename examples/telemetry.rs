//! Telemetry walkthrough: run the IPS-spoofing mission with a flight
//! recorder attached, then print the incident log (structured alarm
//! events), the pipeline span timings, and the run's health summary as
//! JSON — everything `roboads::obs` collects, with zero external
//! dependencies.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use roboads::obs::{RingBufferSink, Telemetry, Value};
use roboads::sim::{Scenario, SimulationBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ring buffer keeps the most recent records (flight-recorder
    // semantics); 100k is plenty for one 200-iteration mission. Use
    // `WriterSink::new(std::fs::File::create("run.jsonl")?)` instead to
    // stream every span and event to disk as JSON Lines.
    let ring = Arc::new(RingBufferSink::new(100_000));

    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .seed(7)
        .telemetry(Telemetry::new(ring.clone()))
        .run()?;

    // --- The incident log: edge-triggered alarm events. ---
    println!("incident log:");
    for event in ring.events() {
        let fields = event
            .fields
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    Value::F64(f) => format!("{f:.2}"),
                    other => other.to_string(),
                };
                format!("{k}={v}")
            })
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  t={:>7.3}s  {:<34} {}",
            event.time_ns as f64 / 1e9,
            event.name,
            fields
        );
    }

    // --- Span timings: where a detection iteration spends its time. ---
    let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in ring.spans() {
        let entry = by_name.entry(span.name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += span.duration_ns;
    }
    println!("\npipeline spans (count, mean):");
    for (name, (count, total_ns)) in &by_name {
        println!(
            "  {:<22} {:>6}×  {:>8.1} µs",
            name,
            count,
            *total_ns as f64 / *count as f64 / 1e3
        );
    }

    // --- The health summary every SimOutcome carries (even with the
    //     default NoopSink — metrics always collect). ---
    println!("\nhealth summary:");
    println!(
        "  {} steps, step latency p50/p95/p99 = {:.1}/{:.1}/{:.1} µs",
        outcome.telemetry.steps,
        outcome.telemetry.step_latency.p50 * 1e6,
        outcome.telemetry.step_latency.p95 * 1e6,
        outcome.telemetry.step_latency.p99 * 1e6,
    );
    println!(
        "  re-anchors: {}, numeric failures: {}, cholesky breakdowns: {}",
        outcome.telemetry.reanchors,
        outcome.telemetry.numeric_failures,
        outcome.telemetry.cholesky_failures,
    );
    for mode in &outcome.telemetry.modes {
        println!(
            "  mode {}: probability p50 {:.3}, consistency p50 {:.3}",
            mode.mode, mode.probability.p50, mode.consistency.p50
        );
    }

    // Machine-readable form (the bench harnesses dump the same shape).
    println!("\nsummary json:\n{}", outcome.telemetry.to_json());
    Ok(())
}
