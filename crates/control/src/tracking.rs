use roboads_linalg::Vector;
use roboads_models::Pose2;

use crate::{ControlError, Path, Pid, Result};

/// A closed-loop path-tracking controller: pose in, control command out.
///
/// This is the "control units" box of the paper's Figure 1 — it consumes
/// the planner-state estimate each control iteration and produces the
/// planned control commands `u_{k-1}` that both the actuators and the
/// RoboADS monitor receive.
pub trait TrackingController: Send {
    /// Dimension of the produced command vector.
    fn command_dim(&self) -> usize;

    /// Computes the command for the current pose estimate.
    fn command(&mut self, pose: &Pose2) -> Vector;

    /// Whether the mission goal has been reached from this pose.
    fn reached_goal(&self, pose: &Pose2) -> bool;
}

/// PID path tracker for the Khepera differential-drive robot: produces
/// wheel-speed commands `(v_L, v_R)` in m/s.
///
/// The heading loop is a PID on the bearing error to a lookahead point;
/// the cruise speed is scaled down near the goal and while turning
/// sharply.
///
/// # Example
///
/// ```
/// use roboads_control::{DifferentialDriveTracker, Path, TrackingController};
/// use roboads_models::Pose2;
///
/// # fn main() -> Result<(), roboads_control::ControlError> {
/// let path = Path::new(vec![(0.0, 0.0), (1.0, 0.0)])?;
/// let mut tracker = DifferentialDriveTracker::new(path, 0.0885, 0.1)?;
/// let u = tracker.command(&Pose2::new(0.0, 0.0, 0.0));
/// assert_eq!(u.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialDriveTracker {
    path: Path,
    heading_pid: Pid,
    wheel_base: f64,
    cruise_speed: f64,
    max_wheel_speed: f64,
    lookahead: f64,
    goal_tolerance: f64,
}

impl DifferentialDriveTracker {
    /// Creates a tracker for the given path, wheel base (m) and control
    /// period (s), with Khepera-tuned gains.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for non-positive
    /// geometry.
    pub fn new(path: Path, wheel_base: f64, dt: f64) -> Result<Self> {
        if !(wheel_base.is_finite() && wheel_base > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "wheel_base",
                value: format!("{wheel_base}"),
            });
        }
        Ok(DifferentialDriveTracker {
            path,
            heading_pid: Pid::new(1.8, 0.0, 0.08, dt)?.with_output_limit(2.5),
            wheel_base,
            cruise_speed: 0.12,
            max_wheel_speed: 0.25,
            lookahead: 0.25,
            goal_tolerance: 0.10,
        })
    }

    /// The path being tracked.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TrackingController for DifferentialDriveTracker {
    fn command_dim(&self) -> usize {
        2
    }

    fn command(&mut self, pose: &Pose2) -> Vector {
        if self.reached_goal(pose) {
            return Vector::zeros(2);
        }
        let (tx, ty) = self.path.lookahead_point(pose.x, pose.y, self.lookahead);
        let heading_error = pose.heading_error_to(tx, ty);
        let omega = self.heading_pid.update(heading_error);
        // Slow down near the goal and while turning hard.
        let goal_d = pose.distance_to(&Pose2::new(self.path.goal().0, self.path.goal().1, 0.0));
        let speed_scale =
            (goal_d / 0.3).min(1.0) * (1.0 - 0.7 * (heading_error.abs() / 1.2).min(1.0));
        let v = self.cruise_speed * speed_scale.max(0.15);
        let half = 0.5 * omega * self.wheel_base;
        let vl = (v - half).clamp(-self.max_wheel_speed, self.max_wheel_speed);
        let vr = (v + half).clamp(-self.max_wheel_speed, self.max_wheel_speed);
        Vector::from_slice(&[vl, vr])
    }

    fn reached_goal(&self, pose: &Pose2) -> bool {
        let (gx, gy) = self.path.goal();
        pose.distance_to(&Pose2::new(gx, gy, 0.0)) <= self.goal_tolerance
    }
}

/// PID path tracker for the Tamiya bicycle-model car: produces
/// `(speed, steering)` commands.
///
/// # Example
///
/// ```
/// use roboads_control::{BicycleTracker, Path, TrackingController};
/// use roboads_models::Pose2;
///
/// # fn main() -> Result<(), roboads_control::ControlError> {
/// let path = Path::new(vec![(0.0, 0.0), (2.0, 0.0)])?;
/// let mut tracker = BicycleTracker::new(path, 0.45, 0.1)?;
/// let u = tracker.command(&Pose2::new(0.0, 0.2, 0.0));
/// assert!(u[1] < 0.0); // steer back toward the path
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BicycleTracker {
    path: Path,
    steering_pid: Pid,
    cruise_speed: f64,
    max_steer: f64,
    lookahead: f64,
    goal_tolerance: f64,
}

impl BicycleTracker {
    /// Creates a tracker for the given path and steering limit (rad) at
    /// the control period `dt` (s), with Tamiya-tuned gains.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for a non-positive
    /// steering limit.
    pub fn new(path: Path, max_steer: f64, dt: f64) -> Result<Self> {
        if !(max_steer.is_finite() && max_steer > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "max_steer",
                value: format!("{max_steer}"),
            });
        }
        Ok(BicycleTracker {
            path,
            steering_pid: Pid::new(1.2, 0.0, 0.05, dt)?.with_output_limit(max_steer),
            cruise_speed: 0.15,
            max_steer,
            lookahead: 0.35,
            goal_tolerance: 0.12,
        })
    }

    /// The path being tracked.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TrackingController for BicycleTracker {
    fn command_dim(&self) -> usize {
        2
    }

    fn command(&mut self, pose: &Pose2) -> Vector {
        if self.reached_goal(pose) {
            return Vector::zeros(2);
        }
        let (tx, ty) = self.path.lookahead_point(pose.x, pose.y, self.lookahead);
        let heading_error = pose.heading_error_to(tx, ty);
        let steer = self
            .steering_pid
            .update(heading_error)
            .clamp(-self.max_steer, self.max_steer);
        let goal_d = pose.distance_to(&Pose2::new(self.path.goal().0, self.path.goal().1, 0.0));
        let v = self.cruise_speed * (goal_d / 0.3).clamp(0.3, 1.0);
        Vector::from_slice(&[v, steer])
    }

    fn reached_goal(&self, pose: &Pose2) -> bool {
        let (gx, gy) = self.path.goal();
        pose.distance_to(&Pose2::new(gx, gy, 0.0)) <= self.goal_tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::dynamics::{Bicycle, DifferentialDrive};
    use roboads_models::DynamicsModel;

    fn straight_path() -> Path {
        Path::new(vec![(0.0, 0.5), (3.0, 0.5)]).unwrap()
    }

    #[test]
    fn differential_tracker_follows_straight_path() {
        let dd = DifferentialDrive::new(0.0885, 0.1).unwrap();
        let mut tracker = DifferentialDriveTracker::new(straight_path(), 0.0885, 0.1).unwrap();
        let mut x = Vector::from_slice(&[0.0, 0.3, 0.5]); // off the path, wrong heading
        for _ in 0..600 {
            let pose = Pose2::from_vector(&x).unwrap();
            if tracker.reached_goal(&pose) {
                break;
            }
            let u = tracker.command(&pose);
            x = dd.step(&x, &u);
        }
        let final_pose = Pose2::from_vector(&x).unwrap();
        assert!(
            tracker.reached_goal(&final_pose),
            "did not reach goal, ended at {final_pose:?}"
        );
    }

    #[test]
    fn differential_tracker_turns_toward_path() {
        let mut tracker = DifferentialDriveTracker::new(straight_path(), 0.0885, 0.1).unwrap();
        // Robot below the path facing east: lookahead point is up-path,
        // so the left wheel should be slower than the right (turn left).
        let u = tracker.command(&Pose2::new(0.5, 0.0, 0.0));
        assert!(u[1] > u[0], "expected left turn, got {u:?}");
    }

    #[test]
    fn differential_tracker_stops_at_goal() {
        let mut tracker = DifferentialDriveTracker::new(straight_path(), 0.0885, 0.1).unwrap();
        let u = tracker.command(&Pose2::new(3.0, 0.5, 0.0));
        assert_eq!(u.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn bicycle_tracker_follows_straight_path() {
        let car = Bicycle::new(0.257, 0.45, 0.1).unwrap();
        let mut tracker = BicycleTracker::new(straight_path(), 0.45, 0.1).unwrap();
        let mut x = Vector::from_slice(&[0.0, 0.2, -0.4]);
        for _ in 0..600 {
            let pose = Pose2::from_vector(&x).unwrap();
            if tracker.reached_goal(&pose) {
                break;
            }
            let u = tracker.command(&pose);
            x = car.step(&x, &u);
        }
        let final_pose = Pose2::from_vector(&x).unwrap();
        assert!(
            tracker.reached_goal(&final_pose),
            "did not reach goal, ended at {final_pose:?}"
        );
    }

    #[test]
    fn bicycle_steering_respects_limit() {
        let mut tracker = BicycleTracker::new(straight_path(), 0.45, 0.1).unwrap();
        // Facing the wrong way entirely.
        let u = tracker.command(&Pose2::new(1.0, 0.5, std::f64::consts::PI));
        assert!(u[1].abs() <= 0.45 + 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let p = straight_path();
        assert!(DifferentialDriveTracker::new(p.clone(), 0.0, 0.1).is_err());
        assert!(BicycleTracker::new(p, -0.1, 0.1).is_err());
    }
}
