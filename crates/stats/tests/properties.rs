//! Property suite — gated behind the `proptest-suites` feature because
//! the tier-1 build must resolve offline with no external packages
//! (vendor proptest and re-add the dev-dependency to enable).
#![cfg(feature = "proptest-suites")]

//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use roboads_stats::gamma::{regularized_lower_gamma, regularized_upper_gamma};
use roboads_stats::{ChiSquared, ConfusionCounts, SlidingWindow};

proptest! {
    #[test]
    fn chi_square_cdf_is_monotone_and_bounded(dof in 1usize..12, a in 0.01f64..40.0, b in 0.01f64..40.0) {
        let chi = ChiSquared::new(dof).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (cl, ch) = (chi.cdf(lo).unwrap(), chi.cdf(hi).unwrap());
        prop_assert!((0.0..=1.0).contains(&cl));
        prop_assert!((0.0..=1.0).contains(&ch));
        prop_assert!(cl <= ch + 1e-12);
    }

    #[test]
    fn chi_square_quantile_round_trips(dof in 1usize..12, p in 0.001f64..0.999) {
        let chi = ChiSquared::new(dof).unwrap();
        let x = chi.inverse_cdf(p).unwrap();
        prop_assert!((chi.cdf(x).unwrap() - p).abs() < 1e-8);
    }

    #[test]
    fn gamma_complement_identity(s in 0.5f64..10.0, x in 0.0f64..30.0) {
        let p = regularized_lower_gamma(s, x).unwrap();
        let q = regularized_upper_gamma(s, x).unwrap();
        prop_assert!((p + q - 1.0).abs() < 1e-10);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    #[test]
    fn sliding_window_matches_naive_count(
        c in 1usize..5,
        extra in 0usize..4,
        inputs in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let w = c + extra;
        let mut window = SlidingWindow::new(c, w).unwrap();
        for (k, &v) in inputs.iter().enumerate() {
            let fired = window.push(v);
            let start = k.saturating_sub(w - 1);
            let naive = inputs[start..=k].iter().filter(|&&b| b).count() >= c;
            prop_assert_eq!(fired, naive, "mismatch at index {}", k);
        }
    }

    #[test]
    fn confusion_rates_are_consistent(
        tp in 0u64..500, fp in 0u64..500, fn_ in 0u64..500, tn in 0u64..500,
    ) {
        let c = ConfusionCounts {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            true_negatives: tn,
        };
        prop_assert_eq!(c.total(), tp + fp + fn_ + tn);
        if tp + fn_ > 0 {
            prop_assert!((c.true_positive_rate() + c.false_negative_rate() - 1.0).abs() < 1e-12);
        }
        let f1 = c.f1_score();
        prop_assert!((0.0..=1.0).contains(&f1));
        if tp > 0 {
            // F1 is the harmonic mean: between min and max of P and R.
            let p = c.precision();
            let r = c.recall();
            prop_assert!(f1 <= p.max(r) + 1e-12);
            prop_assert!(f1 >= p.min(r) - 1e-12);
        }
    }

    #[test]
    fn record_identified_never_counts_wrong_ids_as_true_positives(
        truth in any::<bool>(),
        alarm in any::<bool>(),
        correct in any::<bool>(),
    ) {
        let mut c = ConfusionCounts::default();
        c.record_identified(truth, alarm, correct);
        prop_assert_eq!(c.total(), 1);
        if c.true_positives == 1 {
            prop_assert!(truth && alarm && correct);
        }
    }
}
