use roboads_linalg::Vector;

use crate::angle::{angle_difference, wrap_angle};

/// A planar pose: position `(x, y)` in meters and heading `θ` in radians.
///
/// Both evaluation robots of the paper carry the 3-dimensional state
/// `x = (x, y, θ)`; `Pose2` is the typed view of that state vector.
///
/// # Example
///
/// ```
/// use roboads_models::Pose2;
///
/// let p = Pose2::new(1.0, 2.0, std::f64::consts::FRAC_PI_2);
/// let v = p.to_vector();
/// assert_eq!(Pose2::from_vector(&v).unwrap(), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pose2 {
    /// X position in meters.
    pub x: f64,
    /// Y position in meters.
    pub y: f64,
    /// Heading in radians, wrapped to `(−π, π]`.
    pub theta: f64,
}

impl Pose2 {
    /// Creates a pose, wrapping the heading.
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Pose2 {
            x,
            y,
            theta: wrap_angle(theta),
        }
    }

    /// Converts to the state vector `(x, y, θ)`.
    pub fn to_vector(self) -> Vector {
        Vector::from_slice(&[self.x, self.y, self.theta])
    }

    /// Reads a pose from the first three components of a state vector.
    ///
    /// Returns `None` when the vector has fewer than three components.
    pub fn from_vector(v: &Vector) -> Option<Self> {
        if v.len() < 3 {
            return None;
        }
        Some(Pose2::new(v[0], v[1], v[2]))
    }

    /// Euclidean distance between the positions of two poses.
    pub fn distance_to(&self, other: &Pose2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Bearing (world-frame angle) from this pose's position to a point.
    pub fn bearing_to(&self, x: f64, y: f64) -> f64 {
        (y - self.y).atan2(x - self.x)
    }

    /// Signed heading error toward a target point: how much the robot
    /// must turn (positive = counterclockwise) to face `(x, y)`.
    pub fn heading_error_to(&self, x: f64, y: f64) -> f64 {
        angle_difference(self.bearing_to(x, y), self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constructor_wraps_heading() {
        let p = Pose2::new(0.0, 0.0, 3.0 * PI);
        assert!((p.theta - PI).abs() < 1e-12);
    }

    #[test]
    fn vector_round_trip() {
        let p = Pose2::new(1.5, -2.0, 0.3);
        assert_eq!(Pose2::from_vector(&p.to_vector()), Some(p));
        assert_eq!(Pose2::from_vector(&Vector::zeros(2)), None);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Pose2::new(0.0, 0.0, 0.0);
        let b = Pose2::new(3.0, 4.0, 1.0);
        assert_eq!(a.distance_to(&b), 5.0);
        assert_eq!(b.distance_to(&a), 5.0);
    }

    #[test]
    fn bearing_quadrants() {
        let p = Pose2::new(0.0, 0.0, 0.0);
        assert!((p.bearing_to(1.0, 0.0) - 0.0).abs() < 1e-12);
        assert!((p.bearing_to(0.0, 1.0) - FRAC_PI_2).abs() < 1e-12);
        assert!((p.bearing_to(-1.0, 0.0).abs() - PI).abs() < 1e-12);
    }

    #[test]
    fn heading_error_accounts_for_current_heading() {
        let p = Pose2::new(0.0, 0.0, FRAC_PI_2);
        // Target straight ahead → zero error.
        assert!(p.heading_error_to(0.0, 5.0).abs() < 1e-12);
        // Target to the robot's right → negative (clockwise) error.
        assert!(p.heading_error_to(5.0, 0.0) < 0.0);
    }
}
