//! Property suite — gated behind the `proptest-suites` feature because
//! the tier-1 build must resolve offline with no external packages
//! (vendor proptest and re-add the dev-dependency to enable).
#![cfg(feature = "proptest-suites")]

//! Property-based tests of the NUISE estimator over randomized
//! trajectories, attacks and mode hypotheses.

use proptest::prelude::*;
use roboads_core::{nuise_step, Linearization, Mode, NuiseInput};
use roboads_linalg::{Matrix, Vector};
use roboads_models::presets;

fn clean_readings(system: &roboads_models::RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

fn pose() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.5f64..3.5, 0.5f64..3.5, -3.0f64..3.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clean_data_yields_null_anomalies_everywhere(
        (x, y, theta) in pose(),
        vl in -0.15f64..0.15,
        vr in -0.15f64..0.15,
        reference in 0usize..3,
    ) {
        let system = presets::khepera_system();
        let testing: Vec<usize> = (0..3).filter(|&i| i != reference).collect();
        let mode = Mode::new(vec![reference], testing);
        let x0 = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[vl, vr]);
        let x1 = system.dynamics().step(&x0, &u);
        let readings = clean_readings(&system, &x1);
        let out = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &(Matrix::identity(3) * 1e-4),
            u_prev: &u,
            readings: &readings,
            linearization: &Linearization::PerIteration,
            compensate: true,
        }).unwrap();
        prop_assert!(out.actuator_anomaly.max_abs() < 1e-8);
        prop_assert!(out.sensor_anomaly.max_abs() < 1e-8);
        prop_assert!(out.likelihood > 0.0);
        prop_assert!(out.consistency > 0.999, "consistency {}", out.consistency);
    }

    #[test]
    fn injected_actuator_bias_is_recovered_exactly_for_linear_input_channels(
        (x, y, theta) in pose(),
        bias_l in -0.05f64..0.05,
        bias_r in -0.05f64..0.05,
        reference in 0usize..3,
    ) {
        let system = presets::khepera_system();
        let testing: Vec<usize> = (0..3).filter(|&i| i != reference).collect();
        let mode = Mode::new(vec![reference], testing);
        let x0 = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[0.08, 0.06]);
        let bias = Vector::from_slice(&[bias_l, bias_r]);
        let x1 = system.dynamics().step(&x0, &(&u + &bias));
        let readings = clean_readings(&system, &x1);
        let out = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &(Matrix::identity(3) * 1e-4),
            u_prev: &u,
            readings: &readings,
            linearization: &Linearization::PerIteration,
            compensate: true,
        }).unwrap();
        // Differential drive is linear in u: the WLS estimate is exact.
        prop_assert!((&out.actuator_anomaly - &bias).max_abs() < 1e-6,
            "estimated {:?}, injected {:?}", out.actuator_anomaly, bias);
        // Compensation keeps the state exact too.
        prop_assert!((&out.state_estimate - &x1).max_abs() < 1e-6);
    }

    #[test]
    fn injected_testing_sensor_bias_is_recovered(
        (x, y, theta) in pose(),
        bias in -0.2f64..0.2,
        component in 0usize..3,
    ) {
        let system = presets::khepera_system();
        // Reference IPS, corrupt the encoder (testing offset 0..3).
        let mode = Mode::new(vec![0], vec![1, 2]);
        let x0 = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let mut readings = clean_readings(&system, &x1);
        readings[1][component] += bias;
        let out = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &(Matrix::identity(3) * 1e-4),
            u_prev: &u,
            readings: &readings,
            linearization: &Linearization::PerIteration,
            compensate: true,
        }).unwrap();
        prop_assert!((out.sensor_anomaly[component] - bias).abs() < 1e-6);
    }

    #[test]
    fn covariances_are_psd_for_arbitrary_readings(
        (x, y, theta) in pose(),
        z_noise in proptest::collection::vec(-0.3f64..0.3, 10),
    ) {
        // Even wildly inconsistent readings must not break PSD-ness.
        let system = presets::khepera_system();
        let mode = Mode::new(vec![1], vec![0, 2]);
        let x0 = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[0.05, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let mut readings = clean_readings(&system, &x1);
        let mut idx = 0;
        for r in &mut readings {
            for c in 0..r.len() {
                r[c] += z_noise[idx % z_noise.len()];
                idx += 1;
            }
        }
        let out = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &(Matrix::identity(3) * 1e-4),
            u_prev: &u,
            readings: &readings,
            linearization: &Linearization::PerIteration,
            compensate: true,
        }).unwrap();
        prop_assert!(out.state_covariance.is_positive_semi_definite(1e-9).unwrap());
        prop_assert!(out.actuator_covariance.is_positive_semi_definite(1e-9).unwrap());
        prop_assert!(out.sensor_covariance.is_positive_semi_definite(1e-9).unwrap());
        prop_assert!(out.likelihood.is_finite() && out.likelihood >= 0.0);
        prop_assert!((0.0..=1.0).contains(&out.consistency));
    }

    #[test]
    fn corrupted_reference_is_less_consistent_than_clean_reference(
        (x, y, theta) in pose(),
        bias in 0.1f64..0.3,
    ) {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[x, y, theta]);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let mut readings = clean_readings(&system, &x1);
        readings[2][1] += bias; // corrupt the LiDAR south-wall channel

        let step = |mode: &Mode| {
            nuise_step(NuiseInput {
                system: &system,
                mode,
                x_prev: &x0,
                p_prev: &(Matrix::identity(3) * 1e-4),
                u_prev: &u,
                readings: &readings,
                linearization: &Linearization::PerIteration,
                compensate: true,
            })
            .unwrap()
        };
        let clean_ref = step(&Mode::new(vec![0], vec![1, 2]));
        let corrupt_ref = step(&Mode::new(vec![2], vec![0, 1]));
        prop_assert!(
            clean_ref.consistency > corrupt_ref.consistency,
            "clean {} vs corrupt {}",
            clean_ref.consistency,
            corrupt_ref.consistency
        );
    }
}
