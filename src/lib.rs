//! # RoboADS — facade crate
//!
//! A from-scratch Rust reproduction of *"RoboADS: Anomaly Detection
//! against Sensor and Actuator Misbehaviors in Mobile Robots"* (Guo, Kim,
//! Virani, Xu, Zhu, Liu — DSN 2018).
//!
//! This crate re-exports the whole workspace so downstream users can
//! depend on a single package:
//!
//! * [`linalg`] — dense matrices, LU/Cholesky/eigendecompositions,
//!   pseudo-inverse and pseudo-determinant,
//! * [`stats`] — χ² distribution and hypothesis tests, Gaussian sampling,
//!   sliding windows, detection metrics,
//! * [`models`] — robot dynamics (differential drive, bicycle), sensor
//!   models (IPS, wheel encoder, LiDAR, IMU, GPS, magnetometer), arena
//!   maps and observability analysis,
//! * [`control`] — RRT* planning and PID path tracking,
//! * [`core`] — the paper's contribution: the NUISE estimator, the
//!   multi-mode engine, the mode selector, the decision maker, and the
//!   [`core::RoboAds`] detector,
//! * [`sim`] — closed-loop simulation with workflow-level misbehavior
//!   injection and the paper's 11 evaluation scenarios,
//! * [`obs`] — zero-dependency telemetry: spans, structured events,
//!   counters/gauges/histograms, and the sinks (`NoopSink`,
//!   `RingBufferSink`, JSONL `WriterSink`) the pipeline reports into
//!   (see `examples/telemetry.rs` and the README's Telemetry section),
//! * [`wire`] — the length-prefixed binary frame codec and TCP/UDS
//!   front-end that feeds a [`core::ShardedFleet`] from a separate
//!   load-generation process (see the README's "Fleet as a service"
//!   section and `DESIGN.md` §18).
//!
//! # Quickstart
//!
//! ```
//! use roboads::sim::{Scenario, SimulationBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Run the paper's scenario #4 (IPS spoofing) on the Khepera robot and
//! // confirm the detector identifies the misbehaving sensor.
//! let outcome = SimulationBuilder::khepera()
//!     .scenario(Scenario::ips_spoofing())
//!     .seed(7)
//!     .run()?;
//! assert!(outcome.report.sensor_misbehavior_detected());
//! # Ok(())
//! # }
//! ```

pub use roboads_control as control;
pub use roboads_core as core;
pub use roboads_linalg as linalg;
pub use roboads_models as models;
pub use roboads_obs as obs;
pub use roboads_sim as sim;
pub use roboads_stats as stats;
pub use roboads_wire as wire;
