use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Matrix, Result};

/// A dense column vector of `f64` values.
///
/// Robot states, sensor readings, control commands and anomaly vectors are
/// all `Vector` values in this reproduction.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
///
/// let v = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.dot(&v), 25.0);
/// ```
#[derive(Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by evaluating `f(i)` for each index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the components as a slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Extracts the underlying `Vec<f64>`.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; the anomaly-vector math in the
    /// estimator guarantees matched lengths, so a mismatch is a bug.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot of vectors with lengths {} and {}",
            self.len(),
            other.len()
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Largest absolute component, or 0 for an empty vector.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Applies `f` to every component, producing a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector {
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Returns the sub-vector `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested segment extends past the end.
    pub fn segment(&self, start: usize, len: usize) -> Vector {
        assert!(
            start + len <= self.len(),
            "segment {start}+{len} out of bounds for length {}",
            self.len()
        );
        Vector::from_slice(&self.data[start..start + len])
    }

    /// Writes the sub-vector starting at `start` into `out`; the
    /// segment length is `out.len()`. Bitwise identical to
    /// [`Vector::segment`] without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the requested segment extends past the end.
    pub fn segment_into(&self, start: usize, out: &mut Vector) {
        let len = out.len();
        assert!(
            start + len <= self.len(),
            "segment {start}+{len} out of bounds for length {}",
            self.len()
        );
        out.data.copy_from_slice(&self.data[start..start + len]);
    }

    /// Overwrites `self` with `src`, resizing as needed. Unlike
    /// [`Vector::copy_from`] the lengths may differ; existing capacity
    /// is reused, so repeated assignment between same-or-smaller
    /// vectors performs no heap allocation after warm-up.
    pub fn assign(&mut self, src: &Vector) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Concatenates `self` with `other`.
    pub fn concat(&self, other: &Vector) -> Vector {
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Vector { data }
    }

    /// Concatenates a sequence of vectors.
    pub fn concat_all<'a>(parts: impl IntoIterator<Item = &'a Vector>) -> Vector {
        let mut data = Vec::new();
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Vector { data }
    }

    /// Whether all components are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Interprets the vector as an `n × 1` column matrix.
    pub fn to_column_matrix(&self) -> Matrix {
        Matrix::from_vec(self.len(), 1, self.data.clone())
            .expect("length n data always forms an n x 1 matrix")
    }

    /// Computes the quadratic form `selfᵀ · m · self`.
    ///
    /// This is the χ² test statistic `dᵀ P⁻¹ d` shape used throughout the
    /// decision maker (with `m` an inverse covariance).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `m` is not square with
    /// side `self.len()`.
    pub fn quadratic_form(&self, m: &Matrix) -> Result<f64> {
        if m.rows() != self.len() || m.cols() != self.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "quadratic_form",
                lhs: (self.len(), 1),
                rhs: m.shape(),
            });
        }
        let mut acc = 0.0;
        for i in 0..self.len() {
            for j in 0..self.len() {
                acc += self.data[i] * m[(i, j)] * self.data[j];
            }
        }
        Ok(acc)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Vector::from_fn(3, |i| i as f64);
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], 2.0);
        assert!(!v.is_empty());
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from_slice(&[1.0, 2.0, 2.0]);
        assert_eq!(a.norm(), 3.0);
        let b = Vector::from_slice(&[2.0, 0.0, 1.0]);
        assert_eq!(a.dot(&b), 4.0);
    }

    #[test]
    #[should_panic(expected = "dot of vectors")]
    fn dot_length_mismatch_panics() {
        Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn segment_into_and_assign_match_allocating() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut seg = Vector::zeros(2);
        v.segment_into(1, &mut seg);
        assert_eq!(seg, v.segment(1, 2));

        let mut dst = Vector::zeros(4);
        dst.assign(&seg);
        assert_eq!(dst, seg);
        dst.assign(&v);
        assert_eq!(dst, v);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn segment_into_out_of_bounds_panics() {
        let mut seg = Vector::zeros(2);
        Vector::zeros(2).segment_into(1, &mut seg);
    }

    #[test]
    fn segment_and_concat() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.segment(1, 2).as_slice(), &[2.0, 3.0]);
        let w = v.segment(0, 2).concat(&v.segment(2, 2));
        assert_eq!(w, v);
        let all = Vector::concat_all([&v, &w]);
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let d = Vector::from_slice(&[1.0, 2.0]);
        let p = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        // 1*2*1 + 1*1*2 + 2*1*1 + 2*3*2 = 2 + 2 + 2 + 12 = 18
        assert_eq!(d.quadratic_form(&p).unwrap(), 18.0);
        assert!(d.quadratic_form(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn from_iterator_collects() {
        let v: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], 3.0);
    }

    #[test]
    fn max_abs_and_map() {
        let v = Vector::from_slice(&[-3.0, 2.0]);
        assert_eq!(v.max_abs(), 3.0);
        assert_eq!(v.map(f64::abs).as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn column_matrix_shape() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let m = v.to_column_matrix();
        assert_eq!(m.shape(), (3, 1));
        assert_eq!(m[(2, 0)], 3.0);
    }
}
