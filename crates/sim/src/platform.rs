use roboads_stats::StdRng;

use roboads_linalg::Vector;
use roboads_models::RobotSystem;
use roboads_stats::MultivariateNormal;

use crate::Result;

/// The physical robot platform: ground-truth state propagation
/// `x_k = f(x_{k−1}, u^{exec}_{k−1}) + ζ_{k−1}` with sampled process
/// noise.
///
/// # Example
///
/// ```
/// use roboads_stats::{SeedableRng, StdRng};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
/// use roboads_sim::RobotPlatform;
///
/// # fn main() -> Result<(), roboads_sim::SimError> {
/// let system = presets::khepera_system();
/// let mut platform = RobotPlatform::new(&system, Vector::from_slice(&[0.5, 0.5, 0.0]))?;
/// let mut rng = StdRng::seed_from_u64(1);
/// platform.step(&system, &Vector::from_slice(&[0.05, 0.05]), &mut rng);
/// assert!(platform.state()[0] > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RobotPlatform {
    state: Vector,
    process_noise: MultivariateNormal,
}

impl RobotPlatform {
    /// Creates the platform at an initial true state.
    ///
    /// # Errors
    ///
    /// Propagates noise-model construction failures.
    pub fn new(system: &RobotSystem, initial_state: Vector) -> Result<Self> {
        let process_noise = MultivariateNormal::zero_mean(system.process_noise().clone())?;
        Ok(RobotPlatform {
            state: initial_state,
            process_noise,
        })
    }

    /// The current ground-truth state.
    pub fn state(&self) -> &Vector {
        &self.state
    }

    /// Advances one control iteration with the *executed* commands.
    pub fn step(&mut self, system: &RobotSystem, u_executed: &Vector, rng: &mut StdRng) {
        let mut next =
            &system.dynamics().step(&self.state, u_executed) + &self.process_noise.sample(rng);
        for &i in system.dynamics().angular_state_components() {
            next[i] = roboads_models::wrap_angle(next[i]);
        }
        self.state = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;
    use roboads_stats::SeedableRng;

    #[test]
    fn noise_stays_near_deterministic_trajectory() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[1.0, 1.0, 0.0]);
        let mut platform = RobotPlatform::new(&system, x0.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let u = Vector::from_slice(&[0.08, 0.08]);
        let mut x_det = x0;
        for _ in 0..50 {
            platform.step(&system, &u, &mut rng);
            x_det = system.dynamics().step(&x_det, &u);
        }
        // Process noise σ ≈ 2 mm/step → after 50 steps stays within ~10 cm.
        assert!((platform.state() - &x_det).max_abs() < 0.1);
    }

    #[test]
    fn heading_is_wrapped() {
        let system = presets::khepera_system();
        let mut platform = RobotPlatform::new(
            &system,
            Vector::from_slice(&[2.0, 2.0, std::f64::consts::PI - 0.001]),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        platform.step(&system, &Vector::from_slice(&[-0.05, 0.05]), &mut rng);
        assert!(platform.state()[2].abs() <= std::f64::consts::PI);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let system = presets::khepera_system();
        let run = |seed| {
            let mut p = RobotPlatform::new(&system, Vector::from_slice(&[1.0, 1.0, 0.0])).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..10 {
                p.step(&system, &Vector::from_slice(&[0.05, 0.04]), &mut rng);
            }
            p.state().clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
