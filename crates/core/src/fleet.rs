//! Fleet-scale batched detection: N independent [`RoboAds`] detectors
//! stepped per control tick with dispatch amortized at *robot* grain.
//!
//! PR 2 measured why intra-step (per-mode) parallelism loses on the
//! evaluation banks: a pool dispatch costs tens of microseconds while a
//! warm NUISE mode step costs ~2 µs, so fanning 3–7 modes out buys
//! nothing. A fleet monitor has a much better unit of work — one whole
//! robot's detector step (engine fan-out, decision maker, report
//! refill, ~30 µs warm) — and hundreds of them per tick. The
//! [`FleetEngine`] therefore:
//!
//! * keeps a slab of per-robot cells (detector, caller-readable report
//!   and result slot), pre-warmed so the steady state allocates nothing
//!   on the sequential path;
//! * forces every per-robot engine onto its sequential intra-step path
//!   (`threads = Some(1)`) — parallelism lives at one grain only;
//! * submits one pool job per worker covering a *contiguous robot
//!   range* ([`roboads_pool::Pool::chunked_for_each`] with a minimum
//!   chunk floor), so per-tick dispatch overhead is O(workers), not
//!   O(robots);
//! * keeps each robot's arithmetic bitwise identical to a standalone
//!   [`RoboAds`] fed the same inputs — robots never share mutable
//!   state, so thread count and batch size cannot perturb results
//!   (pinned by `tests/fleet_determinism.rs`).

use std::sync::Arc;

use roboads_linalg::Vector;
use roboads_obs::Telemetry;
use roboads_pool::Pool;

use crate::config::Linearization;
use crate::detector::RoboAds;
use crate::nuise_slab::NuiseSlabWorkspace;
use crate::recorder::RecorderConfig;
use crate::report::DetectionReport;
use crate::{CoreError, Result};

/// Minimum robots per pool job. A warm robot step is ~30 µs and a
/// dispatch ~20 µs, so a job must carry at least a handful of robots
/// before the wake-up pays for itself.
const MIN_ROBOTS_PER_JOB: usize = 4;

/// One robot's inputs for a fleet tick: the planned command of the
/// previous iteration and the fresh readings of every sensing workflow,
/// in suite order (exactly [`RoboAds::step`]'s arguments).
#[derive(Debug, Clone, Copy)]
pub struct RobotInput<'a> {
    /// Planned actuator command `u_{k-1}`.
    pub u_prev: &'a Vector,
    /// Sensor readings in suite order.
    pub readings: &'a [Vector],
}

/// Internal view unifying the dense ([`FleetEngine::step_batch`]) and
/// masked ([`FleetEngine::step_batch_masked`]) input shapes, so both
/// share one scheduling/slab implementation without the dense path
/// allocating a `Vec<Option<_>>` per tick (which would break the
/// warm-path zero-allocation invariant pinned by `tests/alloc.rs`).
#[derive(Clone, Copy)]
enum Inputs<'i, 'a> {
    Dense(&'i [RobotInput<'a>]),
    Masked(&'i [Option<RobotInput<'a>>]),
}

impl<'i, 'a> Inputs<'i, 'a> {
    fn len(&self) -> usize {
        match self {
            Inputs::Dense(inputs) => inputs.len(),
            Inputs::Masked(inputs) => inputs.len(),
        }
    }

    /// Robot `i`'s input, or `None` when it missed the tick boundary.
    fn get(&self, i: usize) -> Option<&'i RobotInput<'a>> {
        match self {
            Inputs::Dense(inputs) => Some(&inputs[i]),
            Inputs::Masked(inputs) => inputs[i].as_ref(),
        }
    }
}

/// Per-robot cell of the fleet slab: everything one robot's step
/// touches lives here, so a pool job owns its robots' cells exclusively
/// and the scheduler never synchronizes on shared detector state.
#[derive(Debug)]
struct RobotCell {
    detector: RoboAds,
    report: DetectionReport,
    /// Outcome of the robot's last step (`Ok` until its first failure).
    result: Result<()>,
}

/// One pool job's slab scratch for the lane-batched fleet path: one
/// [`NuiseSlabWorkspace`] per mode, reused tick after tick so the warm
/// path allocates nothing. Jobs never share scratch, so the pool path
/// stays synchronization-free.
#[derive(Debug)]
struct SlabJob<const K: usize> {
    bank: Vec<NuiseSlabWorkspace<K>>,
}

/// Resolved state of the fleet's SIMD-batched slab path. Resolution is
/// lazy (first [`FleetEngine::step_batch`] after construction or
/// [`FleetEngine::push`]) because eligibility is a whole-fleet
/// property: every robot must share the first robot's system models,
/// mode bank, compensation setting, per-iteration linearization and
/// configured lane width, and the fleet must fill at least one tile.
#[derive(Debug)]
enum SlabState {
    /// Not yet resolved against the current fleet composition.
    Unknown,
    /// The fleet is heterogeneous (or the knob is `1`): every tick runs
    /// the per-robot scalar path.
    Ineligible,
    /// 4-lane slab scratch, one bank per pool job.
    K4(Vec<SlabJob<4>>),
    /// 8-lane slab scratch, one bank per pool job.
    K8(Vec<SlabJob<8>>),
}

/// Steps a fleet of independent detectors, batched per control tick.
///
/// Robots are homogeneous in construction convenience only — each cell
/// owns a full [`RoboAds`], so heterogeneous fleets work by pushing
/// differently-configured detectors. Parallelism is at robot grain: a
/// `threads > 1` fleet splits the slab into contiguous chunks, one pool
/// job per worker per tick.
///
/// # SIMD-batched slab path
///
/// When every robot shares the first robot's system models (same `Arc`s
/// and process noise), mode bank, compensation setting and
/// per-iteration linearization — the common case of a homogeneous
/// fleet built from one preset — `step_batch` tiles the fleet into
/// `K`-robot lanes ([`crate::RoboAdsConfig::slab_lanes`], default 8)
/// and steps each tile through structure-of-arrays NUISE kernels that
/// vectorize *across robots*. Results are bitwise identical to the
/// per-robot path: the slab kernels replicate the scalar arithmetic
/// per lane, and any lane that hits a numeric failure falls back to
/// the scalar estimator from its untouched filter state, reproducing
/// the exact scalar outcome (see `DESIGN.md` §13). Heterogeneous
/// fleets, fleets smaller than one tile, and `slab_lanes: Some(1)` run
/// the per-robot path unchanged.
///
/// # Example
///
/// ```
/// use roboads_core::{FleetEngine, ModeSet, RoboAds, RoboAdsConfig, RobotInput};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let make = || RoboAds::with_defaults(system.clone(), x0.clone());
/// let mut fleet = FleetEngine::new((0..8).map(|_| make()).collect::<Result<_, _>>()?, 1);
///
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// let readings: Vec<_> = (0..3)
///     .map(|i| system.sensor(i).unwrap().measure(&x1))
///     .collect();
/// let inputs = vec![RobotInput { u_prev: &u, readings: &readings }; 8];
/// fleet.step_batch(&inputs)?;
/// assert!(!fleet.report(0).sensor_misbehavior_detected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetEngine {
    cells: Vec<RobotCell>,
    /// Robot-grain worker pool; `None` runs the slab sequentially.
    pool: Option<Arc<Pool>>,
    threads: usize,
    /// Lazily-resolved SIMD slab path state (see [`SlabState`]).
    slab: SlabState,
    /// Tick counter used to stamp recorded batches when the caller does
    /// not provide one.
    tick: u64,
    /// One-shot stamp override for the next batch (set by the ingest
    /// boundary from its [`crate::SwapSummary`]).
    pending_stamp: Option<u64>,
}

impl FleetEngine {
    /// Builds a fleet from per-robot detectors and a worker count
    /// (clamped to at least 1; `1` means fully sequential ticks).
    ///
    /// Every detector is forced onto its sequential intra-step path:
    /// the fleet parallelizes across robots, and nested per-mode
    /// fan-out would multiply pool dispatches for work PR 2 measured as
    /// dispatch-bound. Detectors built with `RoboAdsConfig::threads:
    /// None` already resolve to sequential for the evaluation banks, so
    /// this is a no-op there; an explicitly parallel detector cannot be
    /// pushed into a fleet (see [`FleetEngine::push`]).
    pub fn new(detectors: Vec<RoboAds>, threads: usize) -> Self {
        let threads = threads.max(1);
        let pool = (threads > 1).then(|| {
            Arc::new(Pool::with_thread_setup(threads, |i| {
                roboads_obs::set_worker(i as u32 + 1)
            }))
        });
        let mut fleet = FleetEngine {
            cells: Vec::with_capacity(detectors.len()),
            pool,
            threads,
            slab: SlabState::Unknown,
            tick: 0,
            pending_stamp: None,
        };
        for d in detectors {
            fleet.push_cell(d);
        }
        fleet
    }

    fn push_cell(&mut self, detector: RoboAds) {
        assert_eq!(
            detector.engine_threads(),
            1,
            "fleet robots must use the sequential intra-step path \
             (build them with threads: None or Some(1))"
        );
        self.cells.push(RobotCell {
            detector,
            report: DetectionReport::blank(),
            result: Ok(()),
        });
        // Fleet composition changed; re-judge slab eligibility (and
        // job sizing) on the next batch.
        self.slab = SlabState::Unknown;
    }

    /// Slab lane width if the current fleet is eligible for the
    /// lane-batched path, else `None` (see [`SlabState`] for the
    /// whole-fleet homogeneity conditions).
    fn slab_eligibility(&self) -> Option<usize> {
        let first = self.cells.first()?.detector.engine();
        let lanes = first.slab_lanes();
        if lanes == 1 || !matches!(first.linearization(), Linearization::PerIteration) {
            return None;
        }
        // A fleet smaller than one tile would run every batch on a
        // single mostly-masked tile — full K-lane arithmetic for
        // cells.len() robots' worth of results. Keep the scalar path
        // until at least one tile fills (partial *tail* tiles on larger
        // fleets amortize the same waste across many full tiles).
        if self.cells.len() < lanes {
            return None;
        }
        let homogeneous = self.cells[1..].iter().all(|cell| {
            let e = cell.detector.engine();
            e.system().shares_models(first.system())
                && e.modes() == first.modes()
                && e.compensate() == first.compensate()
                && e.slab_lanes() == lanes
                && matches!(e.linearization(), Linearization::PerIteration)
        });
        homogeneous.then_some(lanes)
    }

    /// Builds the per-job slab banks for lane width `K`: one job on the
    /// sequential path, one per lane-aligned pool chunk otherwise.
    fn build_slab_jobs<const K: usize>(&self) -> Vec<SlabJob<K>> {
        let first = self.cells[0].detector.engine();
        let job_count = match &self.pool {
            None => 1,
            Some(pool) => {
                let chunk = pool.chunk_size_aligned(self.cells.len(), MIN_ROBOTS_PER_JOB, K);
                self.cells.len().div_ceil(chunk).max(1)
            }
        };
        (0..job_count)
            .map(|_| SlabJob {
                bank: first
                    .modes()
                    .modes()
                    .iter()
                    .map(|mode| NuiseSlabWorkspace::new(first.system(), mode))
                    .collect(),
            })
            .collect()
    }

    /// Resolves [`SlabState::Unknown`] against the current fleet.
    fn resolve_slab(&mut self) {
        if !matches!(self.slab, SlabState::Unknown) {
            return;
        }
        self.slab = match self.slab_eligibility() {
            None => SlabState::Ineligible,
            Some(4) => SlabState::K4(self.build_slab_jobs()),
            Some(_) => SlabState::K8(self.build_slab_jobs()),
        };
    }

    /// Appends another robot to the slab.
    ///
    /// # Panics
    ///
    /// Panics if the detector was configured with an explicit intra-step
    /// width greater than 1 — fleet parallelism is robot-grain only.
    pub fn push(&mut self, detector: RoboAds) {
        self.push_cell(detector);
    }

    /// Number of robots in the fleet.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the fleet has no robots.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Robot-grain worker count (`1` = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads one telemetry context through every robot's pipeline.
    /// Spans recorded during [`FleetEngine::step_batch`] carry the
    /// robot's id (`robot_index + 1`) so one shared sink can attribute
    /// them; see [`roboads_obs::set_robot`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for cell in &mut self.cells {
            cell.detector.set_telemetry(telemetry.clone());
        }
    }

    /// Attaches a [`crate::FlightRecorder`] to every robot, each stamped
    /// with its fleet index (see [`RoboAds::attach_recorder`]). Batches
    /// stepped afterwards are recorded on both the scalar and slab
    /// paths.
    pub fn attach_recorder(&mut self, config: RecorderConfig) {
        for (i, cell) in self.cells.iter_mut().enumerate() {
            cell.detector.attach_recorder(config);
            if let Some(recorder) = cell.detector.recorder_mut() {
                recorder.set_robot(i as u32);
            }
        }
    }

    /// Robot `i`'s flight recorder, if attached.
    pub fn recorder(&self, i: usize) -> Option<&crate::FlightRecorder> {
        self.cells[i].detector.recorder()
    }

    /// Mutable access to robot `i`'s flight recorder, if attached.
    pub fn recorder_mut(&mut self, i: usize) -> Option<&mut crate::FlightRecorder> {
        self.cells[i].detector.recorder_mut()
    }

    /// Sets the tick stamp recorded for the *next* batch (one-shot).
    /// The ingest boundary calls this with the swap's published tick so
    /// records carry the stamped-bus timeline; without it, batches are
    /// stamped from an internal 0-based tick counter.
    pub fn set_tick_stamp(&mut self, stamp: u64) {
        self.pending_stamp = Some(stamp);
    }

    /// Seals any in-flight capsules (end of run); see
    /// [`crate::FlightRecorder::finish`].
    pub fn finish_recorders(&mut self) {
        for cell in &mut self.cells {
            if let Some(recorder) = cell.detector.recorder_mut() {
                recorder.finish();
            }
        }
    }

    /// Drains every robot's sealed capsules into one list (robots in
    /// slab order; each capsule carries its robot index).
    pub fn take_capsules(&mut self) -> Vec<crate::IncidentCapsule> {
        let mut out = Vec::new();
        for cell in &mut self.cells {
            if let Some(recorder) = cell.detector.recorder_mut() {
                out.append(&mut recorder.take_capsules());
            }
        }
        out
    }

    /// Steps every robot once with its own inputs.
    ///
    /// All robots run every tick — a failing robot never stalls its
    /// neighbours — and the error reported is the *first failing
    /// robot's*, in slab order, regardless of thread interleaving.
    /// Detection state is strictly per robot: a failing robot's report
    /// holds a partial verdict and its filter state is unchanged
    /// (exactly as a standalone [`RoboAds::step_into`] failure), while
    /// every robot whose [`FleetEngine::result`] is `Ok` has a fully
    /// valid, committed report — a neighbour's failure never taints it.
    ///
    /// A warmed-up sequential fleet (`threads == 1`) performs zero heap
    /// allocations per batch; a parallel fleet allocates only the pool's
    /// per-job boxes — O(workers), independent of fleet size.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `inputs.len() != self.len()`,
    /// else the first robot failure in slab order.
    pub fn step_batch(&mut self, inputs: &[RobotInput<'_>]) -> Result<()> {
        self.step_batch_inner(Inputs::Dense(inputs))
    }

    /// Like [`FleetEngine::step_batch`], but tolerates holes: a `None`
    /// input means the robot had no complete reading set at the tick
    /// boundary (the [`crate::FleetIngest`] front-end produces exactly
    /// this shape under its `MarkMissing` deadline policy). A missing
    /// robot's detector and report are left **untouched** — the
    /// iteration is skipped, exactly as if a standalone caller had
    /// elected not to call [`RoboAds::step`] — and its per-robot
    /// [`FleetEngine::result`] is [`CoreError::MissedDeadline`], so the
    /// absence itself is a queryable verdict. Present robots step
    /// normally and bitwise-identically to a fully dense batch.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `inputs.len() != self.len()`,
    /// else the first robot failure in slab order (a missed deadline
    /// counts as a failure).
    pub fn step_batch_masked(&mut self, inputs: &[Option<RobotInput<'_>>]) -> Result<()> {
        self.step_batch_inner(Inputs::Masked(inputs))
    }

    fn step_batch_inner(&mut self, inputs: Inputs<'_, '_>) -> Result<()> {
        if inputs.len() != self.cells.len() {
            return Err(CoreError::BadReadings {
                reason: format!(
                    "fleet of {} robots stepped with {} inputs",
                    self.cells.len(),
                    inputs.len()
                ),
            });
        }
        self.resolve_slab();
        // One stamp per batch: the ingest's published tick when set,
        // else the engine's own counter. Taken by value so a robot that
        // misses this tick can never be recorded under a stale stamp.
        let stamp = self.pending_stamp.take().unwrap_or(self.tick);
        self.tick = stamp + 1;
        let cells = &mut self.cells;
        let pool = &self.pool;
        match &mut self.slab {
            SlabState::K4(jobs) => step_batch_slab::<4>(cells, pool.as_ref(), jobs, inputs, stamp),
            SlabState::K8(jobs) => step_batch_slab::<8>(cells, pool.as_ref(), jobs, inputs, stamp),
            SlabState::Ineligible | SlabState::Unknown => {
                let step_robot = |i: usize, cell: &mut RobotCell| {
                    // RAII reset: `step_into` runs inside a pool job
                    // whose panics are caught by the worker, so a manual
                    // `set_robot(0)` after it would be skipped on unwind
                    // and leak this robot's id into every later span the
                    // worker closes.
                    let _robot = roboads_obs::robot_scope(i as u32 + 1);
                    cell.result = match inputs.get(i) {
                        Some(input) => {
                            cell.detector
                                .step_into(input.u_prev, input.readings, &mut cell.report)
                        }
                        // Missed the tick boundary: skip the iteration,
                        // leaving detector state and report untouched.
                        None => Err(CoreError::MissedDeadline { robot: i }),
                    };
                    if cell.result.is_ok() {
                        let input = inputs.get(i).expect("ok result implies input");
                        cell.detector.record_tick(
                            stamp,
                            input.u_prev,
                            input.readings,
                            &cell.report,
                        );
                    }
                };
                match pool {
                    None => {
                        for (i, cell) in cells.iter_mut().enumerate() {
                            step_robot(i, cell);
                        }
                    }
                    Some(pool) => {
                        pool.chunked_for_each(cells, MIN_ROBOTS_PER_JOB, step_robot);
                    }
                }
            }
        }
        for cell in &self.cells {
            if let Err(e) = &cell.result {
                return Err(e.clone());
            }
        }
        Ok(())
    }

    /// Robot `i`'s detector (its filter state, iteration counter, …).
    pub fn detector(&self, i: usize) -> &RoboAds {
        &self.cells[i].detector
    }

    /// Robot `i`'s report from the last [`FleetEngine::step_batch`].
    ///
    /// Report validity is **per robot**, keyed by robot `i`'s own
    /// [`FleetEngine::result`]: when `result(i)` is `Ok`, the report is
    /// fully committed and valid *regardless of what happened to any
    /// other robot in the batch* — a failing neighbour never taints it.
    /// When `result(i)` is an `Err`, robot `i`'s report holds a partial
    /// verdict from the failed step and should be discarded (for
    /// [`CoreError::MissedDeadline`] it is the previous tick's report,
    /// untouched).
    pub fn report(&self, i: usize) -> &DetectionReport {
        &self.cells[i].report
    }

    /// Robot `i`'s outcome from the last batch.
    pub fn result(&self, i: usize) -> &Result<()> {
        &self.cells[i].result
    }

    /// Iterates over the fleet's `(detector, report)` pairs in slab
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&RoboAds, &DetectionReport)> {
        self.cells.iter().map(|c| (&c.detector, &c.report))
    }
}

/// Steps the whole fleet through the lane-batched slab path: one job on
/// the sequential path, else one pool job per lane-aligned contiguous
/// robot chunk ([`roboads_pool::Pool::chunk_size_aligned`], so no
/// K-lane tile ever straddles two jobs and each job reuses its own
/// [`SlabJob`] scratch).
fn step_batch_slab<const K: usize>(
    cells: &mut [RobotCell],
    pool: Option<&Arc<Pool>>,
    jobs: &mut [SlabJob<K>],
    inputs: Inputs<'_, '_>,
    stamp: u64,
) {
    match pool {
        None => step_range_slab(&mut jobs[0], cells, 0, inputs, stamp),
        Some(pool) => {
            let chunk = pool.chunk_size_aligned(cells.len(), MIN_ROBOTS_PER_JOB, K);
            pool.scoped(|scope| {
                for (chunk_idx, (cell_chunk, job)) in
                    cells.chunks_mut(chunk).zip(jobs.iter_mut()).enumerate()
                {
                    let base = chunk_idx * chunk;
                    scope.execute(move || step_range_slab(job, cell_chunk, base, inputs, stamp));
                }
            });
        }
    }
}

/// Steps one job's contiguous robot range tile by tile. `base` is the
/// global index of `cells[0]` (for input lookup and robot telemetry
/// ids). The final tile of the final job may be partial; it runs with
/// the surplus lanes masked off.
fn step_range_slab<const K: usize>(
    job: &mut SlabJob<K>,
    cells: &mut [RobotCell],
    base: usize,
    inputs: Inputs<'_, '_>,
    stamp: u64,
) {
    for (t, tile) in cells.chunks_mut(K).enumerate() {
        step_tile(&mut job.bank, tile, base + t * K, inputs, stamp);
    }
}

/// Steps one ≤K-robot tile: loads each robot's per-mode inputs into the
/// slab lanes, runs every mode's lane-batched NUISE pass, scatters the
/// per-mode outputs back into each robot's engine, and commits each
/// robot's selection/decision tail. A lane that fails anywhere (bad
/// readings at load, numeric failure inside a batched kernel) is masked
/// out of the remaining slab work and its robot re-runs the *scalar*
/// detector step from its untouched filter state — reproducing the
/// exact per-robot result and error, since engine state only mutates at
/// commit time.
fn step_tile<const K: usize>(
    bank: &mut [NuiseSlabWorkspace<K>],
    cells: &mut [RobotCell],
    base: usize,
    inputs: Inputs<'_, '_>,
    stamp: u64,
) {
    // A lane is `present` when its robot delivered a complete input set
    // this tick (always true on the dense path); a missing lane is
    // masked out of every batched kernel *and* skips the scalar
    // fallback — there is nothing to run, the robot's iteration simply
    // does not happen.
    let mut present = [false; K];
    let mut lane_ok = [false; K];
    for (l, (p, flag)) in present
        .iter_mut()
        .zip(lane_ok.iter_mut())
        .enumerate()
        .take(cells.len())
    {
        *p = inputs.get(base + l).is_some();
        *flag = *p;
    }
    for (m, ws) in bank.iter_mut().enumerate() {
        for (l, cell) in cells.iter().enumerate() {
            if !lane_ok[l] {
                continue;
            }
            let input = inputs.get(base + l).expect("ok lane is present");
            let eng = cell.detector.engine();
            let (x_m, p_m) = eng.mode_state(m);
            if ws
                .load_lane(l, eng.system(), x_m, p_m, input.u_prev, input.readings)
                .is_err()
            {
                lane_ok[l] = false;
            }
        }
        lane_ok = {
            let eng = cells[0].detector.engine();
            ws.run(
                eng.system(),
                eng.compensate(),
                eng.actuator_threshold(),
                eng.testing_thresholds(m),
                &lane_ok,
            )
        };
        for (l, cell) in cells.iter_mut().enumerate() {
            if lane_ok[l] {
                ws.scatter_lane(l, cell.detector.engine_mut().mode_output_mut(m));
            }
        }
    }
    for (l, cell) in cells.iter_mut().enumerate() {
        // RAII reset (not a manual set/clear pair): the scalar fallback
        // below runs inside a pool job that catches panics, and a leaked
        // robot id would mislabel every later span on the worker.
        let _robot = roboads_obs::robot_scope((base + l) as u32 + 1);
        cell.result = if lane_ok[l] {
            cell.detector
                .commit_slab_step(bank.iter().map(|ws| ws.count(l)), &mut cell.report)
        } else if present[l] {
            let input = inputs.get(base + l).expect("failed lane is present");
            cell.detector
                .step_into(input.u_prev, input.readings, &mut cell.report)
        } else {
            Err(CoreError::MissedDeadline { robot: base + l })
        };
        // Record on either completed path (slab commit or scalar
        // fallback) — the slab path bypasses `step_into`, so recording
        // must hang off the fleet, not the detector's step.
        if cell.result.is_ok() {
            let input = inputs.get(base + l).expect("ok result implies input");
            cell.detector
                .record_tick(stamp, input.u_prev, input.readings, &cell.report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoboAdsConfig;
    use crate::mode::ModeSet;
    use roboads_models::{presets, RobotSystem};

    fn detector() -> RoboAds {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        RoboAds::with_defaults(system, x0).unwrap()
    }

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn batch_of_identical_robots_agrees_with_standalone() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut standalone = detector();
        let mut fleet = FleetEngine::new((0..4).map(|_| detector()).collect(), 1);
        assert_eq!(fleet.len(), 4);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 4 {
                readings[0][0] += 0.07;
            }
            let expected = standalone.step(&u, &readings).unwrap();
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                };
                4
            ];
            fleet.step_batch(&inputs).unwrap();
            for (_, report) in fleet.iter() {
                assert_eq!(report, &expected, "robot diverged at step {k}");
            }
        }
    }

    #[test]
    fn input_count_mismatch_is_rejected() {
        let mut fleet = FleetEngine::new(vec![detector()], 1);
        let u = Vector::from_slice(&[0.0, 0.0]);
        let readings: Vec<Vector> = Vec::new();
        let err = fleet
            .step_batch(
                &[RobotInput {
                    u_prev: &u,
                    readings: &readings,
                }; 2],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));
    }

    #[test]
    fn failing_robot_reports_error_but_others_advance() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let good = clean_readings(&system, &x1);
        let bad: Vec<Vector> = Vec::new(); // malformed: robot 1 fails
        let inputs = [
            RobotInput {
                u_prev: &u,
                readings: &good,
            },
            RobotInput {
                u_prev: &u,
                readings: &bad,
            },
            RobotInput {
                u_prev: &u,
                readings: &good,
            },
        ];
        assert!(fleet.step_batch(&inputs).is_err());
        assert!(fleet.result(0).is_ok());
        assert!(fleet.result(1).is_err());
        assert!(fleet.result(2).is_ok());
        // The healthy robots completed their iteration.
        assert_eq!(fleet.detector(0).iteration(), 1);
        assert_eq!(fleet.detector(1).iteration(), 0);
        assert_eq!(fleet.detector(2).iteration(), 1);
    }

    #[test]
    fn masked_batch_skips_missing_robot_and_advances_the_rest() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let mut twin = FleetEngine::new((0..3).map(|_| detector()).collect(), 1);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..6 {
            x_true = system.dynamics().step(&x_true, &u);
            let readings = clean_readings(&system, &x_true);
            let input = RobotInput {
                u_prev: &u,
                readings: &readings,
            };
            twin.step_batch(&[input; 3]).unwrap();
            // Robot 1 misses ticks 2 and 3 in the masked fleet.
            let hole = k == 2 || k == 3;
            let masked = [Some(input), (!hole).then_some(input), Some(input)];
            let batch = fleet.step_batch_masked(&masked);
            if hole {
                assert!(matches!(batch, Err(CoreError::MissedDeadline { robot: 1 })));
                assert!(matches!(
                    fleet.result(1),
                    Err(CoreError::MissedDeadline { robot: 1 })
                ));
            } else {
                batch.unwrap();
            }
            // Neighbours are bitwise identical to the dense twin run.
            assert_eq!(fleet.report(0), twin.report(0), "robot 0 diverged at {k}");
            assert_eq!(fleet.report(2), twin.report(2), "robot 2 diverged at {k}");
        }
        // The skipped robot lost exactly its two missed iterations.
        assert_eq!(fleet.detector(0).iteration(), 6);
        assert_eq!(fleet.detector(1).iteration(), 4);
        assert_eq!(fleet.detector(2).iteration(), 6);
    }

    #[test]
    fn neighbour_failure_leaves_a_succeeding_robots_report_fully_valid() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut fleet = FleetEngine::new((0..2).map(|_| detector()).collect(), 1);
        let mut twin = detector();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let bad: Vec<Vector> = Vec::new(); // malformed: robot 1 fails mid-batch
        for k in 0..5 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 2 {
                readings[0][0] += 0.07; // give robot 0 a real verdict to carry
            }
            let expected = twin.step(&u, &readings).unwrap();
            let inputs = [
                RobotInput {
                    u_prev: &u,
                    readings: &readings,
                },
                RobotInput {
                    u_prev: &u,
                    readings: &bad,
                },
            ];
            assert!(fleet.step_batch(&inputs).is_err());
            assert!(fleet.result(0).is_ok());
            assert!(fleet.result(1).is_err());
            // Robot 0's report is complete and committed — bitwise equal
            // to a standalone run — despite its neighbour failing every
            // tick of the batch sequence.
            assert_eq!(fleet.report(0), &expected, "report tainted at step {k}");
        }
    }

    #[test]
    #[should_panic(expected = "sequential intra-step path")]
    fn explicitly_parallel_detectors_are_rejected() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let modes = ModeSet::one_reference_per_sensor(&system);
        let d = RoboAds::new(
            system,
            RoboAdsConfig::paper_defaults().with_threads(3),
            x0,
            modes,
        )
        .unwrap();
        FleetEngine::new(vec![d], 1);
    }
}
