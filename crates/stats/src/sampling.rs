use roboads_linalg::{Cholesky, Matrix, Vector};

use crate::{Result, StatsError};

/// A source of uniformly distributed random bits.
///
/// This is the workspace's in-tree replacement for the `rand` crate's
/// trait of the same name: the tier-1 build must resolve with no
/// registry access, so the simulation substrate draws every noise and
/// attack stream from this zero-dependency layer instead. Only what the
/// workspace actually consumes is provided — raw 64-bit words and
/// uniform `f64`s; Gaussian shaping lives in [`GaussianSampler`].
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    fn random(&mut self) -> f64 {
        // Take the top 53 bits: the f64 mantissa width, so every
        // representable value in [0, 1) with spacing 2⁻⁵³ is reachable.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed (API-compatible with
/// the `rand` crate's method of the same name so call sites read the
/// same).
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64 so that nearby seeds — including 0 — yield
/// uncorrelated streams.
///
/// Not cryptographic; statistical quality is what the closed-loop
/// simulations need (equidistribution in 64-bit words, 256-bit state,
/// period 2²⁵⁶ − 1).
///
/// # Example
///
/// ```
/// use roboads_stats::{Rng, SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let u = rng.random();
/// assert!((0.0..1.0).contains(&u));
/// assert_eq!(StdRng::seed_from_u64(42).next_u64(), StdRng::seed_from_u64(42).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; the
        // all-zero state (unreachable from SplitMix64) would be a fixed
        // point of xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Standard-normal sampler using the Box–Muller transform.
///
/// `rand` itself only ships uniform distributions; the Gaussian process
/// and measurement noises the RoboADS system model assumes (§III-A of the
/// paper) are produced here. The transform generates pairs, so one value
/// is cached between calls.
///
/// # Example
///
/// ```
/// use roboads_stats::{SeedableRng, StdRng};
/// use roboads_stats::GaussianSampler;
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let mut gauss = GaussianSampler::new();
/// let x = gauss.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    cached: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        GaussianSampler { cached: None }
    }

    /// Draws one standard-normal value.
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        // Box–Muller on two uniforms in (0, 1].
        let u1: f64 = loop {
            let u: f64 = rng.random();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a mean-zero normal value with the given standard deviation.
    pub fn sample_scaled(&mut self, rng: &mut impl Rng, std_dev: f64) -> f64 {
        self.sample(rng) * std_dev
    }

    /// Draws a vector of independent standard-normal values.
    pub fn sample_vector(&mut self, rng: &mut impl Rng, n: usize) -> Vector {
        Vector::from_fn(n, |_| self.sample(rng))
    }
}

/// A multivariate normal distribution `N(mean, covariance)`.
///
/// Sampling uses the Cholesky factor: `x = μ + L·z` with `z` standard
/// normal. This is how the simulation substrate draws correlated process
/// and measurement noise with the exact covariances the estimator is
/// configured with.
///
/// # Example
///
/// ```
/// use roboads_stats::{SeedableRng, StdRng};
/// use roboads_linalg::{Matrix, Vector};
/// use roboads_stats::MultivariateNormal;
///
/// # fn main() -> Result<(), roboads_stats::StatsError> {
/// let mvn = MultivariateNormal::new(
///     Vector::zeros(2),
///     Matrix::from_diagonal(&[0.01, 0.04]),
/// )?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let draw = mvn.sample(&mut rng);
/// assert_eq!(draw.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vector,
    chol: Cholesky,
}

impl MultivariateNormal {
    /// Creates the distribution from a mean and an SPD covariance.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if the dimensions of the
    /// mean and covariance disagree, or wraps the Cholesky error if the
    /// covariance is not symmetric positive definite.
    pub fn new(mean: Vector, covariance: Matrix) -> Result<Self> {
        if covariance.rows() != mean.len() {
            return Err(StatsError::InvalidParameter {
                name: "covariance",
                value: format!(
                    "{}x{} for mean of length {}",
                    covariance.rows(),
                    covariance.cols(),
                    mean.len()
                ),
            });
        }
        let chol = covariance.cholesky()?;
        Ok(MultivariateNormal { mean, chol })
    }

    /// Creates a mean-zero distribution from a covariance matrix.
    ///
    /// # Errors
    ///
    /// Same as [`MultivariateNormal::new`].
    pub fn zero_mean(covariance: Matrix) -> Result<Self> {
        let n = covariance.rows();
        MultivariateNormal::new(Vector::zeros(n), covariance)
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> Vector {
        let mut gauss = GaussianSampler::new();
        let z = gauss.sample_vector(rng, self.dim());
        let correlated = self
            .chol
            .apply_factor(&z)
            .expect("factor dimension matches by construction");
        &self.mean + &correlated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut g = GaussianSampler::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn scaled_sampling_scales_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = GaussianSampler::new();
        let n = 100_000;
        let var = (0..n)
            .map(|_| g.sample_scaled(&mut rng, 3.0).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - 9.0).abs() < 0.25, "var = {var}");
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = GaussianSampler::new();
            g.sample_vector(&mut rng, 5)
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    #[test]
    fn mvn_sample_covariance_converges() {
        let cov = Matrix::from_rows(&[&[0.04, 0.01], &[0.01, 0.09]]).unwrap();
        let mvn = MultivariateNormal::zero_mean(cov.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut acc = Matrix::zeros(2, 2);
        for _ in 0..n {
            let s = mvn.sample(&mut rng);
            for i in 0..2 {
                for j in 0..2 {
                    acc[(i, j)] += s[i] * s[j];
                }
            }
        }
        let emp = &acc * (1.0 / n as f64);
        assert!(
            (&emp - &cov).max_abs() < 0.005,
            "empirical covariance {emp:?}"
        );
    }

    #[test]
    fn mvn_mean_offset() {
        let mvn = MultivariateNormal::new(
            Vector::from_slice(&[10.0, -5.0]),
            Matrix::from_diagonal(&[0.01, 0.01]),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean = Vector::zeros(2);
        let n = 20_000;
        for _ in 0..n {
            mean = &mean + &mvn.sample(&mut rng);
        }
        mean = &mean * (1.0 / n as f64);
        assert!((mean[0] - 10.0).abs() < 0.01);
        assert!((mean[1] + 5.0).abs() < 0.01);
    }

    #[test]
    fn mvn_rejects_bad_input() {
        assert!(MultivariateNormal::new(Vector::zeros(3), Matrix::identity(2)).is_err());
        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(MultivariateNormal::zero_mean(indefinite).is_err());
    }
}
