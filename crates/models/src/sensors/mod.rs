//! Measurement models: the `h(x)` of the paper's system description.
//!
//! Each [`SensorModel`] corresponds to one *sensing workflow* of the
//! paper's system model (Figure 1): the planner-visible output of a
//! sensor after its driver and utility processes. The paper's two robots
//! use:
//!
//! * Khepera III — [`WheelEncoderOdometry`], [`WallLidar`], [`Ips`],
//! * Tamiya TT-02 — [`WallLidar`], [`InertialNav`] (IMU), [`Ips`],
//!
//! and §VI discusses partial-state sensors ([`Magnetometer`], [`Gps`])
//! that must be grouped to make the state observable.

mod beacon;
mod gps;
mod imu;
mod ips;
mod lidar;
mod magnetometer;
mod wheel_encoder;

pub use beacon::BeaconRange;
pub use gps::Gps;
pub use imu::InertialNav;
pub use ips::Ips;
pub use lidar::{WallLidar, SCAN_BEAMS, SCAN_FOV};
pub use magnetometer::Magnetometer;
pub use wheel_encoder::WheelEncoderOdometry;

use roboads_linalg::{Matrix, Vector};

use crate::jacobian::numeric_jacobian;

/// A sensing-workflow output model `z = h(x) + ξ`.
///
/// Implementations are deterministic and noiseless; the measurement noise
/// `ξ ~ N(0, R)` is *described* by [`SensorModel::noise_covariance`] (for
/// the estimator) and *sampled* by the simulation substrate.
///
/// The default [`SensorModel::jacobian`] is a central-difference numeric
/// Jacobian; the built-in sensors override it with analytic forms.
pub trait SensorModel: Send + Sync {
    /// Dimension of this sensor's reading vector.
    fn dim(&self) -> usize;

    /// Short workflow name, e.g. `"ips"`, used in detector reports.
    fn name(&self) -> &str;

    /// Noiseless measurement function `h(x)`.
    fn measure(&self, x: &Vector) -> Vector;

    /// Measurement Jacobian `C = ∂h/∂x` at `x`.
    fn jacobian(&self, x: &Vector) -> Matrix {
        let f = |xx: &Vector| self.measure(xx);
        numeric_jacobian(&f, x, self.dim())
    }

    /// Measurement-noise covariance `R` (time-invariant).
    fn noise_covariance(&self) -> Matrix;

    /// Indices of reading components that are angles; residuals on these
    /// components must be wrapped to `(−π, π]` by any consumer.
    fn angular_components(&self) -> &[usize] {
        &[]
    }

    /// Allocation-free [`SensorModel::measure`]: writes `h(x)` into
    /// `out`, a slice of length [`SensorModel::dim`] (typically a
    /// segment of a stacked measurement vector).
    ///
    /// The default delegates to the allocating `measure`, so user
    /// sensors keep working unchanged; the built-in sensors override it
    /// to write directly, keeping the NUISE hot path heap-free.
    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        out.copy_from_slice(self.measure(x).as_slice());
    }

    /// Allocation-free [`SensorModel::jacobian`]: writes `C` into rows
    /// `row_offset .. row_offset + dim()` of `out` (a stacked subset
    /// Jacobian). Default delegates to the allocating version.
    fn jacobian_into(&self, x: &Vector, out: &mut Matrix, row_offset: usize) {
        out.set_block(row_offset, 0, &self.jacobian(x));
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Asserts that a sensor's analytic Jacobian matches the numeric one.
    pub fn assert_sensor_jacobian_matches(sensor: &dyn SensorModel, x: &Vector, tol: f64) {
        let analytic = sensor.jacobian(x);
        let f = |xx: &Vector| sensor.measure(xx);
        let numeric = numeric_jacobian(&f, x, sensor.dim());
        assert!(
            (&analytic - &numeric).max_abs() < tol,
            "jacobian mismatch for {}:\nanalytic {analytic:?}\nnumeric {numeric:?}",
            sensor.name()
        );
    }

    /// Asserts the in-place `_into` variants are bitwise identical to
    /// the allocating methods (the NUISE determinism contract), using a
    /// nonzero row offset to exercise the stacked-Jacobian path.
    pub fn assert_sensor_into_variants_match(sensor: &dyn SensorModel, x: &Vector) {
        let d = sensor.dim();
        let mut z = vec![0.0; d];
        sensor.measure_into(x, &mut z);
        assert_eq!(
            z,
            sensor.measure(x).as_slice(),
            "{} measure_into",
            sensor.name()
        );
        let mut stacked = Matrix::zeros(d + 1, x.len());
        sensor.jacobian_into(x, &mut stacked, 1);
        assert_eq!(
            stacked.block(1, 0, d, x.len()),
            sensor.jacobian(x),
            "{} jacobian_into",
            sensor.name()
        );
        assert_eq!(stacked.row(0), roboads_linalg::Vector::zeros(x.len()));
    }

    /// Asserts the declared noise covariance is SPD with the declared dim.
    pub fn assert_noise_covariance_valid(sensor: &dyn SensorModel) {
        let r = sensor.noise_covariance();
        assert_eq!(r.rows(), sensor.dim());
        assert_eq!(r.cols(), sensor.dim());
        assert!(
            r.cholesky().is_ok(),
            "noise covariance of {} is not SPD: {r:?}",
            sensor.name()
        );
    }
}
