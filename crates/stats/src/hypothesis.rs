use roboads_linalg::{EigenWorkspace, Matrix, Vector};

use crate::{ChiSquared, Result, StatsError};

/// Computes the normalized anomaly statistic `dᵀ P⁺ d`.
///
/// The decision maker of RoboADS normalizes an anomaly-vector estimate by
/// its error covariance before testing it; under the no-anomaly hypothesis
/// the statistic is χ²-distributed with `rank(P)` degrees of freedom. The
/// pseudo-inverse is used so (numerically) singular covariances — which
/// arise when a sensor direction carries no fresh information — degrade
/// gracefully instead of failing.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `covariance` is not square
/// with side `d.len()`, or wraps the underlying decomposition error.
///
/// ```
/// use roboads_linalg::{Matrix, Vector};
/// use roboads_stats::normalized_statistic;
///
/// # fn main() -> Result<(), roboads_stats::StatsError> {
/// let d = Vector::from_slice(&[0.2, 0.0]);
/// let p = Matrix::from_diagonal(&[0.01, 0.04]);
/// let stat = normalized_statistic(&d, &p)?;
/// assert!((stat - 4.0).abs() < 1e-9); // (0.2)² / 0.01
/// # Ok(())
/// # }
/// ```
pub fn normalized_statistic(d: &Vector, covariance: &Matrix) -> Result<f64> {
    if covariance.rows() != d.len() || covariance.cols() != d.len() {
        return Err(StatsError::InvalidParameter {
            name: "covariance",
            value: format!(
                "{}x{} for vector of length {}",
                covariance.rows(),
                covariance.cols(),
                d.len()
            ),
        });
    }
    let pinv = covariance.pseudo_inverse()?;
    Ok(d.quadratic_form(&pinv)?)
}

/// Reusable buffers for [`normalized_statistic`]: one allocation at
/// construction, then [`StatWorkspace::normalized_statistic_into`] runs
/// heap-allocation-free and produces values bitwise identical to the
/// allocating function (it shares the pseudo-inverse cutoff and the
/// quadratic-form accumulation order).
#[derive(Debug, Clone)]
pub struct StatWorkspace {
    eig: EigenWorkspace,
    pinv: Matrix,
}

impl StatWorkspace {
    /// Allocates buffers for statistics over length-`n` anomaly vectors.
    pub fn new(n: usize) -> Self {
        StatWorkspace {
            eig: EigenWorkspace::new(n),
            pinv: Matrix::zeros(n, n),
        }
    }

    /// Workspace dimension.
    pub fn dim(&self) -> usize {
        self.eig.dim()
    }

    /// Computes `dᵀ P⁺ d` using the workspace buffers.
    ///
    /// # Errors
    ///
    /// Exactly [`normalized_statistic`]'s: shape mismatch between `d`
    /// and `covariance` (checked before the workspace dimension, so the
    /// two paths classify malformed input identically) or the
    /// underlying decomposition error.
    pub fn normalized_statistic_into(&mut self, d: &Vector, covariance: &Matrix) -> Result<f64> {
        if covariance.rows() != d.len() || covariance.cols() != d.len() {
            return Err(StatsError::InvalidParameter {
                name: "covariance",
                value: format!(
                    "{}x{} for vector of length {}",
                    covariance.rows(),
                    covariance.cols(),
                    d.len()
                ),
            });
        }
        covariance.pseudo_inverse_into(&mut self.eig, &mut self.pinv)?;
        Ok(d.quadratic_form(&self.pinv)?)
    }
}

/// A χ² hypothesis test at a fixed significance level.
///
/// Precomputes the critical value so the per-iteration detector work is a
/// single comparison. The paper tunes `α = 0.005` for sensor tests and
/// `α = 0.05` for actuator tests (§V-F).
///
/// # Example
///
/// ```
/// use roboads_stats::ChiSquareTest;
///
/// let test = ChiSquareTest::new(3, 0.005).unwrap();
/// assert!(!test.exceeds(4.0));   // typical statistic under no anomaly
/// assert!(test.exceeds(40.0));   // far above the 12.84 threshold
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChiSquareTest {
    dof: usize,
    alpha: f64,
    threshold: f64,
}

impl ChiSquareTest {
    /// Creates a test with `dof` degrees of freedom at significance
    /// level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `dof == 0` or `alpha`
    /// outside `(0, 1)`.
    pub fn new(dof: usize, alpha: f64) -> Result<Self> {
        let chi = ChiSquared::new(dof)?;
        let threshold = chi.critical_value(alpha)?;
        Ok(ChiSquareTest {
            dof,
            alpha,
            threshold,
        })
    }

    /// Degrees of freedom of the test.
    pub fn dof(&self) -> usize {
        self.dof
    }

    /// Significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The precomputed critical value.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether a statistic exceeds the critical value (i.e. the
    /// no-anomaly hypothesis is rejected). Non-finite statistics are
    /// treated as exceedances: an estimator that produced NaN is in a
    /// state that must raise attention rather than silently pass.
    pub fn exceeds(&self, statistic: f64) -> bool {
        !statistic.is_finite() || statistic > self.threshold
    }

    /// Runs the full normalized test on an anomaly estimate and its
    /// covariance.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`normalized_statistic`].
    pub fn test(&self, d: &Vector, covariance: &Matrix) -> Result<bool> {
        Ok(self.exceeds(normalized_statistic(d, covariance)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{SeedableRng, StdRng};

    use crate::MultivariateNormal;

    #[test]
    fn statistic_matches_manual_computation() {
        let d = Vector::from_slice(&[1.0, 2.0]);
        let p = Matrix::from_diagonal(&[1.0, 4.0]);
        let stat = normalized_statistic(&d, &p).unwrap();
        assert!((stat - 2.0).abs() < 1e-10); // 1 + 4/4
    }

    #[test]
    fn statistic_rejects_shape_mismatch() {
        let d = Vector::zeros(2);
        assert!(normalized_statistic(&d, &Matrix::identity(3)).is_err());
    }

    #[test]
    fn singular_covariance_handled_via_pinv() {
        let d = Vector::from_slice(&[3.0, 0.0]);
        let p = Matrix::from_diagonal(&[9.0, 0.0]);
        let stat = normalized_statistic(&d, &p).unwrap();
        assert!((stat - 1.0).abs() < 1e-10);
    }

    #[test]
    fn workspace_statistic_matches_allocating_bitwise() {
        let mut ws = StatWorkspace::new(2);
        assert_eq!(ws.dim(), 2);
        let cases = [
            (
                Vector::from_slice(&[1.0, 2.0]),
                Matrix::from_diagonal(&[1.0, 4.0]),
            ),
            (
                Vector::from_slice(&[3.0, 0.0]),
                Matrix::from_diagonal(&[9.0, 0.0]), // singular
            ),
            (
                Vector::from_slice(&[0.2, -0.1]),
                Matrix::from_rows(&[&[0.01, 0.002], &[0.002, 0.04]]).unwrap(),
            ),
        ];
        for (d, p) in &cases {
            let expected = normalized_statistic(d, p).unwrap();
            let got = ws.normalized_statistic_into(d, p).unwrap();
            assert!(got.to_bits() == expected.to_bits(), "{got} vs {expected}");
        }
        // Same shape-mismatch classification as the free function.
        assert!(ws
            .normalized_statistic_into(&Vector::zeros(2), &Matrix::identity(3))
            .is_err());
    }

    #[test]
    fn false_positive_rate_matches_alpha() {
        // Under H0, the rejection rate should be ~alpha.
        let alpha = 0.05;
        let test = ChiSquareTest::new(2, alpha).unwrap();
        let cov = Matrix::from_diagonal(&[0.01, 0.02]);
        let mvn = MultivariateNormal::zero_mean(cov.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let mut rejections = 0;
        for _ in 0..n {
            let d = mvn.sample(&mut rng);
            if test.test(&d, &cov).unwrap() {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / n as f64;
        assert!(
            (rate - alpha).abs() < 0.005,
            "empirical rejection rate {rate}, expected {alpha}"
        );
    }

    #[test]
    fn large_anomaly_is_detected() {
        let test = ChiSquareTest::new(3, 0.005).unwrap();
        let cov = Matrix::from_diagonal(&[1e-4, 1e-4, 1e-4]);
        // 0.07 m bias against ~0.01 m noise: the paper's scenario-#3 scale.
        let d = Vector::from_slice(&[0.07, 0.0, 0.0]);
        assert!(test.test(&d, &cov).unwrap());
    }

    #[test]
    fn nan_statistic_raises() {
        let test = ChiSquareTest::new(1, 0.05).unwrap();
        assert!(test.exceeds(f64::NAN));
        assert!(test.exceeds(f64::INFINITY));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ChiSquareTest::new(0, 0.05).is_err());
        assert!(ChiSquareTest::new(2, 0.0).is_err());
        assert!(ChiSquareTest::new(2, 1.0).is_err());
    }

    #[test]
    fn accessors() {
        let test = ChiSquareTest::new(4, 0.01).unwrap();
        assert_eq!(test.dof(), 4);
        assert_eq!(test.alpha(), 0.01);
        assert!(test.threshold() > 13.0 && test.threshold() < 14.0);
    }
}
