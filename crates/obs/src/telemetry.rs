//! The [`Telemetry`] handle: one cheap-to-clone object bundling a span/
//! event [`Sink`] with a [`MetricsRegistry`], plus the RAII [`Span`]
//! timer the pipeline instruments itself with.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::sink::{EventRecord, Field, NoopSink, Sink, SpanRecord};

thread_local! {
    /// Worker id stamped onto spans closed on this thread. `0` means
    /// "main thread" and is the default everywhere.
    static WORKER_ID: Cell<u32> = const { Cell::new(0) };
    /// Robot id stamped onto spans closed on this thread. `0` means
    /// "no robot context" and is the default everywhere.
    static ROBOT_ID: Cell<u32> = const { Cell::new(0) };
}

/// Registers the calling thread as telemetry worker `id`.
///
/// The multi-mode engine's thread pool calls this once per worker (with
/// ids `1..`) so that spans closed off the main thread — e.g.
/// `engine.nuise_mode` — carry the worker that actually ran them.
pub fn set_worker(id: u32) {
    WORKER_ID.with(|w| w.set(id));
}

/// The telemetry worker id of the calling thread (`0` on the main
/// thread and any thread that never called [`set_worker`]).
pub fn current_worker() -> u32 {
    WORKER_ID.with(Cell::get)
}

/// Sets the robot context of the calling thread: spans closed until the
/// next call carry robot id `id`.
///
/// The fleet engine brackets each robot's detector step with
/// `set_robot(robot_index + 1)` / `set_robot(0)` so one shared sink can
/// attribute every span to the robot it served. `0` clears the context
/// (the default on every thread).
pub fn set_robot(id: u32) {
    ROBOT_ID.with(|r| r.set(id));
}

/// The robot id of the calling thread (`0` when no robot context is
/// set; fleet robots are `1..`).
pub fn current_robot() -> u32 {
    ROBOT_ID.with(Cell::get)
}

/// Sets the robot context of the calling thread for the lifetime of the
/// returned guard, restoring the previous id when the guard drops —
/// **including during unwinding**.
///
/// Prefer this over a manual [`set_robot`]`(id)` / `set_robot(0)` pair
/// anywhere the bracketed work can panic: a pool worker catches job
/// panics and lives on, so a skipped manual reset would leak the robot
/// id into the worker's thread-local and mislabel every span that
/// worker closes afterwards.
#[must_use = "the robot context resets when this guard drops"]
pub fn robot_scope(id: u32) -> RobotScope {
    let prev = current_robot();
    set_robot(id);
    RobotScope { prev }
}

/// RAII guard returned by [`robot_scope`]: restores the previous robot
/// context on drop (normal exit and unwinding alike).
#[derive(Debug)]
pub struct RobotScope {
    prev: u32,
}

impl Drop for RobotScope {
    fn drop(&mut self) {
        set_robot(self.prev);
    }
}

/// Shared telemetry context threaded through the detection pipeline.
///
/// Cloning shares the sink, the registry and the epoch, so a simulation
/// run can hand the same context to the engine, the decision maker and
/// the runner and read one coherent snapshot afterwards.
///
/// The default is [`Telemetry::disabled`]: spans and events vanish into
/// a [`NoopSink`] without even reading the clock, while metrics are
/// still collected (atomics are cheap enough to always stay on, and the
/// post-run health summary depends on them).
#[derive(Clone)]
pub struct Telemetry {
    sink: Arc<dyn Sink>,
    metrics: Arc<MetricsRegistry>,
    epoch: Instant,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("sink", &self.sink)
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A context whose sink drops everything (metrics still collect).
    pub fn disabled() -> Self {
        Telemetry::new(Arc::new(NoopSink))
    }

    /// A context with the given sink and a fresh registry.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Telemetry::with_registry(sink, Arc::new(MetricsRegistry::new()))
    }

    /// A context with the given sink and an existing registry. The sink
    /// is handed the registry ([`Sink::bind_metrics`]) so loss-tracking
    /// sinks can register their counters alongside the pipeline's.
    pub fn with_registry(sink: Arc<dyn Sink>, metrics: Arc<MetricsRegistry>) -> Self {
        sink.bind_metrics(&metrics);
        Telemetry {
            sink,
            metrics,
            epoch: Instant::now(),
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The sink.
    pub fn sink(&self) -> &Arc<dyn Sink> {
        &self.sink
    }

    /// Whether the sink is listening (spans/events are worth timing).
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Nanoseconds since this context's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a timed span; the span is recorded when the guard drops.
    /// With a disabled sink this never reads the clock.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            telemetry: self,
            name,
            start: if self.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Opens a timed span that owns its sink handle instead of
    /// borrowing the `Telemetry`, so the caller can keep mutating the
    /// object that holds the telemetry while the span is live.
    ///
    /// With a disabled sink this performs no clock read and no
    /// allocation (not even an `Arc` clone); when enabled it costs one
    /// `Arc` clone — still allocation-free.
    pub fn owned_span(&self, name: &'static str) -> OwnedSpan {
        OwnedSpan {
            name,
            inner: if self.enabled() {
                Some(OwnedSpanInner {
                    sink: Arc::clone(&self.sink),
                    epoch: self.epoch,
                    start: Instant::now(),
                })
            } else {
                None
            },
        }
    }

    /// Emits an event. `fields` is a closure so that argument assembly
    /// (including any string formatting) is skipped entirely when the
    /// sink is disabled.
    pub fn event(&self, name: &'static str, fields: impl FnOnce() -> Vec<Field>) {
        if !self.enabled() {
            return;
        }
        self.sink.record_event(&EventRecord {
            name,
            time_ns: self.now_ns(),
            fields: fields(),
        });
    }
}

/// RAII span timer returned by [`Telemetry::span`].
///
/// ```
/// use roboads_obs::{RingBufferSink, Telemetry};
/// use std::sync::Arc;
///
/// let ring = Arc::new(RingBufferSink::new(16));
/// let telemetry = Telemetry::new(ring.clone());
/// {
///     let _span = telemetry.span("engine.step");
///     // ... timed work ...
/// }
/// assert_eq!(ring.spans()[0].name, "engine.step");
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_closed_span(
                &*self.telemetry.sink,
                self.telemetry.epoch,
                start,
                self.name,
            );
        }
    }
}

fn record_closed_span(sink: &dyn Sink, epoch: Instant, start: Instant, name: &'static str) {
    // One clock read serves both the duration and the epoch offset —
    // this runs once per pipeline stage per step.
    let now = Instant::now();
    let duration_ns = now.duration_since(start).as_nanos() as u64;
    let end_ns = now.duration_since(epoch).as_nanos() as u64;
    sink.record_span(&SpanRecord {
        name,
        start_ns: end_ns.saturating_sub(duration_ns),
        duration_ns,
        worker: current_worker(),
        robot: current_robot(),
    });
}

#[derive(Debug)]
struct OwnedSpanInner {
    sink: Arc<dyn Sink>,
    epoch: Instant,
    start: Instant,
}

/// RAII span timer returned by [`Telemetry::owned_span`]: identical to
/// [`Span`] but holds its own sink handle instead of borrowing the
/// `Telemetry`, freeing the caller to mutate whatever owns the
/// telemetry while the span is live.
#[derive(Debug)]
pub struct OwnedSpan {
    name: &'static str,
    inner: Option<OwnedSpanInner>,
}

impl OwnedSpan {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            record_closed_span(&*inner.sink, inner.epoch, inner.start, self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{RingBufferSink, Value};

    #[test]
    fn disabled_telemetry_skips_spans_and_events_but_keeps_metrics() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        {
            let _s = t.span("x");
        }
        let mut built = false;
        t.event("e", || {
            built = true;
            vec![]
        });
        assert!(!built, "field closure must not run when disabled");
        t.metrics().counter("c").incr();
        assert_eq!(t.metrics().counter_value("c"), Some(1));
    }

    #[test]
    fn spans_and_events_reach_the_sink_in_order() {
        let ring = Arc::new(RingBufferSink::new(16));
        let t = Telemetry::new(ring.clone());
        {
            let _outer = t.span("outer");
            let inner = t.span("inner");
            inner.finish();
            t.event("marker", || vec![("k", Value::U64(1))]);
        }
        let records = ring.records();
        // inner finishes first, then the event, then outer on drop.
        assert_eq!(records.len(), 3);
        assert!(matches!(&records[0], crate::sink::TelemetryRecord::Span(s) if s.name == "inner"));
        assert!(
            matches!(&records[1], crate::sink::TelemetryRecord::Event(e) if e.name == "marker")
        );
        assert!(matches!(&records[2], crate::sink::TelemetryRecord::Span(s) if s.name == "outer"));
    }

    #[test]
    fn owned_span_records_like_a_borrowed_span() {
        let ring = Arc::new(RingBufferSink::new(4));
        let t = Telemetry::new(ring.clone());
        {
            let _s = t.owned_span("owned");
        }
        let spans = ring.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "owned");
        assert_eq!(spans[0].worker, 0);

        // Disabled telemetry never reads the clock or clones the sink.
        let off = Telemetry::disabled();
        let _s = off.owned_span("skipped");
    }

    #[test]
    fn worker_id_is_thread_local_and_stamped_on_spans() {
        let ring = Arc::new(RingBufferSink::new(4));
        let t = Telemetry::new(ring.clone());
        assert_eq!(current_worker(), 0);
        std::thread::scope(|s| {
            s.spawn(|| {
                set_worker(3);
                assert_eq!(current_worker(), 3);
                let _span = t.span("off-main");
            });
        });
        // The spawned thread's id never leaks back to this thread.
        assert_eq!(current_worker(), 0);
        assert_eq!(ring.spans()[0].worker, 3);
    }

    #[test]
    fn robot_id_brackets_spans_and_resets() {
        let ring = Arc::new(RingBufferSink::new(4));
        let t = Telemetry::new(ring.clone());
        assert_eq!(current_robot(), 0);
        set_robot(7);
        {
            let _span = t.span("fleet.robot_step");
        }
        set_robot(0);
        {
            let _span = t.span("after");
        }
        let spans = ring.spans();
        assert_eq!(spans[0].robot, 7);
        assert_eq!(spans[1].robot, 0);
        // Robot context is thread-local, like the worker id.
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(current_robot(), 0));
        });
    }

    #[test]
    fn robot_scope_restores_previous_id_on_drop_and_panic() {
        assert_eq!(current_robot(), 0);
        set_robot(2);
        {
            let _guard = robot_scope(9);
            assert_eq!(current_robot(), 9);
        }
        assert_eq!(current_robot(), 2, "guard restores the previous id");
        // The reset must also run while unwinding: a panic inside the
        // scope may be caught (pool workers catch job panics), and a
        // leaked id would mislabel every later span on the thread.
        let result = std::panic::catch_unwind(|| {
            let _guard = robot_scope(5);
            panic!("job exploded");
        });
        assert!(result.is_err());
        assert_eq!(current_robot(), 2, "guard resets during unwinding");
        set_robot(0);
    }

    #[test]
    fn clones_share_sink_and_registry() {
        let ring = Arc::new(RingBufferSink::new(4));
        let t = Telemetry::new(ring.clone());
        let t2 = t.clone();
        t2.metrics().counter("shared").incr();
        assert_eq!(t.metrics().counter_value("shared"), Some(1));
        {
            let _s = t2.span("s");
        }
        assert_eq!(ring.len(), 1);
    }
}
