//! Async tick-boundary ingestion for [`FleetEngine`]: the serving-shaped
//! front-end between a jittery per-robot transport and the engine's
//! aligned `step_batch`.
//!
//! The paper's per-iteration loop (Algorithm 1) — and the companion
//! technical report's NUISE derivation (arXiv:1804.02814) — assume the
//! monitor receives a *complete, fresh* reading set every control tick.
//! Real deployments deliver frames per robot over a bus with jitter,
//! drops and reordering, and the precursor paper (arXiv:1708.01834)
//! argues a *missing* reading should itself be a detectable misbehavior
//! rather than a silent replay of stale data. [`FleetIngest`] encodes
//! both halves of that contract:
//!
//! * **Double buffering** — frames accumulate into per-robot *staging*
//!   slots ([`FleetIngest::offer`] / [`FleetIngest::offer_input`]) as
//!   they arrive, in any order; [`FleetIngest::swap`] publishes the
//!   complete slots into the aligned *front* buffer at the tick
//!   boundary. Offers copy into persistent buffers and the swap is a
//!   pointer exchange, so the warm path allocates nothing.
//! * **Per-robot deadlines** — a slot that is incomplete at the swap
//!   resolves by its robot's [`DeadlinePolicy`]: `MarkMissing` skips the
//!   robot's iteration and surfaces [`CoreError::MissedDeadline`]
//!   through [`FleetEngine::result`] (the absence *is* the verdict);
//!   `HoldLast` explicitly reuses the last published values for the
//!   pieces that did not arrive. Either way a slow robot delays only
//!   itself — the rest of the batch steps on time, bitwise identically
//!   to an all-on-time run.
//! * **Tick stamping** — [`FleetIngest::offer_stamped`] rejects frames
//!   whose stamp does not match the current staging tick (a late frame
//!   belongs to a window that has already swapped), with counters and
//!   events so late/held/missing robots are observable per tick.

use roboads_linalg::Vector;
use roboads_obs::wire;
use roboads_obs::{Counter, Telemetry, Value};

use crate::fleet::{FleetEngine, RobotInput};
use crate::{CoreError, Result};

/// What to do with a robot whose staging slot is incomplete when the
/// tick boundary arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlinePolicy {
    /// Skip the robot's iteration: its detector and report stay
    /// untouched and [`FleetEngine::result`] carries
    /// [`CoreError::MissedDeadline`]. The conservative default — a
    /// missing reading is treated as a detectable misbehavior, never
    /// silently papered over with stale data.
    MarkMissing,
    /// Fill the missing pieces from the last published values (fresh
    /// arrivals still win) and step the detector normally. The robot's
    /// slot is reported [`SlotState::Held`] and counted, so the reuse is
    /// explicit and observable — the opposite of a bus cache silently
    /// replaying the previous tick.
    HoldLast,
}

/// How a robot's slot resolved at the last [`FleetIngest::swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Every input arrived in the window; the published batch is fresh.
    Fresh,
    /// Incomplete under [`DeadlinePolicy::HoldLast`]: the published
    /// batch mixes this window's arrivals with held last-tick values.
    Held,
    /// No publishable input set: incomplete under
    /// [`DeadlinePolicy::MarkMissing`], or no complete set has *ever*
    /// arrived (hold-last has nothing to hold before the first complete
    /// window). Also the state before the first swap.
    Missing,
}

/// Per-tick accounting returned by [`FleetIngest::swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapSummary {
    /// The tick index that was just published (0-based).
    pub tick: u64,
    /// Robots whose slots were complete.
    pub fresh: usize,
    /// Robots published from held values ([`DeadlinePolicy::HoldLast`]).
    pub held: usize,
    /// Robots with nothing publishable this tick.
    pub missing: usize,
}

/// One robot's double-buffered staging state. `staged_*` is the back
/// buffer frames copy into as they arrive; `published_*` is the front
/// buffer the batch borrows from. [`FleetIngest::swap`] exchanges the
/// two per arrived piece, so buffers are recycled tick after tick and
/// the warm path performs no heap allocation.
#[derive(Debug)]
pub(crate) struct Slot {
    policy: DeadlinePolicy,
    staged_u: Vector,
    staged_u_arrived: bool,
    staged: Vec<Vector>,
    arrived: Vec<bool>,
    published_u: Vector,
    published: Vec<Vector>,
    state: SlotState,
    /// Whether a complete set has ever been published — until then
    /// `HoldLast` has nothing valid to hold and resolves to `Missing`.
    complete_history: bool,
}

impl Slot {
    fn new(sensors: usize, policy: DeadlinePolicy) -> Self {
        Slot {
            policy,
            staged_u: Vector::zeros(0),
            staged_u_arrived: false,
            staged: (0..sensors).map(|_| Vector::zeros(0)).collect(),
            arrived: vec![false; sensors],
            published_u: Vector::zeros(0),
            published: (0..sensors).map(|_| Vector::zeros(0)).collect(),
            state: SlotState::Missing,
            complete_history: false,
        }
    }

    fn complete(&self) -> bool {
        self.staged_u_arrived && self.arrived.iter().all(|&a| a)
    }

    fn snap_write(&self, out: &mut Vec<u8>) {
        crate::snapshot::put_vector(out, &self.staged_u);
        wire::put_bool(out, self.staged_u_arrived);
        for v in &self.staged {
            crate::snapshot::put_vector(out, v);
        }
        wire::put_bool_slice(out, &self.arrived);
        crate::snapshot::put_vector(out, &self.published_u);
        for v in &self.published {
            crate::snapshot::put_vector(out, v);
        }
        wire::put_u8(
            out,
            match self.state {
                SlotState::Fresh => 0,
                SlotState::Held => 1,
                SlotState::Missing => 2,
            },
        );
        wire::put_bool(out, self.complete_history);
    }

    fn snap_read(&mut self, rd: &mut wire::ByteReader<'_>) -> Result<()> {
        crate::snapshot::read_vector_flex(rd, &mut self.staged_u)?;
        self.staged_u_arrived = rd.bool()?;
        for v in &mut self.staged {
            crate::snapshot::read_vector_flex(rd, v)?;
        }
        crate::snapshot::read_bools(rd, &mut self.arrived, self.staged.len())?;
        crate::snapshot::read_vector_flex(rd, &mut self.published_u)?;
        for v in &mut self.published {
            crate::snapshot::read_vector_flex(rd, v)?;
        }
        self.state = match rd.u8()? {
            0 => SlotState::Fresh,
            1 => SlotState::Held,
            2 => SlotState::Missing,
            t => {
                return Err(CoreError::Snapshot {
                    reason: format!("unknown slot state tag {t}"),
                })
            }
        };
        self.complete_history = rd.bool()?;
        Ok(())
    }
}

/// Pre-registered counters for the ingest hot path (same invariant as
/// the engine's instruments: registration may lock and allocate, the
/// per-offer/per-swap path records through atomics only).
#[derive(Debug, Clone)]
struct IngestInstruments {
    /// `ingest.swaps` — tick boundaries crossed.
    swaps: Counter,
    /// `ingest.robots_fresh` — robot-slots published complete.
    fresh: Counter,
    /// `ingest.robots_held` — robot-slots published from held values.
    held: Counter,
    /// `ingest.robots_missing` — robot-slots with nothing publishable.
    missing: Counter,
    /// `ingest.frames_rejected` — stamped offers whose tick did not
    /// match the staging window (late arrivals after the swap, or
    /// stamps from the future).
    rejected: Counter,
}

impl IngestInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        IngestInstruments {
            swaps: m.counter("ingest.swaps"),
            fresh: m.counter("ingest.robots_fresh"),
            held: m.counter("ingest.robots_held"),
            missing: m.counter("ingest.robots_missing"),
            rejected: m.counter("ingest.frames_rejected"),
        }
    }
}

/// Double-buffered async ingestion front-end for [`FleetEngine`].
///
/// # Example
///
/// ```
/// use roboads_core::{DeadlinePolicy, FleetEngine, FleetIngest, RoboAds, SlotState};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let detectors: Result<Vec<_>, _> =
///     (0..2).map(|_| RoboAds::with_defaults(system.clone(), x0.clone())).collect();
/// let mut fleet = FleetEngine::new(detectors?, 1);
/// let mut ingest = FleetIngest::for_fleet(&fleet).with_policy(DeadlinePolicy::MarkMissing);
///
/// // Frames arrive per robot, per sensor, in any order.
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// for robot in 0..2 {
///     ingest.offer_input(robot, &u)?;
///     for s in (0..3).rev() {
///         ingest.offer(robot, s, &system.sensor(s).unwrap().measure(&x1))?;
///     }
/// }
/// // Tick boundary: publish complete slots, step the fleet.
/// ingest.step(&mut fleet)?;
/// assert_eq!(ingest.state(0), SlotState::Fresh);
/// assert!(fleet.result(0).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FleetIngest {
    slots: Vec<Slot>,
    tick: u64,
    telemetry: Telemetry,
    instruments: IngestInstruments,
}

impl FleetIngest {
    /// Builds a front-end with one staging slot per robot;
    /// `sensor_counts[i]` is robot `i`'s sensing-workflow count. All
    /// robots start with [`DeadlinePolicy::MarkMissing`].
    pub fn new(sensor_counts: &[usize]) -> Self {
        let telemetry = Telemetry::disabled();
        let instruments = IngestInstruments::new(&telemetry);
        FleetIngest {
            slots: sensor_counts
                .iter()
                .map(|&n| Slot::new(n, DeadlinePolicy::MarkMissing))
                .collect(),
            tick: 0,
            telemetry,
            instruments,
        }
    }

    /// Builds a front-end shaped for `fleet` (one slot per robot, sized
    /// to each robot's own sensor suite).
    pub fn for_fleet(fleet: &FleetEngine) -> Self {
        let counts: Vec<usize> = (0..fleet.len())
            .map(|i| fleet.detector(i).system().sensor_count())
            .collect();
        FleetIngest::new(&counts)
    }

    /// Sets every robot's deadline policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: DeadlinePolicy) -> Self {
        for slot in &mut self.slots {
            slot.policy = policy;
        }
        self
    }

    /// Sets one robot's deadline policy.
    ///
    /// # Panics
    ///
    /// Panics if `robot` is out of range.
    pub fn set_policy(&mut self, robot: usize, policy: DeadlinePolicy) {
        self.slots[robot].policy = policy;
    }

    /// Robot `robot`'s deadline policy.
    pub fn policy(&self, robot: usize) -> DeadlinePolicy {
        self.slots[robot].policy
    }

    /// Threads a telemetry context through the ingest counters and
    /// events (default: disabled sink with a private registry).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.instruments = IngestInstruments::new(&telemetry);
        self.telemetry = telemetry;
    }

    /// Number of robot slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the front-end has no robot slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The current staging tick: offers accumulate into window `tick()`
    /// until the next [`FleetIngest::swap`] publishes it.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// How robot `robot`'s slot resolved at the last swap
    /// ([`SlotState::Missing`] before the first).
    pub fn state(&self, robot: usize) -> SlotState {
        self.slots[robot].state
    }

    fn slot_mut(&mut self, robot: usize) -> Result<&mut Slot> {
        let robots = self.slots.len();
        self.slots
            .get_mut(robot)
            .ok_or_else(|| CoreError::BadReadings {
                reason: format!("ingest offer for robot {robot} in a {robots}-robot fleet"),
            })
    }

    /// Stages robot `robot`'s reading for sensor `sensor` in the current
    /// tick window, copying into the slot's persistent buffer (a repeat
    /// offer for the same sensor overwrites — newest wins, like a bus
    /// consumer cache). Order is irrelevant: slots are keyed, not
    /// queued, so reordered frames within a window are harmless.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `robot` or `sensor` is out of
    /// range. Reading *dimensions* are not validated here — a malformed
    /// vector surfaces as that one robot's per-robot step error.
    pub fn offer(&mut self, robot: usize, sensor: usize, reading: &Vector) -> Result<()> {
        let slot = self.slot_mut(robot)?;
        let sensors = slot.staged.len();
        match slot.staged.get_mut(sensor) {
            Some(buf) => {
                buf.assign(reading);
                slot.arrived[sensor] = true;
                Ok(())
            }
            None => Err(CoreError::BadReadings {
                reason: format!(
                    "ingest offer for sensor {sensor} on robot {robot} with {sensors} sensors"
                ),
            }),
        }
    }

    /// Stages robot `robot`'s planned command `u_{k-1}` for the current
    /// tick window.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when `robot` is out of range.
    pub fn offer_input(&mut self, robot: usize, u_prev: &Vector) -> Result<()> {
        let slot = self.slot_mut(robot)?;
        slot.staged_u.assign(u_prev);
        slot.staged_u_arrived = true;
        Ok(())
    }

    /// Tick-stamped [`FleetIngest::offer`]: accepts the frame only when
    /// `tick` matches the current staging window, returning whether it
    /// was staged. A mismatched stamp — a late frame whose window has
    /// already swapped, or a stamp from the future — is dropped, counted
    /// (`ingest.frames_rejected`) and reported as an
    /// `ingest.frame_rejected` event, never silently staged into the
    /// wrong tick.
    ///
    /// # Errors
    ///
    /// As [`FleetIngest::offer`].
    pub fn offer_stamped(
        &mut self,
        robot: usize,
        sensor: usize,
        reading: &Vector,
        tick: u64,
    ) -> Result<bool> {
        if tick != self.tick {
            self.reject_frame(robot, Some(sensor), tick);
            return Ok(false);
        }
        self.offer(robot, sensor, reading).map(|()| true)
    }

    /// Tick-stamped [`FleetIngest::offer_input`]; same acceptance rule
    /// as [`FleetIngest::offer_stamped`].
    ///
    /// # Errors
    ///
    /// As [`FleetIngest::offer_input`].
    pub fn offer_input_stamped(
        &mut self,
        robot: usize,
        u_prev: &Vector,
        tick: u64,
    ) -> Result<bool> {
        if tick != self.tick {
            self.reject_frame(robot, None, tick);
            return Ok(false);
        }
        self.offer_input(robot, u_prev).map(|()| true)
    }

    fn reject_frame(&self, robot: usize, sensor: Option<usize>, stamp: u64) {
        self.instruments.rejected.incr();
        let current = self.tick;
        self.telemetry.event("ingest.frame_rejected", || {
            vec![
                ("robot", Value::U64(robot as u64)),
                ("sensor", Value::U64(sensor.map_or(u64::MAX, |s| s as u64))),
                ("stamp", Value::U64(stamp)),
                ("tick", Value::U64(current)),
            ]
        });
    }

    /// Crosses the tick boundary: publishes every complete staging slot
    /// into the front buffer, resolves incomplete slots by their robot's
    /// [`DeadlinePolicy`], clears the staging window and advances the
    /// tick. The published batch is then readable through
    /// [`FleetIngest::input`] until the next swap.
    ///
    /// A complete slot swaps buffer pointers (no copy, no allocation);
    /// a `HoldLast` slot swaps only the pieces that arrived, keeping the
    /// previously published values for the rest.
    pub fn swap(&mut self) -> SwapSummary {
        let mut summary = SwapSummary {
            tick: self.tick,
            fresh: 0,
            held: 0,
            missing: 0,
        };
        for (robot, slot) in self.slots.iter_mut().enumerate() {
            if slot.complete() {
                std::mem::swap(&mut slot.published_u, &mut slot.staged_u);
                for (published, staged) in slot.published.iter_mut().zip(&mut slot.staged) {
                    std::mem::swap(published, staged);
                }
                slot.state = SlotState::Fresh;
                slot.complete_history = true;
                summary.fresh += 1;
            } else {
                let missing_pieces = usize::from(!slot.staged_u_arrived)
                    + slot.arrived.iter().filter(|&&a| !a).count();
                slot.state = if slot.policy == DeadlinePolicy::HoldLast && slot.complete_history {
                    if slot.staged_u_arrived {
                        std::mem::swap(&mut slot.published_u, &mut slot.staged_u);
                    }
                    for ((published, staged), &arrived) in slot
                        .published
                        .iter_mut()
                        .zip(&mut slot.staged)
                        .zip(&slot.arrived)
                    {
                        if arrived {
                            std::mem::swap(published, staged);
                        }
                    }
                    summary.held += 1;
                    SlotState::Held
                } else {
                    summary.missing += 1;
                    SlotState::Missing
                };
                let state = slot.state;
                let tick = self.tick;
                self.telemetry.event("ingest.deadline_missed", || {
                    vec![
                        ("robot", Value::U64(robot as u64)),
                        ("tick", Value::U64(tick)),
                        (
                            "resolution",
                            Value::Str(match state {
                                SlotState::Held => "held_last",
                                _ => "missing",
                            }),
                        ),
                        ("missing_pieces", Value::U64(missing_pieces as u64)),
                    ]
                });
            }
            slot.staged_u_arrived = false;
            slot.arrived.fill(false);
        }
        self.instruments.swaps.incr();
        self.instruments.fresh.add(summary.fresh as u64);
        self.instruments.held.add(summary.held as u64);
        self.instruments.missing.add(summary.missing as u64);
        self.tick += 1;
        summary
    }

    /// Robot `robot`'s published input for the last swapped tick:
    /// `Some` for [`SlotState::Fresh`] and [`SlotState::Held`] slots,
    /// `None` for [`SlotState::Missing`] ones. The borrow is valid until
    /// the next [`FleetIngest::swap`].
    pub fn input(&self, robot: usize) -> Option<RobotInput<'_>> {
        let slot = &self.slots[robot];
        match slot.state {
            SlotState::Fresh | SlotState::Held => Some(RobotInput {
                u_prev: &slot.published_u,
                readings: &slot.published,
            }),
            SlotState::Missing => None,
        }
    }

    /// Appends the ingest front-end's mutable state to a snapshot buffer:
    /// the staging tick plus every slot's double-buffered staging and
    /// published contents. Deadline policies are construction
    /// configuration and belong to the restore twin.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.tick);
        wire::put_u32(out, self.slots.len() as u32);
        for slot in &self.slots {
            slot.snap_write(out);
        }
    }

    /// Restores the ingest front-end's mutable state from a snapshot
    /// buffer onto an identically-shaped twin.
    pub(crate) fn snap_read(&mut self, rd: &mut wire::ByteReader<'_>) -> Result<()> {
        self.tick = rd.u64()?;
        let n = rd.u32()? as usize;
        if n != self.slots.len() {
            return Err(CoreError::Snapshot {
                reason: format!(
                    "snapshot has {n} ingest slots, twin has {}",
                    self.slots.len()
                ),
            });
        }
        for slot in &mut self.slots {
            slot.snap_read(rd)?;
        }
        Ok(())
    }

    /// Removes the slots at `indices` (strictly ascending) and returns
    /// them in that order, preserving their staged/published contents —
    /// the ingest half of moving robots between shards. Remaining slots
    /// keep their relative order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or the list is not strictly
    /// ascending.
    pub(crate) fn remove_slots(&mut self, indices: &[usize]) -> Vec<Slot> {
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
        let mut taken = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            taken.push(self.slots.remove(i));
        }
        taken.reverse();
        taken
    }

    /// Appends slots previously taken with [`FleetIngest::remove_slots`]
    /// (the receiving shard's robots gain the movers' staged state).
    pub(crate) fn append_slots(&mut self, slots: Vec<Slot>) {
        self.slots.extend(slots);
    }

    /// Convenience tick: [`FleetIngest::swap`] followed by
    /// [`FleetEngine::step_batch_masked`] on the published batch. A
    /// fleet driven through this with every frame on time produces
    /// reports bitwise identical to direct [`FleetEngine::step_batch`]
    /// calls; a robot that missed its deadline resolves per its policy
    /// while every other robot's step is unaffected.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadReadings`] when the fleet size does not match the
    /// slot count, else the first per-robot failure in slab order —
    /// including [`CoreError::MissedDeadline`] for robots this swap
    /// marked missing. Per-robot outcomes stay queryable through
    /// [`FleetEngine::result`] regardless of the batch-level error.
    pub fn step(&mut self, fleet: &mut FleetEngine) -> Result<()> {
        if fleet.len() != self.slots.len() {
            return Err(CoreError::BadReadings {
                reason: format!(
                    "ingest with {} slots driving a fleet of {} robots",
                    self.slots.len(),
                    fleet.len()
                ),
            });
        }
        let summary = self.swap();
        // Recorded batches carry the published tick, not the fleet's
        // internal counter, so capsules line up with the stamped bus.
        fleet.set_tick_stamp(summary.tick);
        let inputs: Vec<Option<RobotInput<'_>>> =
            (0..self.slots.len()).map(|r| self.input(r)).collect();
        fleet.step_batch_masked(&inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_offers_are_rejected() {
        let mut ingest = FleetIngest::new(&[2, 2]);
        let v = Vector::from_slice(&[1.0]);
        assert!(matches!(
            ingest.offer(5, 0, &v),
            Err(CoreError::BadReadings { .. })
        ));
        assert!(matches!(
            ingest.offer(0, 7, &v),
            Err(CoreError::BadReadings { .. })
        ));
        assert!(matches!(
            ingest.offer_input(9, &v),
            Err(CoreError::BadReadings { .. })
        ));
    }

    #[test]
    fn incomplete_slot_marks_missing_and_complete_slot_publishes() {
        let mut ingest = FleetIngest::new(&[2]);
        let u = Vector::from_slice(&[0.1, 0.2]);
        let r0 = Vector::from_slice(&[1.0]);
        ingest.offer_input(0, &u).unwrap();
        ingest.offer(0, 0, &r0).unwrap();
        // Sensor 1 never arrives.
        let summary = ingest.swap();
        assert_eq!(summary.tick, 0);
        assert_eq!(summary.missing, 1);
        assert_eq!(ingest.state(0), SlotState::Missing);
        assert!(ingest.input(0).is_none());

        // Next window: everything arrives, out of order.
        let r1 = Vector::from_slice(&[2.0, 3.0]);
        ingest.offer(0, 1, &r1).unwrap();
        ingest.offer(0, 0, &r0).unwrap();
        ingest.offer_input(0, &u).unwrap();
        let summary = ingest.swap();
        assert_eq!(summary.fresh, 1);
        let input = ingest.input(0).expect("published");
        assert_eq!(input.u_prev, &u);
        assert_eq!(input.readings[0], r0);
        assert_eq!(input.readings[1], r1);
    }

    #[test]
    fn hold_last_fills_missing_pieces_from_the_previous_tick() {
        let mut ingest = FleetIngest::new(&[2]).with_policy(DeadlinePolicy::HoldLast);
        let u = Vector::from_slice(&[0.1]);
        let r0 = Vector::from_slice(&[1.0]);
        let r1 = Vector::from_slice(&[2.0]);
        // Before any complete window, hold-last has nothing to hold.
        ingest.offer(0, 0, &r0).unwrap();
        ingest.swap();
        assert_eq!(ingest.state(0), SlotState::Missing);

        // A complete window establishes history...
        ingest.offer_input(0, &u).unwrap();
        ingest.offer(0, 0, &r0).unwrap();
        ingest.offer(0, 1, &r1).unwrap();
        assert_eq!(ingest.swap().fresh, 1);

        // ...then a window where only sensor 0 arrives, with a new value.
        let r0_new = Vector::from_slice(&[9.0]);
        ingest.offer(0, 0, &r0_new).unwrap();
        let summary = ingest.swap();
        assert_eq!(summary.held, 1);
        assert_eq!(ingest.state(0), SlotState::Held);
        let input = ingest.input(0).expect("held slots still publish");
        assert_eq!(input.readings[0], r0_new, "fresh arrival wins");
        assert_eq!(input.readings[1], r1, "missing piece held from last tick");
        assert_eq!(input.u_prev, &u, "command held from last tick");
    }

    #[test]
    fn stamped_offers_reject_other_windows() {
        let mut ingest = FleetIngest::new(&[1]);
        let v = Vector::from_slice(&[1.0]);
        assert!(ingest.offer_stamped(0, 0, &v, 0).unwrap());
        ingest.swap();
        // The window has moved on; the same stamp is now late.
        assert!(!ingest.offer_stamped(0, 0, &v, 0).unwrap());
        assert!(
            !ingest.offer_input_stamped(0, &v, 7).unwrap(),
            "future stamp"
        );
        assert!(ingest.offer_stamped(0, 0, &v, 1).unwrap());
    }

    #[test]
    fn swap_counters_and_events_reach_telemetry() {
        use roboads_obs::RingBufferSink;
        use std::sync::Arc;
        let ring = Arc::new(RingBufferSink::new(1024));
        let telemetry = Telemetry::new(ring.clone());
        let mut ingest = FleetIngest::new(&[1, 1]);
        ingest.set_telemetry(telemetry.clone());
        let v = Vector::from_slice(&[1.0]);
        ingest.offer_input(0, &v).unwrap();
        ingest.offer(0, 0, &v).unwrap();
        // Robot 1 delivers nothing; robot 0 is complete.
        ingest.swap();
        // A late frame for the already-swapped window.
        assert!(!ingest.offer_stamped(1, 0, &v, 0).unwrap());
        let m = telemetry.metrics();
        assert_eq!(m.counter_value("ingest.swaps"), Some(1));
        assert_eq!(m.counter_value("ingest.robots_fresh"), Some(1));
        assert_eq!(m.counter_value("ingest.robots_missing"), Some(1));
        assert_eq!(m.counter_value("ingest.frames_rejected"), Some(1));
        let events = ring.events();
        assert!(events.iter().any(|e| e.name == "ingest.deadline_missed"));
        assert!(events.iter().any(|e| e.name == "ingest.frame_rejected"));
    }
}
