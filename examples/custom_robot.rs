//! Bringing your own robot: implement the model traits for a custom
//! platform and feed the detector directly — no simulator involved.
//!
//! The robot here is a unicycle carrying two redundant GPS units and a
//! magnetometer. It demonstrates §VI of the paper:
//!
//! * **Sensor capabilities** — a magnetometer only measures heading, so
//!   a mode with it as the sole reference cannot reconstruct the state;
//!   [`ModeSet::validate`] rejects it at construction.
//! * **Grouping** — pairing the magnetometer with a GPS restores
//!   observability, and the grouped mode set detects a GPS spoofing
//!   attack.
//!
//! ```text
//! cargo run --release --example custom_robot
//! ```

use std::sync::Arc;

use roboads::stats::{SeedableRng, StdRng};

use roboads::core::{Mode, ModeSet, RoboAds, RoboAdsConfig};
use roboads::linalg::{Matrix, Vector};
use roboads::models::dynamics::Unicycle;
use roboads::models::sensors::{Gps, Magnetometer, SensorModel};
use roboads::models::{DynamicsModel, RobotSystem};
use roboads::stats::MultivariateNormal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Assemble the custom system. ---
    let dynamics: Arc<dyn DynamicsModel> = Arc::new(Unicycle::new(0.1)?);
    let gps_a: Arc<dyn SensorModel> = Arc::new(Gps::new(0.05)?);
    let gps_b: Arc<dyn SensorModel> = Arc::new(Gps::new(0.08)?);
    let mag: Arc<dyn SensorModel> = Arc::new(Magnetometer::new(0.01)?);
    let q = Matrix::from_diagonal(&[1e-5, 1e-5, 1e-5]);
    let system = RobotSystem::new(dynamics, q, vec![gps_a, gps_b, mag])?;
    let x0 = Vector::from_slice(&[0.0, 0.0, 0.3]);

    // --- The naive mode set is rejected, for two §VI reasons: a
    //     magnetometer-only reference cannot reconstruct the state, and
    //     a position-only GPS cannot expose the turn-rate actuator
    //     channel within one control step. ---
    let naive = ModeSet::one_reference_per_sensor(&system);
    match RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        naive,
    ) {
        Err(e) => println!("naive mode set rejected, as §VI predicts:\n  {e}\n"),
        Ok(_) => unreachable!("single-sensor references must not validate here"),
    }

    // --- Group sensors so every reference set observes both the state
    //     and the actuator channels (§VI's fix). Note that even the two
    //     GPS units *together* cannot expose the turn-rate channel (all
    //     their rows are position rows), so every group includes the
    //     magnetometer — the mode-set designer's trade-off §VI mentions.
    let grouped = ModeSet::from_reference_groups(
        &system,
        &[vec![0, 2], vec![1, 2]], // GPS-A + mag | GPS-B + mag
    );
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        grouped,
    )?;
    println!(
        "grouped mode set accepted: {:?}\n",
        ads.modes()
            .modes()
            .iter()
            .map(Mode::describe)
            .collect::<Vec<_>>()
    );

    // --- Drive the robot manually and spoof GPS-A after 3 s. ---
    let mut rng = StdRng::seed_from_u64(9);
    let process = MultivariateNormal::zero_mean(system.process_noise().clone())?;
    let mut x_true = x0;
    let u = Vector::from_slice(&[0.2, 0.15]); // gentle arc
    let mut first_identification = None;

    for k in 0..100 {
        x_true = &system.dynamics().step(&x_true, &u) + &process.sample(&mut rng);
        let mut readings = Vec::new();
        for i in 0..system.sensor_count() {
            let sensor = system.sensor(i)?;
            let noise = MultivariateNormal::zero_mean(sensor.noise_covariance())?;
            let mut z = &sensor.measure(&x_true) + &noise.sample(&mut rng);
            if i == 0 && k >= 30 {
                z[0] += 0.5; // spoof GPS-A: half a meter east
            }
            readings.push(z);
        }
        let report = ads.step(&u, &readings)?;
        if report.sensor_misbehavior_detected() && first_identification.is_none() {
            first_identification = Some((k, report.misbehaving_sensors.clone()));
        }
    }

    match first_identification {
        Some((k, sensors)) => println!(
            "GPS-A spoofing identified at iteration {k} (attack began at 30): sensors {sensors:?}"
        ),
        None => println!("spoofing was not identified"),
    }
    Ok(())
}
