//! Closed-loop simulation substrate for the RoboADS reproduction.
//!
//! The paper evaluates RoboADS on two physical robots running an
//! RRT*+PID mission while attacks and failures are injected into
//! individual sensing/actuation workflows (Table II). This crate
//! replaces the physical testbed (documented substitution, `DESIGN.md`
//! §3) with a faithful discrete-time simulation:
//!
//! * [`SensingWorkflow`] / [`ActuationWorkflow`] — the workflow boxes of
//!   the paper's Figure 1, each with a seeded noise stream and a
//!   [`Misbehavior`] injection point *inside* the workflow (tick
//!   counters for the encoder, raw commands for the actuators, …),
//! * [`RobotPlatform`] — ground-truth state propagation with process
//!   noise,
//! * [`Scenario`] — the paper's 11 attack/failure scenarios (`Table II`)
//!   plus Tamiya variants, as data,
//! * [`SimulationBuilder`] — wires arena, mission, tracker, workflows
//!   and the [`RoboAds`] detector into a reproducible run,
//! * [`Trace`] / [`evaluate`] — per-iteration records and the paper's
//!   evaluation semantics (identification-sensitive TP/FP/FN/TN,
//!   per-transition detection delays).
//!
//! [`RoboAds`]: roboads_core::RoboAds
//!
//! # Example
//!
//! ```
//! use roboads_sim::{Scenario, SimulationBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = SimulationBuilder::khepera()
//!     .scenario(Scenario::ips_logic_bomb())
//!     .seed(3)
//!     .run()?;
//! // Scenario #3 corrupts the IPS (sensor 0) from t = 4 s on.
//! assert_eq!(outcome.report.misbehaving_sensors, vec![0]);
//! assert!(outcome.eval.sensor_delay().unwrap() < 1.0);
//! # Ok(())
//! # }
//! ```

pub mod attacks;
pub mod bus;

mod campaign;
mod eval;
mod fleet;
mod loadgen;
mod misbehavior;
mod platform;
mod runner;
mod scenario;
mod telemetry;
mod trace;
mod workflow;

pub use attacks::{AttackKind, AttackSpec, AttackWindow, BusAttack, FrameTarget};
pub use campaign::{Campaign, CampaignCell, CampaignOutcome, CampaignPoint, PolicyChoice};
pub use eval::{evaluate, EvalResult, TransitionDelay};
pub use fleet::{FleetOutcome, FleetSimulationBuilder, FrameFault};
pub use loadgen::{serve_traces_uds, stream_traces};
pub use misbehavior::{Corruption, Misbehavior, Target};
pub use platform::RobotPlatform;
pub use runner::{evaluation_detector, FramePolicy, RobotKind, SimOutcome, SimulationBuilder};
pub use scenario::{GroundTruth, Scenario};
pub use telemetry::{ModeTelemetry, TelemetrySummary};
pub use trace::{Trace, TraceRecord};
pub use workflow::{ActuationWorkflow, SensingWorkflow};

/// Re-export of the observability layer, so harnesses can build sinks
/// and [`roboads_obs::Telemetry`] contexts for
/// [`SimulationBuilder::telemetry`] without naming the crate.
pub use roboads_obs as obs;

use std::error::Error;
use std::fmt;

/// Errors produced by simulation construction and execution.
#[derive(Debug)]
pub enum SimError {
    /// Planning or control failed.
    Control(roboads_control::ControlError),
    /// Detector construction or stepping failed.
    Core(roboads_core::CoreError),
    /// Model construction failed.
    Model(roboads_models::ModelError),
    /// Statistical machinery failed.
    Stats(roboads_stats::StatsError),
    /// A simulation parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted by the caller.
        value: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Control(e) => write!(f, "control failure: {e}"),
            SimError::Core(e) => write!(f, "detector failure: {e}"),
            SimError::Model(e) => write!(f, "model failure: {e}"),
            SimError::Stats(e) => write!(f, "statistics failure: {e}"),
            SimError::InvalidParameter { name, value } => {
                write!(f, "invalid simulation parameter {name} = {value}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Control(e) => Some(e),
            SimError::Core(e) => Some(e),
            SimError::Model(e) => Some(e),
            SimError::Stats(e) => Some(e),
            SimError::InvalidParameter { .. } => None,
        }
    }
}

impl From<roboads_control::ControlError> for SimError {
    fn from(e: roboads_control::ControlError) -> Self {
        SimError::Control(e)
    }
}

impl From<roboads_core::CoreError> for SimError {
    fn from(e: roboads_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<roboads_models::ModelError> for SimError {
    fn from(e: roboads_models::ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<roboads_stats::StatsError> for SimError {
    fn from(e: roboads_stats::StatsError) -> Self {
        SimError::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: SimError = roboads_core::CoreError::Numeric("x".into()).into();
        assert!(e.to_string().contains("detector"));
        assert!(Error::source(&e).is_some());
        let e = SimError::InvalidParameter {
            name: "seed",
            value: "-1".into(),
        };
        assert!(Error::source(&e).is_none());
    }
}
