use std::collections::HashMap;

use roboads_linalg::{Matrix, Vector};
use roboads_models::{RobotSystem, SensorSlice};
use roboads_obs::wire;
use roboads_obs::{Counter, Gauge, Telemetry, Value};
use roboads_stats::{ChiSquareTest, SlidingWindow, StatWorkspace};

use crate::config::RoboAdsConfig;
use crate::engine::EngineOutput;
use crate::mode::ModeSet;
use crate::report::{AnomalyEstimate, DetectionReport, SensorAnomaly};
use crate::Result;

/// The decision maker (Algorithm 1 lines 10–25): χ² tests on the
/// selected mode's normalized anomaly estimates, sliding-window
/// confirmation, and per-sensor splitting to identify the misbehaving
/// workflow(s).
///
/// Stateful: it owns the two sliding windows, so one `DecisionMaker`
/// must be fed every iteration in order.
#[derive(Debug, Clone)]
pub struct DecisionMaker {
    sensor_alpha: f64,
    actuator_alpha: f64,
    sensor_window: SlidingWindow,
    actuator_window: SlidingWindow,
    /// χ² tests keyed by degrees of freedom (testing-set dimensions vary
    /// by mode), built lazily and cached.
    sensor_tests: HashMap<usize, ChiSquareTest>,
    actuator_test: ChiSquareTest,
    /// Conservative test for cross-mode actuator-estimate conflicts
    /// (α = 0.001: only a decisive contradiction suppresses an alarm).
    actuator_conflict_test: ChiSquareTest,
    telemetry: Telemetry,
    instruments: DecisionInstruments,
    /// Previous iteration's window-confirmed alarms, for edge-triggered
    /// confirmed/cleared events.
    prev_sensor_alarm: bool,
    prev_actuator_alarm: bool,
    /// Reusable statistic workspaces keyed by dimension (the same
    /// lazily-built-and-cached discipline as `sensor_tests`) so warm
    /// assessments run without heap allocation.
    stat_workspaces: HashMap<usize, StatWorkspace>,
    /// Per-dimension covariance-block scratch for the per-sensor views.
    block_scratch: HashMap<usize, Matrix>,
    /// Innovation-consistent mode indices, rebuilt each iteration.
    qualifying: Vec<usize>,
    /// Actuator-estimate difference scratch (input dimension).
    diff: Vector,
    /// Joint-covariance scratch (input dimension).
    joint: Matrix,
    /// Testing-slice scratch for the per-sensor views.
    slices: Vec<SensorSlice>,
}

/// Pre-registered metric handles for the decision maker (same
/// registration-once discipline as the engine's instruments).
#[derive(Debug, Clone)]
struct DecisionInstruments {
    /// `decision.sensor_positives` — iterations whose aggregate sensor
    /// statistic exceeded its threshold (pre-window).
    sensor_positives: Counter,
    /// `decision.actuator_positives` — pre-window actuator positives.
    actuator_positives: Counter,
    /// `decision.sensor_alarms` — rising edges of the window-confirmed
    /// sensor alarm.
    sensor_alarms: Counter,
    /// `decision.actuator_alarms` — rising edges of the confirmed
    /// actuator alarm.
    actuator_alarms: Counter,
    /// `decision.sensor_statistic` — latest aggregate sensor χ² value.
    sensor_statistic: Gauge,
    /// `decision.actuator_statistic` — latest actuator χ² value.
    actuator_statistic: Gauge,
}

impl DecisionInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        DecisionInstruments {
            sensor_positives: m.counter("decision.sensor_positives"),
            actuator_positives: m.counter("decision.actuator_positives"),
            sensor_alarms: m.counter("decision.sensor_alarms"),
            actuator_alarms: m.counter("decision.actuator_alarms"),
            sensor_statistic: m.gauge("decision.sensor_statistic"),
            actuator_statistic: m.gauge("decision.actuator_statistic"),
        }
    }
}

/// The decision maker's verdict for one iteration.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Aggregate sensor anomaly of the selected mode with test context.
    pub sensor_anomaly: AnomalyEstimate,
    /// Actuator anomaly of the selected mode with test context.
    pub actuator_anomaly: AnomalyEstimate,
    /// Window-confirmed sensor alarm.
    pub sensor_alarm: bool,
    /// Identified misbehaving sensors (empty unless `sensor_alarm`).
    pub misbehaving_sensors: Vec<usize>,
    /// Window-confirmed actuator alarm.
    pub actuator_alarm: bool,
    /// Per-sensor anomaly views covering the whole suite.
    pub per_sensor: Vec<SensorAnomaly>,
}

impl DecisionMaker {
    /// Creates a decision maker from the detector configuration and the
    /// actuator dimension.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid α or window
    /// parameters.
    pub fn new(config: &RoboAdsConfig, input_dim: usize) -> Result<Self> {
        config.validate()?;
        let sensor_window =
            SlidingWindow::new(config.sensor_window.criteria, config.sensor_window.window)?;
        let actuator_window = SlidingWindow::new(
            config.actuator_window.criteria,
            config.actuator_window.window,
        )?;
        let actuator_test = ChiSquareTest::new(input_dim.max(1), config.actuator_alpha)?;
        let actuator_conflict_test = ChiSquareTest::new(input_dim.max(1), 0.001)?;
        let telemetry = Telemetry::disabled();
        let instruments = DecisionInstruments::new(&telemetry);
        Ok(DecisionMaker {
            sensor_alpha: config.sensor_alpha,
            actuator_alpha: config.actuator_alpha,
            sensor_window,
            actuator_window,
            sensor_tests: HashMap::new(),
            actuator_test,
            actuator_conflict_test,
            telemetry,
            instruments,
            prev_sensor_alarm: false,
            prev_actuator_alarm: false,
            stat_workspaces: HashMap::new(),
            block_scratch: HashMap::new(),
            qualifying: Vec::new(),
            diff: Vector::zeros(input_dim),
            joint: Matrix::zeros(input_dim, input_dim),
            slices: Vec::new(),
        })
    }

    /// Replaces the telemetry context (default: disabled) and
    /// re-registers the decision instruments in the new registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.instruments = DecisionInstruments::new(&telemetry);
        self.telemetry = telemetry;
    }

    fn sensor_test(&mut self, dof: usize) -> Result<ChiSquareTest> {
        if let Some(t) = self.sensor_tests.get(&dof) {
            return Ok(*t);
        }
        let t = ChiSquareTest::new(dof, self.sensor_alpha)?;
        self.sensor_tests.insert(dof, t);
        Ok(t)
    }

    /// Returns the statistic workspace for dimension `dim`, building and
    /// caching it on first use (warm calls are lookup-only).
    fn stat_workspace(
        workspaces: &mut HashMap<usize, StatWorkspace>,
        dim: usize,
    ) -> &mut StatWorkspace {
        workspaces
            .entry(dim)
            .or_insert_with(|| StatWorkspace::new(dim))
    }

    /// Assesses one engine iteration.
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the statistic computations.
    pub fn assess(
        &mut self,
        system: &RobotSystem,
        modes: &ModeSet,
        engine_out: &EngineOutput,
    ) -> Result<Decision> {
        let mut report = DetectionReport::blank();
        self.assess_report(system, modes, engine_out, &mut report)?;
        Ok(Decision {
            sensor_anomaly: report.sensor_anomaly,
            actuator_anomaly: report.actuator_anomaly,
            sensor_alarm: report.sensor_alarm,
            misbehaving_sensors: report.misbehaving_sensors,
            actuator_alarm: report.actuator_alarm,
            per_sensor: report.per_sensor,
        })
    }

    /// Assesses one engine iteration directly into `report`'s decision
    /// fields (`sensor_anomaly`, `actuator_anomaly`, the alarms,
    /// `misbehaving_sensors`, `per_sensor`), reusing the report's
    /// existing buffers: a warmed-up decision maker fed same-shaped
    /// engine output performs zero heap allocations. The engine-context
    /// fields (`iteration`, `selected_mode`, `mode_probabilities`,
    /// `state_estimate`) are left untouched — the caller owns them.
    ///
    /// Values are bitwise identical to [`DecisionMaker::assess`]'s (the
    /// in-place statistic paths replicate the allocating formulations
    /// exactly).
    ///
    /// # Errors
    ///
    /// Propagates numeric failures from the statistic computations; the
    /// report may then hold a partially updated verdict and should be
    /// discarded. The sliding windows advance only if every statistic
    /// they consume was computed, exactly as in `assess`.
    pub fn assess_report(
        &mut self,
        system: &RobotSystem,
        modes: &ModeSet,
        engine_out: &EngineOutput,
        report: &mut DetectionReport,
    ) -> Result<()> {
        let telemetry = self.telemetry.clone();
        let _assess_span = telemetry.span("decision.assess");
        let selected = engine_out.selected;
        let selected_out = engine_out.selected_output();

        // --- Aggregate sensor anomaly test (line 10). ---
        if selected_out.sensor_anomaly.is_empty() {
            report.sensor_anomaly = AnomalyEstimate::empty();
        } else {
            let dof = selected_out.sensor_anomaly.len();
            let stat = Self::stat_workspace(&mut self.stat_workspaces, dof)
                .normalized_statistic_into(
                    &selected_out.sensor_anomaly,
                    &selected_out.sensor_covariance,
                )?;
            let test = self.sensor_test(dof)?;
            report
                .sensor_anomaly
                .estimate
                .assign(&selected_out.sensor_anomaly);
            report
                .sensor_anomaly
                .covariance
                .assign(&selected_out.sensor_covariance);
            report.sensor_anomaly.statistic = stat;
            report.sensor_anomaly.threshold = test.threshold();
            report.sensor_anomaly.exceeds = test.exceeds(stat);
        }

        // --- Actuator anomaly test (line 11). ---
        // Quantified from the *most precise innovation-consistent* mode
        // rather than blindly from the selected one: Table IV shows the
        // actuator anomaly estimate's variance is set by the
        // reference-sensor quality (LiDAR an order of magnitude worse
        // than the pose sensors), and a weak actuator attack must not be
        // hidden by the accident of a noisy-reference mode being
        // selected. Qualification is by the mode's own innovation
        // consistency (its reference explains the data) — not by its
        // parsimony-weighted probability, which deliberately biases
        // *against* modes that can see a real input anomaly.
        //
        // Modes the activation schedule parked this iteration carry
        // stale outputs: dormant ≠ inconsistent, but a stale estimate
        // must neither source the actuator statistic nor veto a live
        // one, so only active modes qualify. The engine guarantees the
        // most actuator-precise mode stays active while the bank
        // sleeps, so the source choice matches the full bank's.
        const CONSISTENT_FLOOR: f64 = 1e-4;
        self.qualifying.clear();
        for m in 0..modes.len() {
            if engine_out.is_active(m) && engine_out.modes[m].consistency >= CONSISTENT_FLOOR {
                self.qualifying.push(m);
            }
        }
        let actuator_source = self
            .qualifying
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ta = engine_out.modes[a].actuator_covariance.trace();
                let tb = engine_out.modes[b].actuator_covariance.trace();
                ta.partial_cmp(&tb).expect("finite covariance traces")
            })
            .unwrap_or(selected);
        let actuator_out = &engine_out.modes[actuator_source];
        // Cross-mode corroboration: a *real* actuator anomaly is
        // estimated consistently by every innovation-consistent mode,
        // while a phantom (an absorbed sensor corruption) lives in one
        // hypothesis only. If another qualifying mode's estimate
        // contradicts the source's beyond their joint covariance, the
        // estimate is reported but does not feed a positive into the
        // alarm window. A merely *blind* (high-variance) mode cannot
        // contradict anything — its joint covariance is loose.
        let mut contradicted = false;
        for &j in &self.qualifying {
            if j == actuator_source {
                continue;
            }
            self.diff.copy_from(&actuator_out.actuator_anomaly);
            self.diff -= &engine_out.modes[j].actuator_anomaly;
            self.joint.copy_from(&actuator_out.actuator_covariance);
            self.joint += &engine_out.modes[j].actuator_covariance;
            let dim = self.diff.len();
            let stat = Self::stat_workspace(&mut self.stat_workspaces, dim)
                .normalized_statistic_into(&self.diff, &self.joint)?;
            if self.actuator_conflict_test.exceeds(stat) {
                contradicted = true;
                break;
            }
        }
        {
            let dim = actuator_out.actuator_anomaly.len();
            let stat = Self::stat_workspace(&mut self.stat_workspaces, dim)
                .normalized_statistic_into(
                    &actuator_out.actuator_anomaly,
                    &actuator_out.actuator_covariance,
                )?;
            report
                .actuator_anomaly
                .estimate
                .assign(&actuator_out.actuator_anomaly);
            report
                .actuator_anomaly
                .covariance
                .assign(&actuator_out.actuator_covariance);
            report.actuator_anomaly.statistic = stat;
            report.actuator_anomaly.threshold = self.actuator_test.threshold();
            report.actuator_anomaly.exceeds = self.actuator_test.exceeds(stat) && !contradicted;
        }

        // --- Sliding windows (lines 12, 20). ---
        report.sensor_alarm = self.sensor_window.push(report.sensor_anomaly.exceeds);
        report.actuator_alarm = self.actuator_window.push(report.actuator_anomaly.exceeds);

        // --- Per-sensor views for the whole suite (Fig. 6), and
        //     identification (lines 13–18). ---
        // Slots are overwritten in place; the slot layout is stable
        // across iterations (sensor dimensions are fixed), so the warm
        // path never reallocates.
        let mut write = 0;
        for sensor in 0..system.sensor_count() {
            if self.per_sensor_view_into(
                system,
                modes,
                engine_out,
                sensor,
                &mut report.per_sensor,
                write,
            )? {
                write += 1;
            }
        }
        report.per_sensor.truncate(write);

        // Identification: confirmed misbehaving sensors are the testing
        // sensors of the *selected* mode whose individual statistic
        // exceeds its threshold, gated on the window-confirmed alarm.
        report.misbehaving_sensors.clear();
        if report.sensor_alarm {
            let selected_mode = &modes.modes()[selected];
            for v in &report.per_sensor {
                if v.from_mode == selected && selected_mode.is_testing(v.sensor) && v.exceeds {
                    report.misbehaving_sensors.push(v.sensor);
                }
            }
        }

        self.record_verdict(
            &telemetry,
            &report.sensor_anomaly,
            &report.actuator_anomaly,
            report.sensor_alarm,
            report.actuator_alarm,
            &report.misbehaving_sensors,
        );

        Ok(())
    }

    /// Publishes the iteration's verdict: statistic gauges, pre-window
    /// positive counters, and edge-triggered confirmed/cleared events so
    /// a JSONL trace reads as an incident log rather than a per-tick
    /// firehose.
    fn record_verdict(
        &mut self,
        telemetry: &Telemetry,
        sensor_anomaly: &AnomalyEstimate,
        actuator_anomaly: &AnomalyEstimate,
        sensor_alarm: bool,
        actuator_alarm: bool,
        misbehaving_sensors: &[usize],
    ) {
        self.instruments
            .sensor_statistic
            .set(sensor_anomaly.statistic);
        self.instruments
            .actuator_statistic
            .set(actuator_anomaly.statistic);
        if sensor_anomaly.exceeds {
            self.instruments.sensor_positives.incr();
        }
        if actuator_anomaly.exceeds {
            self.instruments.actuator_positives.incr();
        }
        if sensor_alarm && !self.prev_sensor_alarm {
            self.instruments.sensor_alarms.incr();
            telemetry.event("decision.sensor_alarm_confirmed", || {
                let sensors = misbehaving_sensors
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                vec![
                    ("statistic", Value::F64(sensor_anomaly.statistic)),
                    ("threshold", Value::F64(sensor_anomaly.threshold)),
                    ("sensors", Value::Text(sensors)),
                ]
            });
        } else if !sensor_alarm && self.prev_sensor_alarm {
            telemetry.event("decision.sensor_alarm_cleared", || {
                vec![("statistic", Value::F64(sensor_anomaly.statistic))]
            });
        }
        if actuator_alarm && !self.prev_actuator_alarm {
            self.instruments.actuator_alarms.incr();
            telemetry.event("decision.actuator_alarm_confirmed", || {
                vec![
                    ("statistic", Value::F64(actuator_anomaly.statistic)),
                    ("threshold", Value::F64(actuator_anomaly.threshold)),
                ]
            });
        } else if !actuator_alarm && self.prev_actuator_alarm {
            telemetry.event("decision.actuator_alarm_cleared", || {
                vec![("statistic", Value::F64(actuator_anomaly.statistic))]
            });
        }
        self.prev_sensor_alarm = sensor_alarm;
        self.prev_actuator_alarm = actuator_alarm;
    }

    /// Writes the per-sensor anomaly view for one sensor into
    /// `per_sensor[write]` (pushing a slot when the vector is still
    /// growing): taken from the selected mode when the sensor is in its
    /// testing set, otherwise from the most probable mode that tests it,
    /// preferring modes that actually ran this iteration (a dormant
    /// mode's view is stale; it is used only when no active mode tests
    /// the sensor, so the report keeps covering the whole suite).
    /// Returns `false` without writing for a sensor no mode ever tests
    /// (it can never be identified — the mode set designer opted it out).
    fn per_sensor_view_into(
        &mut self,
        system: &RobotSystem,
        modes: &ModeSet,
        engine_out: &EngineOutput,
        sensor: usize,
        per_sensor: &mut Vec<SensorAnomaly>,
        write: usize,
    ) -> Result<bool> {
        let selected = engine_out.selected;
        let most_probable_tester = |active_only: bool| {
            (0..modes.len())
                .filter(|&m| {
                    modes.modes()[m].is_testing(sensor) && (!active_only || engine_out.is_active(m))
                })
                .max_by(|&a, &b| {
                    engine_out.probabilities[a]
                        .partial_cmp(&engine_out.probabilities[b])
                        .expect("probabilities are finite")
                })
        };
        let source_mode = if modes.modes()[selected].is_testing(sensor) {
            Some(selected)
        } else {
            most_probable_tester(true).or_else(|| most_probable_tester(false))
        };
        let Some(m) = source_mode else {
            return Ok(false);
        };
        let mode = &modes.modes()[m];
        let out = &engine_out.modes[m];
        // Locate this sensor's block inside the mode's stacked testing
        // vector.
        system.subset_slices_into(mode.testing(), &mut self.slices);
        let slice = *self
            .slices
            .iter()
            .find(|s| s.sensor == sensor)
            .expect("sensor is in this mode's testing set");
        if write == per_sensor.len() {
            per_sensor.push(SensorAnomaly {
                sensor,
                name: String::new(),
                estimate: Vector::zeros(slice.len),
                statistic: 0.0,
                exceeds: false,
                from_mode: m,
            });
        }
        let slot = &mut per_sensor[write];
        slot.sensor = sensor;
        slot.from_mode = m;
        slot.name.clear();
        slot.name.push_str(system.sensor_name(sensor));
        if slot.estimate.len() != slice.len {
            slot.estimate = Vector::zeros(slice.len);
        }
        out.sensor_anomaly
            .segment_into(slice.offset, &mut slot.estimate);
        let block = self
            .block_scratch
            .entry(slice.len)
            .or_insert_with(|| Matrix::zeros(slice.len, slice.len));
        out.sensor_covariance
            .block_into(slice.offset, slice.offset, block);
        let stat = Self::stat_workspace(&mut self.stat_workspaces, slice.len)
            .normalized_statistic_into(&slot.estimate, block)?;
        let test = self.sensor_test(slice.len)?;
        slot.statistic = stat;
        slot.exceeds = test.exceeds(stat);
        Ok(true)
    }

    /// Whether either sliding window currently holds a positive — i.e.
    /// a χ² decision window is open and counting toward (or holding) a
    /// confirmed alarm. The engine's activation scheduler treats this
    /// as external activity: the mode bank must stay fully awake while
    /// any hypothesis is in contention (see `DESIGN.md` §17).
    pub(crate) fn windows_active(&self) -> bool {
        self.sensor_window.positives() > 0 || self.actuator_window.positives() > 0
    }

    /// Appends the decision maker's mutable state to a snapshot buffer
    /// (DESIGN.md §18): both sliding-window histories and the previous
    /// edge-trigger alarms. The χ²-test and workspace caches are
    /// deterministic lazy builds and are left to the restore twin.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        let sensor: Vec<bool> = self.sensor_window.history().collect();
        let actuator: Vec<bool> = self.actuator_window.history().collect();
        wire::put_bool_slice(out, &sensor);
        wire::put_bool_slice(out, &actuator);
        wire::put_bool(out, self.prev_sensor_alarm);
        wire::put_bool(out, self.prev_actuator_alarm);
    }

    /// Restores the decision maker's mutable state from a snapshot
    /// buffer.
    pub(crate) fn snap_read(&mut self, rd: &mut wire::ByteReader<'_>) -> Result<()> {
        let sensor = rd.bool_vec()?;
        let actuator = rd.bool_vec()?;
        self.sensor_window.restore_history(&sensor)?;
        self.actuator_window.restore_history(&actuator)?;
        self.prev_sensor_alarm = rd.bool()?;
        self.prev_actuator_alarm = rd.bool()?;
        Ok(())
    }

    /// The configured sensor significance level.
    pub fn sensor_alpha(&self) -> f64 {
        self.sensor_alpha
    }

    /// The configured actuator significance level.
    pub fn actuator_alpha(&self) -> f64 {
        self.actuator_alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MultiModeEngine;
    use roboads_linalg::Vector;
    use roboads_models::presets;

    fn setup() -> (RobotSystem, MultiModeEngine, DecisionMaker, Vector) {
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let engine = MultiModeEngine::new(
            system.clone(),
            modes,
            x0.clone(),
            &RoboAdsConfig::paper_defaults(),
        )
        .unwrap();
        let dm = DecisionMaker::new(&RoboAdsConfig::paper_defaults(), system.input_dim()).unwrap();
        (system, engine, dm, x0)
    }

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn clean_iterations_raise_no_alarms() {
        let (system, mut engine, mut dm, x0) = setup();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for _ in 0..20 {
            x_true = system.dynamics().step(&x_true, &u);
            let out = engine.step(&u, &clean_readings(&system, &x_true)).unwrap();
            let d = dm.assess(&system, engine.modes(), &out).unwrap();
            assert!(!d.sensor_alarm);
            assert!(!d.actuator_alarm);
            assert!(d.misbehaving_sensors.is_empty());
            // Per-sensor views cover the whole suite.
            assert_eq!(d.per_sensor.len(), 3);
        }
    }

    #[test]
    fn persistent_sensor_bias_is_identified_within_window() {
        let (system, mut engine, mut dm, x0) = setup();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let mut identified_at = None;
        for k in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            readings[0][0] += 0.07; // IPS logic bomb (scenario #3 scale)
            let out = engine.step(&u, &readings).unwrap();
            let d = dm.assess(&system, engine.modes(), &out).unwrap();
            if d.misbehaving_sensors == vec![0] && identified_at.is_none() {
                identified_at = Some(k);
            }
        }
        // 2/2 window → identified by the second corrupted iteration.
        assert_eq!(identified_at, Some(1));
    }

    #[test]
    fn actuator_bias_is_confirmed_through_longer_window() {
        let (system, mut engine, mut dm, x0) = setup();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let bias = Vector::from_slice(&[-0.04, 0.04]); // ∓6000 speed units
        let mut x_true = x0;
        let mut alarm_at = None;
        for k in 0..12 {
            x_true = system.dynamics().step(&x_true, &(&u + &bias));
            let out = engine.step(&u, &clean_readings(&system, &x_true)).unwrap();
            let d = dm.assess(&system, engine.modes(), &out).unwrap();
            if d.actuator_alarm && alarm_at.is_none() {
                alarm_at = Some(k);
            }
            assert!(d.misbehaving_sensors.is_empty());
        }
        // 3/6 window → confirmed at the third positive.
        assert_eq!(alarm_at, Some(2));
        // The anomaly estimate quantifies the bias.
    }

    #[test]
    fn single_glitch_is_suppressed_by_window() {
        let (system, mut engine, mut dm, x0) = setup();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k == 5 {
                readings[1][1] += 0.2; // one-iteration encoder glitch
            }
            let out = engine.step(&u, &readings).unwrap();
            let d = dm.assess(&system, engine.modes(), &out).unwrap();
            assert!(!d.sensor_alarm, "glitch should not confirm at k={k}");
        }
    }

    #[test]
    fn two_simultaneously_corrupted_sensors_are_both_identified() {
        let (system, mut engine, mut dm, x0) = setup();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let mut last = Vec::new();
        for _ in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            readings[1][0] += 0.06; // encoder
            readings[2][1] += 0.08; // lidar
            let out = engine.step(&u, &readings).unwrap();
            let d = dm.assess(&system, engine.modes(), &out).unwrap();
            last = d.misbehaving_sensors;
        }
        assert_eq!(last, vec![1, 2], "should identify WE + LiDAR (S4)");
    }

    /// Builds a synthetic engine output for conflict-logic tests: three
    /// modes, all innovation-consistent, with chosen actuator estimates.
    fn synthetic_engine_output(
        system: &RobotSystem,
        modes: &ModeSet,
        actuators: Vec<(Vector, f64, f64)>, // (estimate, cov scale, consistency)
    ) -> EngineOutput {
        use crate::nuise::NuiseOutput;
        use roboads_linalg::Matrix;
        let outputs: Vec<NuiseOutput> = modes
            .modes()
            .iter()
            .zip(actuators)
            .map(|(mode, (d_a, cov, consistency))| {
                let s_dim = system.subset_dim(mode.testing());
                NuiseOutput {
                    state_estimate: Vector::zeros(3),
                    state_covariance: Matrix::identity(3) * 1e-4,
                    actuator_anomaly: d_a,
                    actuator_covariance: Matrix::identity(2) * cov,
                    sensor_anomaly: Vector::zeros(s_dim),
                    sensor_covariance: Matrix::identity(s_dim) * 1e-4,
                    likelihood: 1.0,
                    consistency,
                    innovation: Vector::zeros(0),
                }
            })
            .collect();
        EngineOutput {
            modes: outputs,
            probabilities: vec![1.0 / 3.0; 3],
            active: vec![true; 3],
            selected: 0,
        }
    }

    #[test]
    fn contradicted_actuator_estimate_is_suppressed() {
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let mut dm =
            DecisionMaker::new(&RoboAdsConfig::paper_defaults(), system.input_dim()).unwrap();
        // The most precise mode claims a big anomaly; another equally
        // consistent, equally precise mode says zero → decisive
        // contradiction → no positive.
        let out = synthetic_engine_output(
            &system,
            &modes,
            vec![
                (Vector::from_slice(&[0.05, -0.05]), 1e-6, 1.0),
                (Vector::zeros(2), 2e-6, 1.0),
                (Vector::zeros(2), 1e-2, 1.0),
            ],
        );
        let d = dm.assess(&system, &modes, &out).unwrap();
        assert!(d.actuator_anomaly.statistic > d.actuator_anomaly.threshold);
        assert!(
            !d.actuator_anomaly.exceeds,
            "contradicted claim must not alarm"
        );
    }

    #[test]
    fn corroborated_or_unopposed_estimates_do_alarm() {
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let mut dm =
            DecisionMaker::new(&RoboAdsConfig::paper_defaults(), system.input_dim()).unwrap();
        // All consistent modes agree on the anomaly → alarm.
        let agreeing = synthetic_engine_output(
            &system,
            &modes,
            vec![
                (Vector::from_slice(&[0.05, -0.05]), 1e-6, 1.0),
                (Vector::from_slice(&[0.049, -0.051]), 2e-6, 1.0),
                (Vector::from_slice(&[0.03, -0.08]), 1e-2, 1.0),
            ],
        );
        let d = dm.assess(&system, &modes, &agreeing).unwrap();
        assert!(d.actuator_anomaly.exceeds);

        // A blind (loose-covariance) disagreement cannot veto.
        let mut dm =
            DecisionMaker::new(&RoboAdsConfig::paper_defaults(), system.input_dim()).unwrap();
        let blind_opposition = synthetic_engine_output(
            &system,
            &modes,
            vec![
                (Vector::from_slice(&[0.05, -0.05]), 1e-6, 1.0),
                (Vector::zeros(2), 1e-2, 1.0), // loose: no contradiction
                (Vector::zeros(2), 1e-2, 1e-9), // inconsistent: not qualifying
            ],
        );
        let d = dm.assess(&system, &modes, &blind_opposition).unwrap();
        assert!(d.actuator_anomaly.exceeds);
    }

    #[test]
    fn alpha_accessors() {
        let (_, _, dm, _) = setup();
        assert_eq!(dm.sensor_alpha(), 0.005);
        assert_eq!(dm.actuator_alpha(), 0.05);
    }
}
