//! Three-channel actuator attribution on a holonomic robot: with
//! `q = 3` and a full-pose reference sensor, `C₂G` is square and
//! invertible, so NUISE attributes an actuator anomaly to the exact
//! channels it acts on — the warehouse-robot setting the paper's
//! introduction motivates.

use std::sync::Arc;

use roboads::stats::{SeedableRng, StdRng};

use roboads::core::{CoreError, ModeSet, RoboAds, RoboAdsConfig};
use roboads::linalg::{Matrix, Vector};
use roboads::models::dynamics::Omnidirectional;
use roboads::models::sensors::{Ips, SensorModel, WallLidar};
use roboads::models::{presets, DynamicsModel, RobotSystem};
use roboads::stats::{mean, MultivariateNormal};

fn omni_system() -> RobotSystem {
    let dynamics: Arc<dyn DynamicsModel> = Arc::new(Omnidirectional::new(0.1).unwrap());
    let ips: Arc<dyn SensorModel> = Arc::new(Ips::new(0.004, 0.003).unwrap());
    let lidar: Arc<dyn SensorModel> =
        Arc::new(WallLidar::new(presets::evaluation_arena(), 0.015, 0.02).unwrap());
    RobotSystem::new(
        dynamics,
        Matrix::from_diagonal(&[4e-6, 4e-6, 4e-6]),
        vec![ips, lidar],
    )
    .unwrap()
}

#[test]
fn lone_pose_reference_is_rejected_without_redundancy() {
    // With q = 3 input channels, a 3-dim pose reference leaves zero
    // analytical redundancy: the hypothesis would explain any data. The
    // validator must reject it with an explanatory error.
    let system = omni_system();
    let x0 = Vector::from_slice(&[1.0, 1.0, 0.4]);
    let err = RoboAds::with_defaults(system, x0).unwrap_err();
    match err {
        CoreError::DegenerateMode { reason, .. } => {
            assert!(reason.contains("redundancy"), "reason: {reason}")
        }
        other => panic!("expected DegenerateMode, got {other}"),
    }
}

/// Valid omni mode set: the 4-dim LiDAR may reference alone (one
/// residual dimension); the IPS must pair with it.
fn omni_modes(system: &RobotSystem) -> ModeSet {
    ModeSet::from_reference_groups(system, &[vec![1], vec![0, 1]])
}

#[test]
fn per_channel_actuator_anomalies_are_attributed() {
    let system = omni_system();
    let x0 = Vector::from_slice(&[1.0, 1.0, 0.4]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        omni_modes(&system),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(3);
    let process = MultivariateNormal::zero_mean(system.process_noise().clone()).unwrap();
    let u = Vector::from_slice(&[0.15, -0.05, 0.2]);
    // Injected per-channel corruption: sideways drift + phantom spin.
    let bias = Vector::from_slice(&[0.0, 0.06, -0.15]);

    let mut x_true = x0;
    let mut estimates: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut alarms = 0;
    for k in 0..120 {
        let executed = if k >= 40 { &u + &bias } else { u.clone() };
        x_true = &system.dynamics().step(&x_true, &executed) + &process.sample(&mut rng);
        let readings: Vec<Vector> = (0..system.sensor_count())
            .map(|i| {
                let s = system.sensor(i).unwrap();
                let noise = MultivariateNormal::zero_mean(s.noise_covariance()).unwrap();
                &s.measure(&x_true) + &noise.sample(&mut rng)
            })
            .collect();
        let report = ads.step(&u, &readings).unwrap();
        if k >= 50 {
            for (c, channel) in estimates.iter_mut().enumerate() {
                channel.push(report.actuator_anomaly.estimate[c]);
            }
            alarms += usize::from(report.actuator_alarm);
        }
    }

    // The alarm is confirmed and held.
    assert!(
        alarms > 60,
        "actuator alarm held for only {alarms}/70 iterations"
    );
    // Channel attribution: the clean channel stays near zero, the two
    // attacked channels are quantified.
    let means: Vec<f64> = estimates.iter().map(|e| mean(e)).collect();
    assert!(
        means[0].abs() < 0.02,
        "clean v_x channel blamed: {}",
        means[0]
    );
    assert!((means[1] - 0.06).abs() < 0.02, "v_y channel: {}", means[1]);
    assert!(
        (means[2] + 0.15).abs() < 0.05,
        "omega channel: {}",
        means[2]
    );
}

#[test]
fn sensor_attacks_still_identified_with_three_input_channels() {
    // With q = 3, only the 4-dim LiDAR retains redundancy as a lone
    // reference; it must carry the identification of an IPS spoofing.
    let system = omni_system();
    let x0 = Vector::from_slice(&[1.0, 1.0, 0.4]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        omni_modes(&system),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(9);
    let process = MultivariateNormal::zero_mean(system.process_noise().clone()).unwrap();
    let u = Vector::from_slice(&[0.12, 0.0, 0.15]);
    let mut x_true = x0;
    let mut identified = 0;
    for k in 0..100 {
        x_true = &system.dynamics().step(&x_true, &u) + &process.sample(&mut rng);
        let mut readings: Vec<Vector> = (0..system.sensor_count())
            .map(|i| {
                let s = system.sensor(i).unwrap();
                let noise = MultivariateNormal::zero_mean(s.noise_covariance()).unwrap();
                &s.measure(&x_true) + &noise.sample(&mut rng)
            })
            .collect();
        if k >= 40 {
            readings[0][0] += 0.1; // spoof the IPS
        }
        let report = ads.step(&u, &readings).unwrap();
        if k >= 45 && report.misbehaving_sensors == vec![0] {
            identified += 1;
        }
    }
    assert!(
        identified > 45,
        "IPS identified in only {identified}/55 iterations"
    );
}
