//! Evaluation of a simulation trace under the paper's §V metrics.
//!
//! * **True positive** — the detector raises an alarm *and* identifies
//!   the correct sensor/actuator condition; any other positive is a
//!   **false positive**; a silent detector during a misbehavior is a
//!   **false negative**; silence when clean is a **true negative**.
//!   Counts are accumulated per control iteration.
//! * **Detection delay** — for each ground-truth condition transition,
//!   the time from the transition until the detector's identified
//!   condition first matches the new truth (the `S0→2→4`-style rows of
//!   Table II report one delay per transition, including recoveries).

use roboads_stats::ConfusionCounts;

use crate::scenario::GroundTruth;
use crate::trace::{sensor_mode_code, Trace};

/// The delay of one ground-truth condition transition.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransitionDelay {
    /// Time of the ground-truth transition, seconds.
    pub at: f64,
    /// Target condition label (`"S2"`, `"A1"`, …).
    pub condition: String,
    /// Seconds until the detector matched the new condition; `None` if
    /// it never did before the next transition (a miss).
    pub delay: Option<f64>,
}

/// Aggregated evaluation of one run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvalResult {
    /// The scenario name.
    pub scenario: String,
    /// Per-iteration sensor-condition confusion counts
    /// (identification-sensitive).
    pub sensor_counts: ConfusionCounts,
    /// Per-iteration actuator confusion counts.
    pub actuator_counts: ConfusionCounts,
    /// Sensor-condition transitions with delays.
    pub sensor_transitions: Vec<TransitionDelay>,
    /// Actuator-condition transitions with delays.
    pub actuator_transitions: Vec<TransitionDelay>,
    /// The sequence of distinct detected sensor conditions, e.g.
    /// `["S0", "S2", "S4"]`.
    pub detected_sensor_sequence: Vec<String>,
    /// The sequence of distinct detected actuator conditions.
    pub detected_actuator_sequence: Vec<String>,
}

impl EvalResult {
    /// Sensor false positive rate over the run.
    pub fn sensor_fpr(&self) -> f64 {
        self.sensor_counts.false_positive_rate()
    }

    /// Sensor false negative rate over the run.
    pub fn sensor_fnr(&self) -> f64 {
        self.sensor_counts.false_negative_rate()
    }

    /// Actuator false positive rate over the run.
    pub fn actuator_fpr(&self) -> f64 {
        self.actuator_counts.false_positive_rate()
    }

    /// Actuator false negative rate over the run.
    pub fn actuator_fnr(&self) -> f64 {
        self.actuator_counts.false_negative_rate()
    }

    /// Mean sensor detection delay over the detected (non-missed)
    /// transitions into a misbehaving condition; `None` when the run
    /// had no such detected transition.
    pub fn sensor_delay(&self) -> Option<f64> {
        mean_delay(&self.sensor_transitions)
    }

    /// Mean actuator detection delay; `None` when not applicable.
    pub fn actuator_delay(&self) -> Option<f64> {
        mean_delay(&self.actuator_transitions)
    }

    /// Whether any ground-truth transition was never matched.
    pub fn missed_transition(&self) -> bool {
        self.sensor_transitions
            .iter()
            .chain(self.actuator_transitions.iter())
            .any(|t| t.delay.is_none())
    }
}

fn mean_delay(transitions: &[TransitionDelay]) -> Option<f64> {
    let delays: Vec<f64> = transitions
        .iter()
        .filter(|t| t.condition != "S0" && t.condition != "A0")
        .filter_map(|t| t.delay)
        .collect();
    if delays.is_empty() {
        None
    } else {
        Some(delays.iter().sum::<f64>() / delays.len() as f64)
    }
}

/// Evaluates a trace against a scenario's ground truth.
pub fn evaluate(trace: &Trace, ground_truth: &GroundTruth) -> EvalResult {
    let dt = trace.dt();
    let mut sensor_counts = ConfusionCounts::default();
    let mut actuator_counts = ConfusionCounts::default();

    // Per-iteration truth and detected condition codes.
    let mut truth_sensor = Vec::with_capacity(trace.len());
    let mut truth_actuator = Vec::with_capacity(trace.len());
    let mut detected_sensor = Vec::with_capacity(trace.len());
    let mut detected_actuator = Vec::with_capacity(trace.len());

    for r in trace.records() {
        let t_sensors = ground_truth.sensors_at(r.k);
        let t_act = ground_truth.actuator_at(r.k);
        let d_sensors = r.report.misbehaving_sensors.clone();
        let d_act = r.report.actuator_alarm;

        sensor_counts.record_identified(
            !t_sensors.is_empty(),
            !d_sensors.is_empty(),
            d_sensors == t_sensors,
        );
        actuator_counts.record(t_act, d_act);

        truth_sensor.push(t_sensors);
        truth_actuator.push(t_act);
        detected_sensor.push(d_sensors);
        detected_actuator.push(d_act);
    }

    let sensor_transitions = transitions(&truth_sensor, &detected_sensor, dt, |v| {
        format!("S{}", sensor_mode_code(v))
    });
    let actuator_transitions = transitions(&truth_actuator, &detected_actuator, dt, |&v| {
        if v {
            "A1".to_string()
        } else {
            "A0".to_string()
        }
    });

    EvalResult {
        scenario: trace.scenario_name().to_string(),
        sensor_counts,
        actuator_counts,
        sensor_transitions,
        actuator_transitions,
        detected_sensor_sequence: distinct_sequence(&detected_sensor, |v| {
            format!("S{}", sensor_mode_code(v))
        }),
        detected_actuator_sequence: distinct_sequence(&detected_actuator, |&v| {
            if v {
                "A1".to_string()
            } else {
                "A0".to_string()
            }
        }),
    }
}

/// Finds ground-truth change points and the delay until the detected
/// stream matches each new value (searching until the next change
/// point).
fn transitions<T: PartialEq>(
    truth: &[T],
    detected: &[T],
    dt: f64,
    label: impl Fn(&T) -> String,
) -> Vec<TransitionDelay> {
    let mut out = Vec::new();
    let mut change_points: Vec<usize> = Vec::new();
    for k in 1..truth.len() {
        if truth[k] != truth[k - 1] {
            change_points.push(k);
        }
    }
    for (i, &k0) in change_points.iter().enumerate() {
        let window_end = change_points.get(i + 1).copied().unwrap_or(truth.len());
        let delay = (k0..window_end)
            .find(|&k| detected[k] == truth[k0])
            .map(|k| (k - k0) as f64 * dt);
        out.push(TransitionDelay {
            at: k0 as f64 * dt,
            condition: label(&truth[k0]),
            delay,
        });
    }
    out
}

/// Minimum dwell (iterations) for a detected condition to appear in the
/// reported sequence; shorter blips are transition transients.
const SEQUENCE_PERSISTENCE: usize = 3;

/// Collapses a detected stream into its sequence of distinct *persistent*
/// values: a condition enters the sequence only after holding for
/// [`SEQUENCE_PERSISTENCE`] consecutive iterations (or at the very start
/// / end of the run), so one-iteration transition transients do not
/// clutter the Table-II-style result strings. The confusion counts are
/// computed per iteration and are unaffected by this filtering.
fn distinct_sequence<T: PartialEq>(stream: &[T], label: impl Fn(&T) -> String) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        // Length of the run starting at i.
        let mut j = i;
        while j < stream.len() && stream[j] == stream[i] {
            j += 1;
        }
        let run_len = j - i;
        if run_len >= SEQUENCE_PERSISTENCE || i == 0 || j == stream.len() {
            let l = label(&stream[i]);
            if out.last() != Some(&l) {
                out.push(l);
            }
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::misbehavior::{Corruption, Misbehavior, Target};
    use crate::scenario::Scenario;
    use crate::trace::TraceRecord;
    use roboads_core::{AnomalyEstimate, DetectionReport};
    use roboads_linalg::Vector;

    /// Builds a synthetic trace where the detector reports `detected`
    /// at each iteration.
    fn synthetic_trace(detected: Vec<(Vec<usize>, bool)>) -> Trace {
        let mut t = Trace::new(0.1, "synthetic");
        for (k, (sensors, act)) in detected.into_iter().enumerate() {
            t.push(TraceRecord {
                k,
                time: k as f64 * 0.1,
                true_state: Vector::zeros(3),
                planned_command: Vector::zeros(2),
                executed_command: Vector::zeros(2),
                true_actuator_anomaly: Vector::zeros(2),
                readings: vec![],
                true_sensor_anomalies: vec![],
                report: DetectionReport {
                    iteration: k as u64 + 1,
                    selected_mode: 0,
                    mode_probabilities: vec![1.0],
                    state_estimate: Vector::zeros(3),
                    sensor_anomaly: AnomalyEstimate::empty(),
                    actuator_anomaly: AnomalyEstimate::empty(),
                    sensor_alarm: !sensors.is_empty(),
                    misbehaving_sensors: sensors,
                    actuator_alarm: act,
                    per_sensor: vec![],
                },
            });
        }
        t
    }

    fn scenario_sensor0_from(start: usize, duration: usize) -> Scenario {
        Scenario::new(
            0,
            "synthetic",
            "",
            vec![Misbehavior::new(
                "bias",
                Target::Sensor(0),
                Corruption::Bias(Vector::zeros(3)),
                start,
                None,
            )],
            duration,
        )
    }

    #[test]
    fn perfect_detection_with_two_step_delay() {
        // Truth: sensor 0 misbehaves from k=5; detector catches at k=7.
        let detected: Vec<(Vec<usize>, bool)> = (0..20)
            .map(|k| (if k >= 7 { vec![0] } else { vec![] }, false))
            .collect();
        let trace = synthetic_trace(detected);
        let gt = scenario_sensor0_from(5, 20).ground_truth();
        let eval = evaluate(&trace, &gt);

        assert_eq!(eval.sensor_counts.true_positives, 13);
        assert_eq!(eval.sensor_counts.false_negatives, 2); // k=5,6
        assert_eq!(eval.sensor_counts.true_negatives, 5);
        assert_eq!(eval.sensor_counts.false_positives, 0);
        assert_eq!(eval.sensor_transitions.len(), 1);
        let t = &eval.sensor_transitions[0];
        assert_eq!(t.condition, "S1");
        assert!((t.delay.unwrap() - 0.2).abs() < 1e-12);
        assert!((eval.sensor_delay().unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(eval.detected_sensor_sequence, vec!["S0", "S1"]);
        assert!(!eval.missed_transition());
    }

    #[test]
    fn wrong_identification_is_false_positive() {
        // Truth: sensor 0; detector blames sensor 1 throughout.
        let detected: Vec<(Vec<usize>, bool)> = (0..10).map(|_| (vec![1], false)).collect();
        let trace = synthetic_trace(detected);
        let gt = scenario_sensor0_from(0, 10).ground_truth();
        let eval = evaluate(&trace, &gt);
        assert_eq!(eval.sensor_counts.true_positives, 0);
        assert_eq!(eval.sensor_counts.false_positives, 10);
    }

    #[test]
    fn missed_attack_is_false_negative_and_missed_transition() {
        let detected: Vec<(Vec<usize>, bool)> = (0..10).map(|_| (vec![], false)).collect();
        let trace = synthetic_trace(detected);
        let gt = scenario_sensor0_from(4, 10).ground_truth();
        let eval = evaluate(&trace, &gt);
        assert_eq!(eval.sensor_counts.false_negatives, 6);
        assert!(eval.missed_transition());
        assert_eq!(eval.sensor_delay(), None);
    }

    #[test]
    fn actuator_rates() {
        let detected: Vec<(Vec<usize>, bool)> =
            (0..10).map(|k| (vec![], k == 2 || k >= 5)).collect();
        let trace = synthetic_trace(detected);
        let s = Scenario::new(
            0,
            "a",
            "",
            vec![Misbehavior::new(
                "bias",
                Target::Actuators,
                Corruption::Bias(Vector::zeros(2)),
                5,
                None,
            )],
            10,
        );
        let eval = evaluate(&trace, &s.ground_truth());
        // k=2 false alarm among 5 clean iterations.
        assert!((eval.actuator_fpr() - 0.2).abs() < 1e-12);
        assert_eq!(eval.actuator_fnr(), 0.0);
        assert_eq!(eval.actuator_transitions[0].condition, "A1");
        assert_eq!(eval.actuator_transitions[0].delay, Some(0.0));
        // The one-iteration blip at k = 2 is filtered out of the
        // reported sequence (it still counts as a false positive above).
        assert_eq!(eval.detected_actuator_sequence, vec!["A0", "A1"]);
    }

    /// A misbehavior active from the very first iteration produces no
    /// change point (change points are detected from k = 1), so no
    /// transition-delay row exists — but the per-iteration confusion
    /// counts still see every misbehaving iteration.
    #[test]
    fn misbehavior_active_at_k0_yields_no_transition_but_full_counts() {
        let detected: Vec<(Vec<usize>, bool)> = (0..10)
            .map(|k| (if k >= 2 { vec![0] } else { vec![] }, false))
            .collect();
        let trace = synthetic_trace(detected);
        let gt = scenario_sensor0_from(0, 10).ground_truth();
        let eval = evaluate(&trace, &gt);
        assert!(eval.sensor_transitions.is_empty(), "no change point at k=0");
        assert_eq!(eval.sensor_delay(), None);
        assert!(!eval.missed_transition());
        assert_eq!(eval.sensor_counts.false_negatives, 2); // k=0,1
        assert_eq!(eval.sensor_counts.true_positives, 8);
        assert_eq!(eval.sensor_counts.true_negatives, 0);
    }

    /// Back-to-back change points: each transition's search window ends
    /// at the next change point, so a one-iteration condition gives the
    /// detector exactly one iteration to match — anything slower is a
    /// miss for that transition, not a late detection.
    #[test]
    fn back_to_back_change_points_have_zero_width_windows() {
        // Truth: clean, sensor 0 only at k=4, clean again from k=5.
        let s = Scenario::new(
            0,
            "blip",
            "",
            vec![Misbehavior::new(
                "bias",
                Target::Sensor(0),
                Corruption::Bias(Vector::zeros(3)),
                4,
                Some(5),
            )],
            10,
        );
        // Detector matches the blip one step late — inside the *next*
        // window, so the S1 transition is a miss and the S0 recovery is
        // matched late.
        let detected: Vec<(Vec<usize>, bool)> = (0..10)
            .map(|k| (if k == 5 { vec![0] } else { vec![] }, false))
            .collect();
        let eval = evaluate(&synthetic_trace(detected), &s.ground_truth());
        assert_eq!(eval.sensor_transitions.len(), 2);
        assert_eq!(eval.sensor_transitions[0].condition, "S1");
        assert_eq!(
            eval.sensor_transitions[0].delay, None,
            "window was k=4 only"
        );
        assert_eq!(eval.sensor_transitions[1].condition, "S0");
        assert!((eval.sensor_transitions[1].delay.unwrap() - 0.1).abs() < 1e-12);
        assert!(eval.missed_transition());
        // An exact hit inside the one-iteration window is delay 0.
        let detected: Vec<(Vec<usize>, bool)> = (0..10)
            .map(|k| (if k == 4 { vec![0] } else { vec![] }, false))
            .collect();
        let eval = evaluate(&synthetic_trace(detected), &s.ground_truth());
        assert_eq!(eval.sensor_transitions[0].delay, Some(0.0));
        assert_eq!(eval.sensor_transitions[1].delay, Some(0.0));
    }

    /// `distinct_sequence` boundary semantics: runs shorter than
    /// `SEQUENCE_PERSISTENCE` are dropped mid-stream but kept at the
    /// very start and very end of the run, and adjacent kept runs with
    /// the same label collapse.
    #[test]
    fn distinct_sequence_keeps_short_runs_only_at_the_boundaries() {
        let label = |v: &i32| format!("V{v}");
        // Short head (1), short mid blip (1, dropped), long mid (3),
        // short tail (2, kept).
        let stream = [7, 0, 0, 0, 9, 0, 0, 0, 8, 8];
        assert_eq!(
            distinct_sequence(&stream, label),
            vec!["V7", "V0", "V8"],
            "head and tail blips kept, mid blip dropped"
        );
        // The dropped mid blip must not split the surrounding run: the
        // two V0 runs collapse into one entry.
        let stream = [0, 0, 0, 9, 0, 0, 0];
        assert_eq!(distinct_sequence(&stream, label), vec!["V0"]);
        // A stream shorter than the persistence is entirely boundary.
        let stream = [1, 2];
        assert_eq!(distinct_sequence(&stream, label), vec!["V1", "V2"]);
        let empty: [i32; 0] = [];
        assert!(distinct_sequence(&empty, label).is_empty());
    }

    #[test]
    fn recovery_transition_has_its_own_delay() {
        // Truth: sensor 2 misbehaves on k=3..6, then recovers.
        let s = Scenario::new(
            0,
            "r",
            "",
            vec![Misbehavior::new(
                "bias",
                Target::Sensor(2),
                Corruption::Bias(Vector::zeros(4)),
                3,
                Some(6),
            )],
            12,
        );
        // Detector lags each change by one step.
        let detected: Vec<(Vec<usize>, bool)> = (0..12)
            .map(|k| (if (4..7).contains(&k) { vec![2] } else { vec![] }, false))
            .collect();
        let eval = evaluate(&synthetic_trace(detected), &s.ground_truth());
        assert_eq!(eval.sensor_transitions.len(), 2);
        assert_eq!(eval.sensor_transitions[0].condition, "S3");
        assert!((eval.sensor_transitions[0].delay.unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(eval.sensor_transitions[1].condition, "S0");
        assert!((eval.sensor_transitions[1].delay.unwrap() - 0.1).abs() < 1e-12);
        // Recovery delays are excluded from the misbehavior delay mean.
        assert!((eval.sensor_delay().unwrap() - 0.1).abs() < 1e-12);
    }
}
