//! A plain extended Kalman filter over a [`RobotSystem`].
//!
//! Two purposes:
//!
//! * a downstream-usable estimator for users who want state estimation
//!   without the anomaly-detection machinery, and
//! * a validation target: with actuator-anomaly compensation disabled
//!   and every sensor in the reference set, one [`crate::nuise_step`]
//!   must reduce *exactly* to one EKF step (the unknown-input filter is
//!   the EKF plus the input-estimation layer). The test at the bottom of
//!   this module pins that equivalence to 1e-10.
//!
//! The EKF also illustrates, by contrast, what RoboADS adds: its
//! innovation χ² statistic can tell *that* something is inconsistent,
//! but it can neither identify which workflow misbehaves nor estimate
//! actuator anomalies (they are silently absorbed into the state).

use roboads_linalg::{Matrix, Vector};
use roboads_models::{wrap_angle, RobotSystem};

use crate::{CoreError, Result};

/// Output of one EKF step.
#[derive(Debug, Clone)]
pub struct EkfOutput {
    /// Innovation `z − h(x̂_{k|k−1})` (angular components wrapped).
    pub innovation: Vector,
    /// Innovation covariance `C P̄ Cᵀ + R`.
    pub innovation_covariance: Matrix,
    /// Normalized innovation statistic `νᵀ S⁻¹ ν` (χ²-distributed with
    /// `dim z` degrees of freedom when the model holds).
    pub statistic: f64,
}

/// Extended Kalman filter over a sensor subset of a [`RobotSystem`].
///
/// # Example
///
/// ```
/// use roboads_core::ekf::ExtendedKalmanFilter;
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let mut ekf = ExtendedKalmanFilter::new(system.clone(), vec![0, 2], x0.clone(), 1e-4)?;
///
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// let readings: Vec<_> = (0..3)
///     .map(|i| system.sensor(i).unwrap().measure(&x1))
///     .collect();
/// let out = ekf.step(&u, &readings)?;
/// assert!(out.statistic < 1e-9); // noiseless consistent data
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExtendedKalmanFilter {
    system: RobotSystem,
    sensors: Vec<usize>,
    state: Vector,
    covariance: Matrix,
}

impl ExtendedKalmanFilter {
    /// Creates a filter fusing the given sensors (suite indices, strictly
    /// increasing), starting at `x0` with covariance `p0·I`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty or out-of-range
    /// sensor list, a state of the wrong dimension, or a non-positive
    /// initial covariance.
    pub fn new(system: RobotSystem, sensors: Vec<usize>, x0: Vector, p0: f64) -> Result<Self> {
        if sensors.is_empty() || sensors.iter().any(|&s| s >= system.sensor_count()) {
            return Err(CoreError::InvalidConfig {
                name: "sensors",
                value: format!("{sensors:?}"),
            });
        }
        if x0.len() != system.state_dim() {
            return Err(CoreError::InvalidConfig {
                name: "x0",
                value: format!("length {}", x0.len()),
            });
        }
        if !(p0.is_finite() && p0 > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "p0",
                value: format!("{p0}"),
            });
        }
        let n = system.state_dim();
        Ok(ExtendedKalmanFilter {
            system,
            sensors,
            state: x0,
            covariance: Matrix::identity(n) * p0,
        })
    }

    /// Current state estimate.
    pub fn state(&self) -> &Vector {
        &self.state
    }

    /// Current state covariance.
    pub fn covariance(&self) -> &Matrix {
        &self.covariance
    }

    /// One predict-update cycle with the full suite's readings (only the
    /// configured subset is fused).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadReadings`] for a reading list that does
    /// not match the suite, and numeric errors from the update.
    pub fn step(&mut self, u: &Vector, readings: &[Vector]) -> Result<EkfOutput> {
        if readings.len() != self.system.sensor_count() {
            return Err(CoreError::BadReadings {
                reason: format!(
                    "expected {} readings, got {}",
                    self.system.sensor_count(),
                    readings.len()
                ),
            });
        }
        let dynamics = self.system.dynamics();
        // Predict.
        let a = dynamics.state_jacobian(&self.state, u);
        let x_pred = dynamics.step(&self.state, u);
        let p_pred =
            (&a.congruence(&self.covariance)? + self.system.process_noise()).symmetrized()?;

        // Update against the subset.
        let parts: Vec<&Vector> = self.sensors.iter().map(|&i| &readings[i]).collect();
        let z = Vector::concat_all(parts);
        let c = self.system.jacobian_subset(&self.sensors, &x_pred);
        let r = self.system.noise_subset(&self.sensors);
        let angular = self.system.angular_components_subset(&self.sensors);
        let mut nu = &z - &self.system.measure_subset(&self.sensors, &x_pred);
        for &i in &angular {
            nu[i] = wrap_angle(nu[i]);
        }
        let s = (&c.congruence(&p_pred)? + &r).symmetrized()?;
        let s_inv = s
            .inverse()
            .map_err(|_| CoreError::Numeric("innovation covariance is singular".into()))?;
        let gain = &(&p_pred * &c.transpose()) * &s_inv;
        let mut x_new = &x_pred + &(&gain * &nu);
        for &i in dynamics.angular_state_components() {
            x_new[i] = wrap_angle(x_new[i]);
        }
        // Joseph-form covariance update.
        let j = &Matrix::identity(self.system.state_dim()) - &(&gain * &c);
        let p_new = (&j.congruence(&p_pred)? + &gain.congruence(&r)?).symmetrized()?;

        let statistic = nu.quadratic_form(&s_inv)?;
        self.state = x_new;
        self.covariance = p_new;
        Ok(EkfOutput {
            innovation: nu,
            innovation_covariance: s,
            statistic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Linearization;
    use crate::mode::Mode;
    use crate::nuise::{nuise_step, NuiseInput};
    use roboads_models::presets;

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn tracks_noiseless_trajectory() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut ekf =
            ExtendedKalmanFilter::new(system.clone(), vec![0, 1, 2], x0.clone(), 1e-4).unwrap();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for _ in 0..50 {
            x_true = system.dynamics().step(&x_true, &u);
            ekf.step(&u, &clean_readings(&system, &x_true)).unwrap();
        }
        assert!((ekf.state() - &x_true).max_abs() < 1e-6);
        assert!(ekf.covariance().is_positive_semi_definite(1e-12).unwrap());
    }

    #[test]
    fn nuise_without_compensation_reduces_to_the_ekf() {
        // The pinning test described in the module docs.
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.7, 0.9, -0.4]);
        let p0 = 1e-4;
        let mut ekf =
            ExtendedKalmanFilter::new(system.clone(), vec![0, 1, 2], x0.clone(), p0).unwrap();

        let all_ref = Mode::new(vec![0, 1, 2], vec![]);
        let mut x_nuise = x0.clone();
        let mut p_nuise = Matrix::identity(3) * p0;
        let u = Vector::from_slice(&[0.07, 0.04]);
        let mut x_true = x0;
        for k in 0..20 {
            x_true = system.dynamics().step(&x_true, &u);
            // Offset readings a bit so the update actually moves things.
            let mut readings = clean_readings(&system, &x_true);
            readings[0][0] += 0.001 * (k as f64).sin();
            ekf.step(&u, &readings).unwrap();
            let out = nuise_step(NuiseInput {
                system: &system,
                mode: &all_ref,
                x_prev: &x_nuise,
                p_prev: &p_nuise,
                u_prev: &u,
                readings: &readings,
                linearization: &Linearization::PerIteration,
                compensate: false,
            })
            .unwrap();
            x_nuise = out.state_estimate;
            p_nuise = out.state_covariance;

            assert!(
                (&x_nuise - ekf.state()).max_abs() < 1e-10,
                "state diverged at k = {k}"
            );
            assert!(
                (&p_nuise - ekf.covariance()).max_abs() < 1e-10,
                "covariance diverged at k = {k}"
            );
        }
    }

    #[test]
    fn innovation_statistic_flags_inconsistency_without_identification() {
        // The EKF knows *that* something is off, not *what* — the gap
        // RoboADS fills.
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut ekf =
            ExtendedKalmanFilter::new(system.clone(), vec![0, 1, 2], x0.clone(), 1e-4).unwrap();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        let mut stats = Vec::new();
        for k in 0..30 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k >= 15 {
                readings[0][0] += 0.07;
            }
            stats.push(ekf.step(&u, &readings).unwrap().statistic);
        }
        assert!(stats[10] < 1.0);
        assert!(stats[15] > 50.0, "attack onset statistic {}", stats[15]);
    }

    #[test]
    fn construction_validation() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        assert!(ExtendedKalmanFilter::new(system.clone(), vec![], x0.clone(), 1e-4).is_err());
        assert!(ExtendedKalmanFilter::new(system.clone(), vec![9], x0.clone(), 1e-4).is_err());
        assert!(
            ExtendedKalmanFilter::new(system.clone(), vec![0], Vector::zeros(2), 1e-4).is_err()
        );
        assert!(ExtendedKalmanFilter::new(system, vec![0], x0, 0.0).is_err());
    }

    #[test]
    fn wrong_reading_count_rejected() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let mut ekf = ExtendedKalmanFilter::new(system, vec![0], x0, 1e-4).unwrap();
        let r = ekf.step(&Vector::zeros(2), &[Vector::zeros(3)]);
        assert!(matches!(r, Err(CoreError::BadReadings { .. })));
    }
}
