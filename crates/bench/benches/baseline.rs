//! §V-G — benchmark against the linearize-once baseline.
//!
//! The paper implements a representative linear-system detector
//! (\[20\]-style: the robot model is linearized exactly once, at the
//! initial state) and reports that on the Khepera scenarios it averages
//! **61.68 % false positives with no false negatives** — "the estimation
//! errors become larger as time goes by and finally lead to false
//! positives" — while RoboADS's per-iteration re-linearization stays
//! under a few percent.
//!
//! The degradation mechanism is heading excursion: an affine model built
//! at heading θ₀ mispredicts motion once the robot has turned away from
//! it. The comparison therefore drives the arena-perimeter loop (heading
//! sweeps the full circle, as the paper's maneuvering missions do); on a
//! near-straight path *any* linearization is trivially adequate and the
//! comparison would be vacuous.
//!
//! Run with: `cargo bench -p roboads-bench --bench baseline`

use roboads_bench::{parallel_map, sweep_threads};
use roboads_control::Path;
use roboads_core::RoboAdsConfig;
use roboads_sim::{Scenario, SimulationBuilder};
use roboads_stats::ConfusionCounts;

const SEEDS: [u64; 2] = [11, 23];
/// 60 s missions: long enough to take all four perimeter corners.
const DURATION: usize = 600;

/// Counter-clockwise perimeter loop: heading sweeps 2π.
fn perimeter_loop() -> Path {
    Path::new(vec![
        (0.5, 0.5),
        (3.5, 0.5),
        (3.5, 3.5),
        (0.5, 3.5),
        (0.5, 0.7),
    ])
    .expect("static waypoints")
}

fn run(scenario: &Scenario, seed: u64, baseline: bool) -> (ConfusionCounts, ConfusionCounts) {
    let outcome = SimulationBuilder::khepera()
        .scenario(scenario.clone())
        .config(RoboAdsConfig::paper_defaults())
        .path(perimeter_loop())
        .duration(DURATION)
        .seed(seed)
        .linearized_baseline(baseline)
        .run()
        .expect("scenario run");
    (outcome.eval.sensor_counts, outcome.eval.actuator_counts)
}

fn main() {
    println!(
        "{:<34} {:>16} {:>16} {:>16} {:>16}",
        "Scenario", "RoboADS FPR", "RoboADS FNR", "baseline FPR", "baseline FNR"
    );
    // The clean run plus the Table II single-attack scenarios.
    let mut scenarios = vec![Scenario::clean()];
    scenarios.extend(Scenario::all_khepera().into_iter().take(7));

    let rows = parallel_map(scenarios, sweep_threads(), |scenario| {
        let mut ours = ConfusionCounts::default();
        let mut theirs = ConfusionCounts::default();
        for &seed in &SEEDS {
            let (s, a) = run(&scenario, seed, false);
            ours.merge(&s);
            ours.merge(&a);
            let (s, a) = run(&scenario, seed, true);
            theirs.merge(&s);
            theirs.merge(&a);
        }
        (scenario.name().to_string(), ours, theirs)
    });

    let mut ours_total = ConfusionCounts::default();
    let mut theirs_total = ConfusionCounts::default();
    for (name, ours, theirs) in &rows {
        println!(
            "{:<34} {:>15.2}% {:>15.2}% {:>15.2}% {:>15.2}%",
            name,
            ours.false_positive_rate() * 100.0,
            ours.false_negative_rate() * 100.0,
            theirs.false_positive_rate() * 100.0,
            theirs.false_negative_rate() * 100.0,
        );
        ours_total.merge(ours);
        theirs_total.merge(theirs);
    }
    println!(
        "\naverages — RoboADS: FPR {:.2}% FNR {:.2}%;  linearize-once baseline: FPR {:.2}% FNR {:.2}%",
        ours_total.false_positive_rate() * 100.0,
        ours_total.false_negative_rate() * 100.0,
        theirs_total.false_positive_rate() * 100.0,
        theirs_total.false_negative_rate() * 100.0,
    );
    println!("(paper §V-G: baseline averages 61.68 % FPR with no false negatives)");
    println!(
        "claim check: baseline FPR {:.2}% >> RoboADS FPR {:.2}% -> {}",
        theirs_total.false_positive_rate() * 100.0,
        ours_total.false_positive_rate() * 100.0,
        if theirs_total.false_positive_rate() > 10.0 * ours_total.false_positive_rate().max(1e-4) {
            "holds"
        } else {
            "VIOLATED"
        }
    );
}
