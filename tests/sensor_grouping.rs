//! §VI "Sensor capabilities" and "Mode set selection": partial-state
//! sensors must be grouped before they can serve as references, and the
//! mode-set validators must explain exactly why a degenerate set fails.

use std::sync::Arc;

use roboads::core::{CoreError, ModeSet, RoboAds, RoboAdsConfig};
use roboads::linalg::{Matrix, Vector};
use roboads::models::dynamics::Unicycle;
use roboads::models::sensors::{Gps, Ips, Magnetometer, SensorModel};
use roboads::models::{observability, DynamicsModel, RobotSystem};

fn partial_sensor_system() -> RobotSystem {
    let dynamics: Arc<dyn DynamicsModel> = Arc::new(Unicycle::new(0.1).unwrap());
    let gps: Arc<dyn SensorModel> = Arc::new(Gps::new(0.05).unwrap());
    let mag: Arc<dyn SensorModel> = Arc::new(Magnetometer::new(0.01).unwrap());
    let ips: Arc<dyn SensorModel> = Arc::new(Ips::new(0.01, 0.01).unwrap());
    RobotSystem::new(
        dynamics,
        Matrix::from_diagonal(&[1e-5, 1e-5, 1e-5]),
        vec![gps, mag, ips],
    )
    .unwrap()
}

#[test]
fn magnetometer_alone_fails_observability_validation() {
    let system = partial_sensor_system();
    let x0 = Vector::from_slice(&[0.0, 0.0, 0.0]);
    // Mode set where the magnetometer (index 1) stands alone.
    let set = ModeSet::from_reference_groups(&system, &[vec![1]]);
    let err = RoboAds::new(system, RoboAdsConfig::paper_defaults(), x0, set).unwrap_err();
    match err {
        CoreError::DegenerateMode { reason, .. } => {
            assert!(
                reason.contains("cannot reconstruct the state"),
                "unexpected reason: {reason}"
            );
        }
        other => panic!("expected DegenerateMode, got {other}"),
    }
}

#[test]
fn grouping_restores_observability() {
    let system = partial_sensor_system();
    let x = Vector::from_slice(&[0.0, 0.0, 0.0]);
    let u = Vector::from_slice(&[0.1, 0.1]);
    assert!(!observability::is_observable(&system, &[1], &x, &u).unwrap());
    assert!(observability::is_observable(&system, &[0, 1], &x, &u).unwrap());

    // A grouped set where every reference includes a full-state or
    // complementary pair validates and builds a working detector.
    let set = ModeSet::from_reference_groups(&system, &[vec![0, 1], vec![2]]);
    let x0 = Vector::from_slice(&[0.0, 0.0, 0.0]);
    assert!(RoboAds::new(system, RoboAdsConfig::paper_defaults(), x0, set).is_ok());
}

#[test]
fn grouped_detector_identifies_a_spoofed_full_state_sensor() {
    let system = partial_sensor_system();
    let x0 = Vector::from_slice(&[0.0, 0.0, 0.3]);
    let set = ModeSet::from_reference_groups(&system, &[vec![0, 1], vec![2]]);
    let mut ads = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0.clone(),
        set,
    )
    .unwrap();

    let u = Vector::from_slice(&[0.2, 0.1]);
    let mut x_true = x0;
    let mut identified = None;
    for k in 0..60 {
        x_true = system.dynamics().step(&x_true, &u);
        let mut readings: Vec<Vector> = (0..3)
            .map(|i| system.sensor(i).unwrap().measure(&x_true))
            .collect();
        if k >= 30 {
            readings[2][0] += 0.4; // spoof the IPS (index 2)
        }
        let report = ads.step(&u, &readings).unwrap();
        if report.misbehaving_sensors == vec![2] && identified.is_none() {
            identified = Some(k);
        }
    }
    let k = identified.expect("spoofed IPS identified");
    assert!(k < 36, "identification too slow: k = {k}");
}

#[test]
fn mode_count_growth_matches_section_vi() {
    // Default: M = p (linear); complete: 2^p − 1 (exponential).
    let system = partial_sensor_system();
    assert_eq!(ModeSet::one_reference_per_sensor(&system).len(), 3);
    assert_eq!(ModeSet::complete(&system).len(), 7);
}
