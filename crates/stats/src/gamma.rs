//! Log-gamma and regularized incomplete gamma functions.
//!
//! These are the numerical backbone of the χ² distribution used by the
//! RoboADS decision maker. The implementations follow the classical
//! series / continued-fraction split (Numerical Recipes §6.2) with a
//! Lanczos approximation for `ln Γ`.

use crate::{Result, StatsError};

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to
/// ~15 significant digits over the positive reals.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `x ≤ 0` or non-finite `x`.
///
/// ```
/// use roboads_stats::gamma::ln_gamma;
///
/// // Γ(5) = 24.
/// assert!((ln_gamma(5.0).unwrap() - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() || x <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: format!("{x}"),
        });
    }
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    const SQRT_TWO_PI: f64 = 2.506_628_274_631_000_5;

    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return Ok((pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)?);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + G + 0.5;
    Ok(SQRT_TWO_PI.ln() + (x + 0.5) * t.ln() - t + acc.ln())
}

/// Maximum iterations for the series and continued-fraction expansions.
const MAX_ITER: usize = 400;

/// Convergence tolerance for the expansions.
const EPS: f64 = 1e-14;

/// Regularized lower incomplete gamma function `P(s, x) = γ(s, x) / Γ(s)`.
///
/// `P(k/2, x/2)` is exactly the cdf of the χ² distribution with `k`
/// degrees of freedom.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `s ≤ 0` or `x < 0`, and
/// [`StatsError::NoConvergence`] if the expansion stalls (not reachable
/// for finite arguments in practice).
///
/// ```
/// use roboads_stats::gamma::regularized_lower_gamma;
///
/// // P(1, x) = 1 − e^{−x}.
/// let p = regularized_lower_gamma(1.0, 2.0).unwrap();
/// assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
/// ```
pub fn regularized_lower_gamma(s: f64, x: f64) -> Result<f64> {
    if !s.is_finite() || s <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "s",
            value: format!("{s}"),
        });
    }
    if !x.is_finite() || x < 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: format!("{x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < s + 1.0 {
        lower_gamma_series(s, x)
    } else {
        Ok(1.0 - upper_gamma_continued_fraction(s, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(s, x) = 1 − P(s, x)`.
///
/// # Errors
///
/// Same domain as [`regularized_lower_gamma`].
pub fn regularized_upper_gamma(s: f64, x: f64) -> Result<f64> {
    Ok(1.0 - regularized_lower_gamma(s, x)?)
}

/// Series expansion of `P(s, x)`, effective for `x < s + 1`.
fn lower_gamma_series(s: f64, x: f64) -> Result<f64> {
    let ln_g = ln_gamma(s)?;
    let mut ap = s;
    let mut sum = 1.0 / s;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            return Ok(sum * (s * x.ln() - x - ln_g).exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "lower_gamma_series",
    })
}

/// Continued-fraction expansion of `Q(s, x)` via modified Lentz, effective
/// for `x ≥ s + 1`.
fn upper_gamma_continued_fraction(s: f64, x: f64) -> Result<f64> {
    let ln_g = ln_gamma(s)?;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            return Ok((s * x.ln() - x - ln_g).exp() * h);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "upper_gamma_continued_fraction",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let factorials = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in factorials.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64).unwrap();
            assert!(
                (lg - f64::ln(f)).abs() < 1e-11,
                "ln_gamma({}) = {lg}, expected ln({f})",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let lg = ln_gamma(0.5).unwrap();
        assert!((lg - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        let lg = ln_gamma(1.5).unwrap();
        assert!((lg - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x).
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            let lhs = ln_gamma(x + 1.0).unwrap();
            let rhs = x.ln() + ln_gamma(x).unwrap();
            assert!((lhs - rhs).abs() < 1e-11, "recurrence failed at {x}");
        }
    }

    #[test]
    fn ln_gamma_rejects_non_positive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(regularized_lower_gamma(2.0, 0.0).unwrap(), 0.0);
        // P(s, ∞) → 1: very large x.
        assert!((regularized_lower_gamma(2.0, 1e3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − exp(−x), both in series and continued-fraction range.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            let p = regularized_lower_gamma(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn lower_and_upper_sum_to_one() {
        for &s in &[0.5, 1.5, 3.0, 7.5] {
            for &x in &[0.2, 1.0, 4.0, 12.0] {
                let p = regularized_lower_gamma(s, x).unwrap();
                let q = regularized_upper_gamma(s, x).unwrap();
                assert!((p + q - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn incomplete_gamma_monotone_in_x() {
        let s = 2.5;
        let mut prev = 0.0;
        for i in 1..50 {
            let x = i as f64 * 0.3;
            let p = regularized_lower_gamma(s, x).unwrap();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn incomplete_gamma_rejects_bad_domain() {
        assert!(regularized_lower_gamma(-1.0, 1.0).is_err());
        assert!(regularized_lower_gamma(1.0, -0.5).is_err());
    }
}
