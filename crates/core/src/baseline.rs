//! The linearize-once baseline detector of §V-G.
//!
//! The paper benchmarks RoboADS against "a representative work \[20\]
//! where a robot is linearized only once at the beginning. Because of
//! the inaccurate modeling, the estimation errors become larger as time
//! goes by and finally lead to false positives" — an average false
//! positive rate of 61.68 % across the Khepera scenarios, with no false
//! negatives.
//!
//! [`LinearizedOnceDetector`] reproduces that comparator: the identical
//! multi-mode pipeline, but with the kinematic and measurement models
//! replaced by their affine expansions at the initial operating point
//! (see [`crate::Linearization::FrozenAt`]). The `baseline` benchmark
//! harness regenerates the comparison.

use roboads_linalg::Vector;
use roboads_models::RobotSystem;

use crate::config::{Linearization, RoboAdsConfig};
use crate::detector::RoboAds;
use crate::mode::ModeSet;
use crate::report::DetectionReport;
use crate::Result;

/// A RoboADS-shaped detector whose model is linearized exactly once, at
/// the initial state — the §V-G comparison baseline.
///
/// # Example
///
/// ```
/// use roboads_core::baseline::LinearizedOnceDetector;
/// use roboads_core::{ModeSet, RoboAdsConfig};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let mut baseline = LinearizedOnceDetector::new(
///     system.clone(),
///     RoboAdsConfig::paper_defaults(),
///     x0,
///     ModeSet::one_reference_per_sensor(&system),
/// )?;
/// assert_eq!(baseline.inner().modes().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearizedOnceDetector {
    inner: RoboAds,
}

impl LinearizedOnceDetector {
    /// Builds the baseline, freezing the linearization at
    /// `initial_state` with a gentle forward nominal input (0.1 per
    /// channel — the same operating point mode validation uses).
    ///
    /// # Errors
    ///
    /// Same as [`RoboAds::new`].
    pub fn new(
        system: RobotSystem,
        mut config: RoboAdsConfig,
        initial_state: Vector,
        modes: ModeSet,
    ) -> Result<Self> {
        let nominal_input = Vector::from_fn(system.input_dim(), |_| 0.1);
        config.linearization = Linearization::FrozenAt {
            state: initial_state.clone(),
            input: nominal_input,
        };
        Ok(LinearizedOnceDetector {
            inner: RoboAds::new(system, config, initial_state, modes)?,
        })
    }

    /// One control iteration; same contract as [`RoboAds::step`].
    ///
    /// # Errors
    ///
    /// Same as [`RoboAds::step`].
    pub fn step(&mut self, u_prev: &Vector, readings: &[Vector]) -> Result<DetectionReport> {
        self.inner.step(u_prev, readings)
    }

    /// The wrapped detector (for accessors).
    pub fn inner(&self) -> &RoboAds {
        &self.inner
    }

    /// Extracts the wrapped detector.
    pub fn into_inner(self) -> RoboAds {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    /// The §V-G claim in miniature: on a clean curved trajectory the
    /// linearize-once baseline raises false sensor alarms while RoboADS
    /// stays silent.
    #[test]
    fn baseline_false_positives_on_curved_clean_trajectory() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[1.0, 1.0, 0.0]);
        let modes = ModeSet::one_reference_per_sensor(&system);
        let mut baseline = LinearizedOnceDetector::new(
            system.clone(),
            RoboAdsConfig::paper_defaults(),
            x0.clone(),
            modes.clone(),
        )
        .unwrap();
        let mut roboads = RoboAds::new(
            system.clone(),
            RoboAdsConfig::paper_defaults(),
            x0.clone(),
            modes,
        )
        .unwrap();

        // Constant turn: the true heading leaves the linearization point.
        let u = Vector::from_slice(&[0.03, 0.09]);
        let mut x_true = x0;
        let mut baseline_alarms = 0;
        let mut roboads_alarms = 0;
        for _ in 0..80 {
            x_true = system.dynamics().step(&x_true, &u);
            let readings = clean_readings(&system, &x_true);
            if baseline.step(&u, &readings).unwrap().sensor_alarm {
                baseline_alarms += 1;
            }
            if roboads.step(&u, &readings).unwrap().sensor_alarm {
                roboads_alarms += 1;
            }
        }
        assert_eq!(roboads_alarms, 0, "RoboADS must stay silent on clean data");
        assert!(
            baseline_alarms > 10,
            "linearize-once baseline should accumulate false positives, got {baseline_alarms}"
        );
    }

    #[test]
    fn accessors_and_into_inner() {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let baseline = LinearizedOnceDetector::new(
            system.clone(),
            RoboAdsConfig::paper_defaults(),
            x0,
            ModeSet::one_reference_per_sensor(&system),
        )
        .unwrap();
        assert_eq!(baseline.inner().iteration(), 0);
        let inner = baseline.into_inner();
        assert_eq!(inner.modes().len(), 3);
    }
}
