#!/usr/bin/env bash
# Tier-1 verification gate: the workspace must build and test with NO
# registry/network access (see DESIGN.md §9). `--offline` makes a
# dependency regression fail here exactly as it would in the offline
# environment.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release (offline) =="
cargo build --release --offline

echo "== tier1: cargo test -q (offline) =="
cargo test -q --offline

echo "== tier1: OK =="
