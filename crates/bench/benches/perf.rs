//! Performance benches: RoboADS must run inside the planner in real
//! time, i.e. one full detection iteration well under the 100 ms
//! control period — and the paper notes the mode count grows linearly
//! with the sensor count for the default mode set versus exponentially
//! for the complete set (§VI).
//!
//! Timing is a plain `std::time::Instant` harness (median of repeated
//! batches; no external crates so the tier-1 build resolves offline).
//! Besides the hot-path numbers this bench measures:
//!
//! * the *allocation-free* NUISE path (`nuise_step_into` with a warm
//!   [`NuiseWorkspace`]) against the allocating reference,
//! * multi-thread *scaling* of the complete 7-mode Khepera bank at
//!   1/2/4 fan-out workers (bitwise-identical outputs; see
//!   `DESIGN.md`, threading model),
//! * the *telemetry overhead*: a detector step with the default
//!   disabled sink versus one streaming spans into a
//!   `RingBufferSink`, with an acceptance budget of 5 % on the
//!   disabled path relative to the seed's uninstrumented engine
//!   (approximated here by the disabled-vs-enabled split).
//!
//! Results are also written to `BENCH_perf.json` at the workspace root
//! so CI can archive them. Set `ROBOADS_BENCH_FAST=1` for a smoke run
//! with reduced batch counts (used by the CI perf smoke job).
//!
//! Run with: `cargo bench -p roboads-bench --bench perf`

use std::sync::Arc;
use std::time::Instant;

use roboads_core::obs::{json::JsonObject, RingBufferSink, Telemetry};
use roboads_core::{
    nuise_step, nuise_step_into, ActivationPolicy, DetectionReport, FleetEngine, FleetIngest,
    Linearization, Mode, ModeSet, MultiModeEngine, NuiseInput, NuiseWorkspace, RecorderConfig,
    RoboAds, RoboAdsConfig, RobotFactory, RobotInput, ShardConfig, ShardedFleet,
};
use roboads_linalg::{Matrix, Vector};
use roboads_models::presets;
use roboads_sim::{Scenario, SimulationBuilder};

/// Median per-call time in seconds: `batches` batches of `per_batch`
/// calls each, timed per batch (amortizes the clock reads).
fn time_median<F: FnMut()>(batches: usize, per_batch: usize, mut f: F) -> f64 {
    // Warm-up batch.
    for _ in 0..per_batch {
        f();
    }
    let mut samples: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_batch {
                f();
            }
            start.elapsed().as_secs_f64() / per_batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn report(name: &str, seconds: f64) {
    println!("{name:<44} {:>10.1} µs", seconds * 1e6);
}

fn fast_mode() -> bool {
    std::env::var_os("ROBOADS_BENCH_FAST").is_some_and(|v| v != "0")
}

fn clean_readings(system: &roboads_models::RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

/// `(requested, effective)` thread widths for the scaling sections.
/// Requests beyond the host's available parallelism are clamped: timing
/// a 4-worker pool on a 1-core CI container measures pure
/// oversubscription, which says nothing about the code and doubles the
/// bench's wall time. The emitted rows keep the requested width and
/// carry a `clamped` mark so archived results from different hosts stay
/// comparable.
fn clamped_thread_grid() -> Vec<(usize, usize)> {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    [1usize, 2, 4]
        .into_iter()
        .map(|r| (r, r.min(avail)))
        .collect()
}

/// Suffix marking a clamped row in the console table.
fn clamp_mark(requested: usize, effective: usize) -> String {
    if effective < requested {
        format!(" (clamped to {effective})")
    } else {
        String::new()
    }
}

/// Returns `(allocating µs, workspace µs)` for a single NUISE step.
fn bench_nuise(fast: bool) -> (f64, f64) {
    let system = presets::khepera_system();
    let mode = Mode::new(vec![0], vec![1, 2]);
    let x = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let p = Matrix::identity(3) * 1e-4;
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x, &u);
    let readings = clean_readings(&system, &x1);
    let lin = Linearization::PerIteration;
    let input = NuiseInput {
        system: &system,
        mode: &mode,
        x_prev: &x,
        p_prev: &p,
        u_prev: &u,
        readings: &readings,
        linearization: &lin,
        compensate: true,
    };
    let (batches, per_batch) = if fast { (5, 10) } else { (30, 50) };

    let alloc = time_median(batches, per_batch, || {
        nuise_step(input).unwrap();
    });
    report("nuise_step/khepera_single_mode", alloc);

    let mut ws = NuiseWorkspace::new(&system, &mode);
    let mut out = ws.new_output();
    let workspace = time_median(batches, per_batch, || {
        nuise_step_into(input, &mut ws, &mut out).unwrap();
    });
    report("nuise_step_into/khepera_single_mode", workspace);
    (alloc, workspace)
}

/// Returns `(disabled µs, ring-sink µs, overhead %)`.
///
/// Each timing window covers 256 steps (32 in fast mode) — the same
/// robot-steps-per-window as the `fleet_throughput` samples. Short
/// windows can land between scheduler ticks while multi-millisecond
/// ones cannot, so unequal window lengths would bias any comparison
/// between this number and the fleet's per-robot cost.
///
/// The two legs run *interleaved*, one batch of each alternately:
/// the overhead ratio is a few percent, far below the minute-scale
/// speed drift of a shared host, so back-to-back whole-leg timing
/// (the ingest/recorder sections' layout) is not enough here — the
/// drift must cancel per batch pair, not per section.
fn bench_detector_and_overhead(fast: bool) -> (f64, f64, f64) {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let mut noop = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
    let ring = Arc::new(RingBufferSink::new(4096));
    let mut live = RoboAds::with_defaults(system.clone(), x0).unwrap();
    live.set_telemetry(Telemetry::new(ring));
    let (batches, per_batch) = if fast { (15, 32) } else { (30, 256) };
    // Warm-up batch for both detectors.
    for _ in 0..per_batch {
        noop.step(&u, &readings).unwrap();
        live.step(&u, &readings).unwrap();
    }
    let mut noop_samples = Vec::with_capacity(batches);
    let mut live_samples = Vec::with_capacity(batches);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            noop.step(&u, &readings).unwrap();
        }
        noop_samples.push(start.elapsed().as_secs_f64() / per_batch as f64);
        let start = Instant::now();
        for _ in 0..per_batch {
            live.step(&u, &readings).unwrap();
        }
        live_samples.push(start.elapsed().as_secs_f64() / per_batch as f64);
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let disabled = median(&mut noop_samples);
    let enabled = median(&mut live_samples);
    report("detector_step/default_modes_3 (noop sink)", disabled);
    report("detector_step/default_modes_3 (ring sink)", enabled);
    let overhead = (enabled - disabled) / disabled * 100.0;
    println!(
        "{:<44} {:>9.2} %  (budget: enabled instrumentation; the default\n{:>60}",
        "telemetry overhead (ring vs noop)",
        overhead,
        "noop path itself must stay within 5 % of uninstrumented)"
    );
    (disabled, enabled, overhead)
}

/// Steps the complete 7-mode Khepera bank at 1/2/4 fan-out workers and
/// returns `(threads, step seconds)` rows. The parallel runs produce
/// bitwise-identical outputs to the sequential one (enforced by
/// `roboads-core`'s determinism suite), so this measures pure schedule
/// overhead vs. win.
///
/// These rows are **intra-step (dispatch-bound)**: the unit of parallel
/// work is one ~2 µs mode step, so pool dispatch (~tens of µs) dominates
/// and speedups sit below 1.0 on small banks — especially on single-core
/// CI containers (see `available_parallelism` in `BENCH_perf.json`).
/// Robot-grain batching (the `fleet_throughput` section) is the shape
/// that scales; this section exists to keep the contrast measured.
fn bench_scaling(fast: bool) -> Vec<ScalingRow> {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let (batches, per_batch) = if fast { (5, 5) } else { (30, 20) };
    let mut rows: Vec<ScalingRow> = Vec::new();
    for (requested, effective) in clamped_thread_grid() {
        // A clamped request repeats an already-measured width; reuse the
        // sample instead of re-timing the identical configuration.
        let seconds = match rows.iter().find(|r| r.effective == effective) {
            Some(prior) => prior.seconds,
            None => {
                let mut engine = MultiModeEngine::new(
                    system.clone(),
                    ModeSet::complete(&system),
                    x0.clone(),
                    &RoboAdsConfig::paper_defaults().with_threads(effective),
                )
                .unwrap();
                assert_eq!(engine.threads(), effective);
                time_median(batches, per_batch, || {
                    engine.step(&u, &readings).unwrap();
                })
            }
        };
        report(
            &format!(
                "intra-step (dispatch-bound) threads={requested}{}",
                clamp_mark(requested, effective)
            ),
            seconds,
        );
        rows.push(ScalingRow {
            requested,
            effective,
            seconds,
        });
    }
    let sequential = rows[0].seconds;
    for row in rows.iter().skip(1) {
        println!(
            "{:<44} {:>9.2} x",
            format!(
                "intra-step (dispatch-bound) speedup threads={}{}",
                row.requested,
                clamp_mark(row.requested, row.effective)
            ),
            sequential / row.seconds
        );
    }
    rows
}

/// One intra-step scaling sample (`requested` is what the table is
/// keyed by; `effective` is what actually ran after host clamping).
struct ScalingRow {
    requested: usize,
    effective: usize,
    seconds: f64,
}

/// One fleet-throughput sample.
struct FleetRow {
    robots: usize,
    requested: usize,
    effective: usize,
    seconds: f64,
}

/// One slab-vs-scalar fleet sample at a fixed robot count, 1 thread.
struct SlabRow {
    robots: usize,
    lanes: usize,
    seconds: f64,
    /// Per-robot-step speedup over the scalar (`lanes = 1`) row of the
    /// same run — the batching win of the SoA kernels alone.
    speedup_vs_scalar: f64,
}

/// One heterogeneous-fleet sample: a fleet *shape* (how robots are
/// spread across model-signature groups) at a fixed robot count,
/// 8 lanes, 1 thread.
struct SlabGroupRow {
    /// Fleet shape: `all_scalar`, `homogeneous`, `two_group` or
    /// `odd_one_out`.
    label: &'static str,
    robots: usize,
    /// Distinct model signatures in the fleet.
    groups: usize,
    seconds: f64,
    /// Per-robot-step speedup over the `all_scalar` leg of the same
    /// run.
    speedup_vs_scalar: f64,
}

/// Fleet throughput: N warm detectors stepped through one
/// `FleetEngine::step_batch` per tick, at robot grain. Returns
/// `(robots, threads, per-robot-step seconds)` rows. Unlike the
/// intra-step section above, the unit of parallel work here is a whole
/// ~30 µs detector step × `robots/threads`, so dispatch amortizes to
/// noise and the per-robot-step cost stays at the standalone
/// `detector_step` cost even at 1 thread.
fn bench_fleet_throughput(fast: bool) -> Vec<FleetRow> {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let robot_counts: &[usize] = if fast { &[1, 8, 64] } else { &[1, 8, 64, 256] };
    let mut rows: Vec<FleetRow> = Vec::new();
    for &robots in robot_counts {
        for (requested, effective) in clamped_thread_grid() {
            let seconds = match rows
                .iter()
                .find(|r| r.robots == robots && r.effective == effective)
            {
                Some(prior) => prior.seconds,
                None => {
                    let mut fleet = FleetEngine::new(
                        (0..robots)
                            .map(|_| RoboAds::with_defaults(system.clone(), x0.clone()).unwrap())
                            .collect(),
                        effective,
                    );
                    let inputs: Vec<RobotInput> = (0..robots)
                        .map(|_| RobotInput {
                            u_prev: &u,
                            readings: &readings,
                        })
                        .collect();
                    // Keep total robot-steps per sample roughly constant
                    // across fleet sizes so large fleets don't blow up
                    // wall time.
                    let per_batch = (if fast { 32 } else { 256 } / robots).max(1);
                    let batches = if fast { 3 } else { 10 };
                    let t_batch = time_median(batches, per_batch, || {
                        fleet.step_batch(&inputs).unwrap();
                    });
                    t_batch / robots as f64
                }
            };
            report(
                &format!(
                    "fleet_step/robots={robots} threads={requested}{}",
                    clamp_mark(requested, effective)
                ),
                seconds,
            );
            rows.push(FleetRow {
                robots,
                requested,
                effective,
                seconds,
            });
        }
    }
    for row in &rows {
        if row.requested == 1 && row.robots > 1 {
            println!(
                "{:<44} {:>9.0} robot-steps/s",
                format!("fleet throughput robots={} threads=1", row.robots),
                1.0 / row.seconds
            );
        }
    }
    rows
}

/// One async-ingestion overhead sample: the same fleet tick driven
/// directly (`step_batch`) and through the [`FleetIngest`] front-end
/// (per-frame offers + tick-boundary swap + masked step), back to back.
struct IngestRow {
    robots: usize,
    direct_seconds: f64,
    ingest_seconds: f64,
    /// Per-robot-step cost added by the front-end, percent.
    overhead_pct: f64,
}

/// Ingest throughput: what the double-buffered front-end costs on top
/// of a direct dense batch. Each tick pays `robots × (sensors + 1)`
/// buffer copies plus one pointer-swap pass; both legs run in the same
/// function back to back so host drift cancels out of the overhead
/// ratio.
fn bench_ingest_throughput(fast: bool) -> Vec<IngestRow> {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let robot_counts: &[usize] = if fast { &[64] } else { &[8, 64] };
    let mut rows = Vec::new();
    for &robots in robot_counts {
        let new_fleet = || {
            FleetEngine::new(
                (0..robots)
                    .map(|_| RoboAds::with_defaults(system.clone(), x0.clone()).unwrap())
                    .collect(),
                1,
            )
        };
        let per_batch = (if fast { 32 } else { 256 } / robots).max(1);
        let batches = if fast { 3 } else { 10 };

        let mut direct = new_fleet();
        let inputs: Vec<RobotInput> = (0..robots)
            .map(|_| RobotInput {
                u_prev: &u,
                readings: &readings,
            })
            .collect();
        let direct_seconds = time_median(batches, per_batch, || {
            direct.step_batch(&inputs).unwrap();
        }) / robots as f64;

        let mut fleet = new_fleet();
        let mut ingest = FleetIngest::for_fleet(&fleet);
        let ingest_seconds = time_median(batches, per_batch, || {
            for robot in 0..robots {
                ingest.offer_input(robot, &u).unwrap();
                for (s, reading) in readings.iter().enumerate() {
                    ingest.offer(robot, s, reading).unwrap();
                }
            }
            ingest.step(&mut fleet).unwrap();
        }) / robots as f64;

        let overhead_pct = (ingest_seconds / direct_seconds - 1.0) * 100.0;
        report(
            &format!("ingest_step/robots={robots} threads=1"),
            ingest_seconds,
        );
        println!(
            "{:<44} {:>9.2} %",
            format!("ingest overhead robots={robots} vs direct"),
            overhead_pct
        );
        rows.push(IngestRow {
            robots,
            direct_seconds,
            ingest_seconds,
            overhead_pct,
        });
    }
    rows
}

/// One sharded-fleet throughput sample: 64 robots hash-partitioned over
/// `requested` shards (each shard stepped on its own worker), driven
/// through the stamped-offer front door with journaling and periodic
/// snapshots on — the full service-path cost.
struct ShardRow {
    robots: usize,
    requested: usize,
    effective: usize,
    /// Per-robot-step seconds through the sharded service path.
    seconds: f64,
    /// Cost added over the plain `FleetIngest`-driven engine, percent
    /// (the shard layer's routing + journal + snapshot amortization).
    overhead_vs_engine_pct: f64,
}

/// One crash-recovery sample: rebuilding a killed 64-robot shard from
/// its last snapshot plus a stamped-frame journal replay.
struct ShardRecoveryRow {
    robots: usize,
    backlog_ticks: usize,
    /// Wall-clock cost of the live stepping that produced the backlog.
    live_seconds: f64,
    /// Wall-clock cost of `recover_shard` (twin rebuild + snapshot
    /// restore + journal replay + catch-up).
    recovery_seconds: f64,
    /// `recovery_seconds / live_seconds` — recovery replays the same
    /// detector work the live run did, so this ratio is host-speed
    /// independent.
    ratio: f64,
}

/// Recovery may cost at most this multiple of the live stepping it
/// replays (the slack covers the 64 factory constructions and the
/// snapshot decode on top of the replayed detector work).
const SHARD_RECOVERY_BUDGET_RATIO: f64 = 3.0;

/// Shard-layer overhead budget at 1 shard, percent: the service path
/// (routing + journal + periodic snapshots) on top of the plain
/// ingest-driven engine it wraps.
const SHARD_OVERHEAD_BUDGET_PCT: f64 = 10.0;

/// Sharded-fleet service throughput and crash recovery. The baseline
/// (a plain `FleetIngest`-driven engine doing the identical per-frame
/// offers) runs back to back with the shard legs so host drift cancels
/// out of the overhead ratio; the recovery ratio is self-normalizing
/// by construction.
fn bench_shard_scaling(fast: bool) -> (Vec<ShardRow>, ShardRecoveryRow) {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let robots = 64usize;
    let factory: RobotFactory = {
        let system = system.clone();
        let x0 = x0.clone();
        Arc::new(move |_id| RoboAds::with_defaults(system.clone(), x0.clone()))
    };
    let ids: Vec<u64> = (0..robots as u64).collect();
    // One call = one fleet tick; windows span several ticks.
    let (batches, per_batch) = if fast { (3, 4) } else { (10, 16) };

    // Baseline: the same stamped frame-by-frame offers through a plain
    // engine + ingest pair, no shard layer.
    let mut engine = FleetEngine::new((0..robots).map(|i| factory(i as u64).unwrap()).collect(), 1);
    let mut ingest = FleetIngest::for_fleet(&engine);
    let baseline = time_median(batches, per_batch, || {
        let k = ingest.tick();
        for robot in 0..robots {
            ingest.offer_input_stamped(robot, &u, k).unwrap();
            for (s, reading) in readings.iter().enumerate() {
                ingest.offer_stamped(robot, s, reading, k).unwrap();
            }
        }
        ingest.step(&mut engine).unwrap();
    }) / robots as f64;
    report(
        &format!("shard_service/robots={robots} engine baseline"),
        baseline,
    );

    let mut rows: Vec<ShardRow> = Vec::new();
    for (requested, effective) in clamped_thread_grid() {
        let seconds = match rows.iter().find(|r| r.effective == effective) {
            Some(prior) => prior.seconds,
            None => {
                let mut fleet = ShardedFleet::new(
                    &ids,
                    factory.clone(),
                    ShardConfig {
                        shards: effective,
                        threads_per_shard: 1,
                        snapshot_period: 64,
                        steal_margin: 0,
                    },
                )
                .unwrap();
                time_median(batches, per_batch, || {
                    let k = fleet.tick();
                    for &id in &ids {
                        fleet.offer_input(id, &u, k).unwrap();
                        for (s, reading) in readings.iter().enumerate() {
                            fleet.offer(id, s, reading, k).unwrap();
                        }
                    }
                    fleet.step().unwrap();
                }) / robots as f64
            }
        };
        let overhead_vs_engine_pct = (seconds / baseline - 1.0) * 100.0;
        report(
            &format!(
                "shard_service/robots={robots} shards={requested}{}",
                clamp_mark(requested, effective)
            ),
            seconds,
        );
        println!(
            "{:<44} {:>9.2} %",
            format!(
                "shard overhead shards={requested}{} vs engine",
                clamp_mark(requested, effective)
            ),
            overhead_vs_engine_pct
        );
        rows.push(ShardRow {
            robots,
            requested,
            effective,
            seconds,
            overhead_vs_engine_pct,
        });
    }

    // Crash recovery: snapshot a 64-robot single-shard fleet, march 100
    // ticks of journal backlog, kill and recover, and compare the
    // recovery wall time with the live stepping it replays.
    let backlog_ticks = 100usize;
    let mut fleet = ShardedFleet::new(
        &ids,
        factory.clone(),
        ShardConfig {
            shards: 1,
            threads_per_shard: 1,
            snapshot_period: 0, // manual snapshots: fix the backlog exactly
            steal_margin: 0,
        },
    )
    .unwrap();
    let tick = |fleet: &mut ShardedFleet| {
        let k = fleet.tick();
        for &id in &ids {
            fleet.offer_input(id, &u, k).unwrap();
            for (s, reading) in readings.iter().enumerate() {
                fleet.offer(id, s, reading, k).unwrap();
            }
        }
        fleet.step().unwrap();
    };
    for _ in 0..8 {
        tick(&mut fleet); // warm the detectors off their cold start
    }
    fleet.snapshot_all();
    let start = Instant::now();
    for _ in 0..backlog_ticks {
        tick(&mut fleet);
    }
    let live_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    fleet.recover_shard(0).unwrap();
    let recovery_seconds = start.elapsed().as_secs_f64();
    let ratio = recovery_seconds / live_seconds;
    println!(
        "{:<44} {:>10.1} ms  ({:.2}x the live stepping, budget {:.1}x)",
        format!("shard_recovery/robots={robots} backlog={backlog_ticks}"),
        recovery_seconds * 1e3,
        ratio,
        SHARD_RECOVERY_BUDGET_RATIO
    );
    let recovery = ShardRecoveryRow {
        robots,
        backlog_ticks,
        live_seconds,
        recovery_seconds,
        ratio,
    };
    (rows, recovery)
}

/// `ROBOADS_FLEET_GATE=1` leg for the fleet service: the shard layer at
/// 1 shard may cost at most [`SHARD_OVERHEAD_BUDGET_PCT`] over the
/// plain ingest-driven engine (per-shard throughput within 10 % of a
/// standalone `FleetEngine`), and recovering a killed 64-robot shard
/// with a 100-tick backlog must land under
/// [`SHARD_RECOVERY_BUDGET_RATIO`]× the live stepping it replays.
fn check_shard_gate(rows: &[ShardRow], recovery: &ShardRecoveryRow) {
    if std::env::var_os("ROBOADS_FLEET_GATE").is_none_or(|v| v == "0") {
        return;
    }
    let single = rows
        .iter()
        .find(|r| r.effective == 1)
        .expect("shard gate requires the 1-shard row");
    println!(
        "shard gate: {:.2} % service overhead at 1 shard (budget {:.1} %)",
        single.overhead_vs_engine_pct, SHARD_OVERHEAD_BUDGET_PCT
    );
    assert!(
        single.overhead_vs_engine_pct <= SHARD_OVERHEAD_BUDGET_PCT,
        "shard service regression: routing + journaling + snapshots cost {:.2} % over the \
         plain ingest-driven engine at 1 shard (budget {:.1} %) — per-shard throughput is \
         no longer within 10 % of a standalone FleetEngine",
        single.overhead_vs_engine_pct,
        SHARD_OVERHEAD_BUDGET_PCT
    );
    println!(
        "recovery gate: {:.2}x the live stepping for a {}-robot shard, {}-tick backlog \
         (budget {:.1}x)",
        recovery.ratio, recovery.robots, recovery.backlog_ticks, SHARD_RECOVERY_BUDGET_RATIO
    );
    assert!(
        recovery.ratio <= SHARD_RECOVERY_BUDGET_RATIO,
        "shard recovery regression: rebuilding a {}-robot shard from snapshot + {}-tick \
         journal replay costs {:.2}x the live stepping it replays (budget {:.1}x) — twin \
         construction or snapshot decode is no longer amortized by the replay",
        recovery.robots,
        recovery.backlog_ticks,
        recovery.ratio,
        SHARD_RECOVERY_BUDGET_RATIO
    );
}

/// One flight-recorder overhead sample: identical warm detectors
/// stepped via `step_into`, one bare and one with `record_tick` after
/// every step (clean inputs, so the recorder stays on its zero-alloc
/// warm path with the ring wrapping continuously).
struct RecorderRow {
    base_seconds: f64,
    live_seconds: f64,
    overhead_pct: f64,
}

/// Acceptance budget for warm-path recording, percent of the step cost.
const RECORDER_BUDGET_PCT: f64 = 5.0;

/// What the flight recorder costs per tick on top of a detector step.
/// Both legs run back to back in the same function (like the ingest
/// section) so host drift cancels out of the overhead ratio; the
/// recorded leg's ring is small enough that the measured window is all
/// wraparound — the steady state a long mission lives in.
fn bench_recorder_overhead(fast: bool) -> RecorderRow {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let (batches, per_batch) = if fast { (5, 32) } else { (30, 256) };

    let mut base = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
    let mut base_report = DetectionReport::blank();
    let base_seconds = time_median(batches, per_batch, || {
        base.step_into(&u, &readings, &mut base_report).unwrap();
    });
    report("recorder_overhead/base_step", base_seconds);

    let mut live = RoboAds::with_defaults(system, x0)
        .unwrap()
        .with_recorder(RecorderConfig {
            capacity: 64,
            ..RecorderConfig::default()
        });
    let mut live_report = DetectionReport::blank();
    let mut tick = 0u64;
    let live_seconds = time_median(batches, per_batch, || {
        live.step_into(&u, &readings, &mut live_report).unwrap();
        live.record_tick(tick, &u, &readings, &live_report);
        tick += 1;
    });
    report("recorder_overhead/recorded_step", live_seconds);

    let overhead_pct = (live_seconds / base_seconds - 1.0) * 100.0;
    println!(
        "{:<44} {:>9.2} %  (budget {RECORDER_BUDGET_PCT:.1} %)",
        "recorder overhead (recorded vs base)", overhead_pct
    );
    RecorderRow {
        base_seconds,
        live_seconds,
        overhead_pct,
    }
}

/// `ROBOADS_FLEET_GATE=1` leg for the recorder: warm-path recording may
/// cost at most [`RECORDER_BUDGET_PCT`] of the step it rides on.
fn check_recorder_gate(row: &RecorderRow) {
    if std::env::var_os("ROBOADS_FLEET_GATE").is_none_or(|v| v == "0") {
        return;
    }
    println!(
        "recorder gate: {:.2} % overhead (budget {RECORDER_BUDGET_PCT:.1} %)",
        row.overhead_pct
    );
    assert!(
        row.overhead_pct <= RECORDER_BUDGET_PCT,
        "flight-recorder overhead regression: recording costs {:.2} % of a detector step \
         (budget {RECORDER_BUDGET_PCT:.1} %) — the warm record path is doing more than \
         refilling pre-sized ring slots",
        row.overhead_pct
    );
}

/// Slab-vs-scalar fleet throughput, measured **back to back in the same
/// run** at 1 thread so host drift cannot masquerade as a kernel win:
/// for each robot count, a scalar fleet (`slab_lanes = 1`, the
/// per-robot path) and then SoA slab fleets at 4 and 8 lanes. This is
/// the headline number of the slab work: identical arithmetic, batched
/// across robots so the dense kernels vectorize.
fn bench_slab_throughput(fast: bool) -> Vec<SlabRow> {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let modes = ModeSet::one_reference_per_sensor(&system);
    let robot_counts: &[usize] = if fast { &[64] } else { &[64, 256] };
    const LANES: [usize; 3] = [1, 4, 8];
    let mut rows: Vec<SlabRow> = Vec::new();
    for &robots in robot_counts {
        // One fleet per lane width, timing windows interleaved
        // round-robin: slow host-speed drift (shared cores, frequency
        // scaling) then hits every lane width equally and cancels out
        // of the speedup ratios, which is what the slab gate checks.
        let mut fleets: Vec<FleetEngine> = LANES
            .iter()
            .map(|&lanes| {
                let config = RoboAdsConfig::paper_defaults().with_slab_lanes(lanes);
                FleetEngine::new(
                    (0..robots)
                        .map(|_| {
                            RoboAds::new(system.clone(), config.clone(), x0.clone(), modes.clone())
                                .unwrap()
                        })
                        .collect(),
                    1,
                )
            })
            .collect();
        let inputs: Vec<RobotInput> = (0..robots)
            .map(|_| RobotInput {
                u_prev: &u,
                readings: &readings,
            })
            .collect();
        let per_batch = (if fast { 32 } else { 512 } / robots).max(1);
        let rounds = if fast { 3 } else { 16 };
        for fleet in &mut fleets {
            for _ in 0..per_batch {
                fleet.step_batch(&inputs).unwrap();
            }
        }
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); LANES.len()];
        for _ in 0..rounds {
            for (lane_samples, fleet) in samples.iter_mut().zip(fleets.iter_mut()) {
                let start = Instant::now();
                for _ in 0..per_batch {
                    fleet.step_batch(&inputs).unwrap();
                }
                lane_samples.push(start.elapsed().as_secs_f64() / per_batch as f64);
            }
        }
        let mut scalar_seconds = f64::NAN;
        for (lane_samples, &lanes) in samples.iter_mut().zip(LANES.iter()) {
            lane_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let seconds = lane_samples[lane_samples.len() / 2] / robots as f64;
            if lanes == 1 {
                scalar_seconds = seconds;
            }
            let speedup = scalar_seconds / seconds;
            report(
                &format!("slab_fleet/robots={robots} lanes={lanes}"),
                seconds,
            );
            if lanes > 1 {
                println!(
                    "{:<44} {:>9.2} x",
                    format!("slab speedup robots={robots} lanes={lanes}"),
                    speedup
                );
            }
            rows.push(SlabRow {
                robots,
                lanes,
                seconds,
                speedup_vs_scalar: speedup,
            });
        }
    }
    rows
}

/// Heterogeneous-fleet throughput: the same robot count spread across
/// different model-signature shapes, all legs back to back (interleaved
/// timing windows, same drift-cancelling scheme as the slab section):
///
/// * `all_scalar` — `slab_lanes = 1`, the per-robot baseline;
/// * `homogeneous` — one signature, the whole fleet in one 8-lane slab
///   (the pre-grouping best case);
/// * `two_group` — two signatures dealt alternately, two slabs (the
///   mixed Khepera-firmware fleet shape);
/// * `odd_one_out` — one robot with its own signature amid N−1 shared
///   ones. Pre-grouping this was the pathological case: the odd robot
///   collapsed the whole fleet to `all_scalar` throughput (~1.0×);
///   per-group slabs keep the N−1 group batched, so it must retain
///   nearly the homogeneous speedup.
fn bench_slab_groups(fast: bool) -> Vec<SlabGroupRow> {
    let base = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = base.dynamics().step(&x0, &u);
    let readings = clean_readings(&base, &x1);
    let robots = if fast { 64 } else { 256 };
    // (label, lanes, signature count, robot -> signature group).
    type Shape = (&'static str, usize, usize, fn(usize, usize) -> usize);
    const SHAPES: [Shape; 4] = [
        ("all_scalar", 1, 1, |_, _| 0),
        ("homogeneous", 8, 1, |_, _| 0),
        ("two_group", 8, 2, |i, _| i % 2),
        ("odd_one_out", 8, 2, |i, n| usize::from(i == n / 2)),
    ];
    let mut fleets: Vec<FleetEngine> = SHAPES
        .iter()
        .map(|&(_, lanes, signatures, group_of)| {
            // Fresh, pointer-distinct (numerically identical) preset
            // instances per signature group — the realistic per-unit
            // model-provisioning shape.
            let systems: Vec<_> = (0..signatures).map(|_| presets::khepera_system()).collect();
            let config = RoboAdsConfig::paper_defaults().with_slab_lanes(lanes);
            FleetEngine::new(
                (0..robots)
                    .map(|i| {
                        let system = &systems[group_of(i, robots)];
                        RoboAds::new(
                            system.clone(),
                            config.clone(),
                            x0.clone(),
                            ModeSet::one_reference_per_sensor(system),
                        )
                        .unwrap()
                    })
                    .collect(),
                1,
            )
        })
        .collect();
    let inputs: Vec<RobotInput> = (0..robots)
        .map(|_| RobotInput {
            u_prev: &u,
            readings: &readings,
        })
        .collect();
    let per_batch = (if fast { 32 } else { 512 } / robots).max(1);
    let rounds = if fast { 3 } else { 16 };
    for fleet in &mut fleets {
        for _ in 0..per_batch {
            fleet.step_batch(&inputs).unwrap();
        }
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); SHAPES.len()];
    for _ in 0..rounds {
        for (shape_samples, fleet) in samples.iter_mut().zip(fleets.iter_mut()) {
            let start = Instant::now();
            for _ in 0..per_batch {
                fleet.step_batch(&inputs).unwrap();
            }
            shape_samples.push(start.elapsed().as_secs_f64() / per_batch as f64);
        }
    }
    let mut scalar_seconds = f64::NAN;
    let mut rows = Vec::with_capacity(SHAPES.len());
    for (shape_samples, &(label, _, signatures, _)) in samples.iter_mut().zip(SHAPES.iter()) {
        shape_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let seconds = shape_samples[shape_samples.len() / 2] / robots as f64;
        if label == "all_scalar" {
            scalar_seconds = seconds;
        }
        let speedup = scalar_seconds / seconds;
        report(&format!("slab_groups/robots={robots} {label}"), seconds);
        if label != "all_scalar" {
            println!(
                "{:<44} {:>9.2} x",
                format!("slab_groups speedup robots={robots} {label}"),
                speedup
            );
        }
        rows.push(SlabGroupRow {
            label,
            robots,
            groups: signatures,
            seconds,
            speedup_vs_scalar: speedup,
        });
    }
    rows
}

/// One adaptive mode-bank sample (DESIGN.md §17): a steady-state step
/// of the complete 7-mode Khepera bank under an activation policy and
/// workload, standalone or as a 64-robot fleet batch. The same-workload
/// `always_full` leg runs back to back in the same function so host
/// drift cancels out of `speedup_vs_full`.
struct LazyBankRow {
    /// `always_full` or `top_k2` ([`ActivationPolicy::lazy_defaults`]).
    policy: &'static str,
    /// `quiescent` (clean steady state, lazy bank asleep) or
    /// `under_attack` (persistent IPS spoof, χ² windows active, lazy
    /// bank woken to the full bank).
    workload: &'static str,
    /// `engine` (bare [`MultiModeEngine::step_in_place`], the mode-bank
    /// cost alone), `detector` (end-to-end [`RoboAds::step`] including
    /// the decision maker's fixed per-tick χ² cost) or `fleet64`
    /// (64-robot slab batch, per-robot-step seconds).
    scope: &'static str,
    seconds: f64,
    /// Same-scope, same-workload `always_full` seconds / these seconds.
    speedup_vs_full: f64,
    /// Active (non-dormant) modes at the end of the measured window.
    active_modes: usize,
}

/// The adaptive mode bank's cost profile: in quiescent steady state a
/// `TopK { k: 2 }` schedule advances 2 of the 7 modes (plus a periodic
/// dormant-mode audit), while under attack the woken bank must cost the
/// same as `AlwaysFull` — the speedup is bought only where nothing is
/// happening. Both workloads are measured for both policies, standalone
/// and at fleet scale where whole dormant mode-tiles are skipped.
fn bench_lazy_bank(fast: bool) -> Vec<LazyBankRow> {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut rows: Vec<LazyBankRow> = Vec::new();

    // Every measured step walks a precomputed *evolving* trajectory —
    // stepping frozen readings would look like a jammed actuator (the
    // commands say "move", the pose doesn't), keep the χ² windows
    // positive and hold the lazy bank awake. Readings generation stays
    // outside the timed region.
    const LAZY_WARM: usize = 30;
    let trajectory = |len: usize, spoof: bool| -> Vec<Vec<Vector>> {
        let mut x_true = x0.clone();
        (0..len)
            .map(|_| {
                x_true = system.dynamics().step(&x_true, &u);
                let mut readings = clean_readings(&system, &x_true);
                if spoof {
                    readings[0][0] += 0.07;
                }
                readings
            })
            .collect()
    };

    // Warm a detector to the workload's steady state (the lazy bank
    // sleeps around tick 12 on the clean trajectory, wakes and
    // identifies on the spoofed one), then time the remaining ticks.
    let steady_detector = |policy: ActivationPolicy, spoof: bool| -> (f64, usize, bool) {
        let mut ads = RoboAds::new(
            system.clone(),
            RoboAdsConfig::paper_defaults().with_activation(policy),
            x0.clone(),
            ModeSet::complete(&system),
        )
        .unwrap();
        let (batches, per_batch) = if fast { (5, 32) } else { (30, 256) };
        let traj = trajectory(LAZY_WARM + (batches + 1) * per_batch, spoof);
        for readings in &traj[..LAZY_WARM] {
            ads.step(&u, readings).unwrap();
        }
        let mut cursor = LAZY_WARM;
        let seconds = time_median(batches, per_batch, || {
            ads.step(&u, &traj[cursor]).unwrap();
            cursor += 1;
        });
        (seconds, ads.active_modes(), ads.bank_awake())
    };

    // The mode-bank cost in isolation: a bare engine step with no
    // decision maker on top. This is the scope the ≥2× acceptance
    // criterion is stated against — the NUISE mode loop is what the
    // lazy schedule prunes, while `RoboAds::step` adds a fixed χ²
    // assessment cost per tick that both policies pay equally. With no
    // decision maker feeding χ²-window activity, the under-attack
    // engine is held awake by its own trigger: mutually inconsistent
    // sensor offsets collapse the selected mode's consistency.
    let steady_engine = |policy: ActivationPolicy, attack: bool| -> (f64, usize, bool) {
        let mut engine = MultiModeEngine::new(
            system.clone(),
            ModeSet::complete(&system),
            x0.clone(),
            &RoboAdsConfig::paper_defaults().with_activation(policy),
        )
        .unwrap();
        let (batches, per_batch) = if fast { (5, 32) } else { (30, 256) };
        let mut traj = trajectory(LAZY_WARM + (batches + 1) * per_batch, false);
        if attack {
            for readings in traj.iter_mut() {
                readings[0][0] += 0.6;
                readings[1][0] -= 0.5;
                readings[2][0] += 0.4;
            }
        }
        for readings in &traj[..LAZY_WARM] {
            engine.step_in_place(&u, readings).unwrap();
        }
        let mut cursor = LAZY_WARM;
        let seconds = time_median(batches, per_batch, || {
            engine.step_in_place(&u, &traj[cursor]).unwrap();
            cursor += 1;
        });
        (seconds, engine.active_modes(), engine.bank_awake())
    };

    // The same steady states at fleet scale: 64 robots, 1 thread,
    // default slab lanes, per-robot-step seconds. All robots share the
    // tick's readings, so the whole fleet sleeps (and audits) in phase.
    const LAZY_FLEET_ROBOTS: usize = 64;
    let steady_fleet = |policy: ActivationPolicy, spoof: bool| -> (f64, usize) {
        let mut fleet = FleetEngine::new(
            (0..LAZY_FLEET_ROBOTS)
                .map(|_| {
                    RoboAds::new(
                        system.clone(),
                        RoboAdsConfig::paper_defaults().with_activation(policy),
                        x0.clone(),
                        ModeSet::complete(&system),
                    )
                    .unwrap()
                })
                .collect(),
            1,
        );
        let per_batch = (if fast { 32 } else { 256 } / LAZY_FLEET_ROBOTS).max(1);
        let batches = if fast { 3 } else { 10 };
        let traj = trajectory(LAZY_WARM + (batches + 1) * per_batch, spoof);
        for readings in &traj[..LAZY_WARM] {
            let inputs = vec![
                RobotInput {
                    u_prev: &u,
                    readings,
                };
                LAZY_FLEET_ROBOTS
            ];
            fleet.step_batch(&inputs).unwrap();
        }
        let input_sets: Vec<Vec<RobotInput>> = traj[LAZY_WARM..]
            .iter()
            .map(|readings| {
                vec![
                    RobotInput {
                        u_prev: &u,
                        readings,
                    };
                    LAZY_FLEET_ROBOTS
                ]
            })
            .collect();
        let mut cursor = 0;
        let seconds = time_median(batches, per_batch, || {
            fleet.step_batch(&input_sets[cursor]).unwrap();
            cursor += 1;
        }) / LAZY_FLEET_ROBOTS as f64;
        (seconds, fleet.detector(0).active_modes())
    };

    for (workload, attack) in [("quiescent", false), ("under_attack", true)] {
        let (full_s, full_active, _) = steady_engine(ActivationPolicy::AlwaysFull, attack);
        let (lazy_s, lazy_active, lazy_awake) =
            steady_engine(ActivationPolicy::lazy_defaults(), attack);
        assert_eq!(full_active, 7);
        assert_eq!(
            lazy_awake, attack,
            "lazy engine in the wrong activation state for the {workload} workload"
        );
        report(
            &format!("lazy_bank/engine modes=7 always_full {workload}"),
            full_s,
        );
        report(
            &format!("lazy_bank/engine modes=7 top_k2 {workload}"),
            lazy_s,
        );
        println!(
            "{:<44} {:>9.2} x",
            format!("lazy_bank engine speedup {workload}"),
            full_s / lazy_s
        );
        rows.push(LazyBankRow {
            policy: "always_full",
            workload,
            scope: "engine",
            seconds: full_s,
            speedup_vs_full: 1.0,
            active_modes: full_active,
        });
        rows.push(LazyBankRow {
            policy: "top_k2",
            workload,
            scope: "engine",
            seconds: lazy_s,
            speedup_vs_full: full_s / lazy_s,
            active_modes: lazy_active,
        });
    }

    for (workload, spoof) in [("quiescent", false), ("under_attack", true)] {
        let (full_s, full_active, _) = steady_detector(ActivationPolicy::AlwaysFull, spoof);
        let (lazy_s, lazy_active, lazy_awake) =
            steady_detector(ActivationPolicy::lazy_defaults(), spoof);
        // The measured window must actually be in the advertised state.
        assert_eq!(full_active, 7);
        assert_eq!(
            lazy_awake, spoof,
            "lazy bank in the wrong activation state for the {workload} workload"
        );
        report(
            &format!("lazy_bank/detector modes=7 always_full {workload}"),
            full_s,
        );
        report(
            &format!("lazy_bank/detector modes=7 top_k2 {workload}"),
            lazy_s,
        );
        println!(
            "{:<44} {:>9.2} x",
            format!("lazy_bank detector speedup {workload}"),
            full_s / lazy_s
        );
        rows.push(LazyBankRow {
            policy: "always_full",
            workload,
            scope: "detector",
            seconds: full_s,
            speedup_vs_full: 1.0,
            active_modes: full_active,
        });
        rows.push(LazyBankRow {
            policy: "top_k2",
            workload,
            scope: "detector",
            seconds: lazy_s,
            speedup_vs_full: full_s / lazy_s,
            active_modes: lazy_active,
        });
    }

    // Fleet scale is only sampled for the quiescent workload — that is
    // where the per-mode lane masks skip whole dormant tiles; under
    // attack both policies run the full bank and the detector rows
    // above already pin that to parity.
    let (fleet_full_s, _) = steady_fleet(ActivationPolicy::AlwaysFull, false);
    let (fleet_lazy_s, fleet_lazy_active) = steady_fleet(ActivationPolicy::lazy_defaults(), false);
    report(
        "lazy_bank/fleet64 modes=7 always_full quiescent",
        fleet_full_s,
    );
    report("lazy_bank/fleet64 modes=7 top_k2 quiescent", fleet_lazy_s);
    println!(
        "{:<44} {:>9.2} x",
        "lazy_bank fleet64 speedup quiescent",
        fleet_full_s / fleet_lazy_s
    );
    rows.push(LazyBankRow {
        policy: "always_full",
        workload: "quiescent",
        scope: "fleet64",
        seconds: fleet_full_s,
        speedup_vs_full: 1.0,
        active_modes: 7,
    });
    rows.push(LazyBankRow {
        policy: "top_k2",
        workload: "quiescent",
        scope: "fleet64",
        seconds: fleet_lazy_s,
        speedup_vs_full: fleet_full_s / fleet_lazy_s,
        active_modes: fleet_lazy_active,
    });
    rows
}

/// `ROBOADS_FLEET_GATE=1` leg for the adaptive mode bank and the
/// instrumentation budget: the quiescent `TopK { k: 2 }` engine step on
/// the 7-mode bank must hold at least 1.8× over `AlwaysFull`
/// (steady-state mode work drops from 7 mode-steps to ~2.25 including
/// the audit cadence, so ≥2× is the expectation and 1.8 the noise-proof
/// floor on a shared runner), and the live-sink telemetry overhead must
/// stay within 6 % of the noop-sink step now that per-mode histograms
/// are sampled instead of recorded every commit.
fn check_lazy_gate(rows: &[LazyBankRow], telemetry_overhead_pct: f64) {
    if std::env::var_os("ROBOADS_FLEET_GATE").is_none_or(|v| v == "0") {
        return;
    }
    let engine = rows
        .iter()
        .find(|r| r.policy == "top_k2" && r.workload == "quiescent" && r.scope == "engine")
        .expect("lazy gate requires the quiescent top_k2 engine row");
    println!(
        "lazy gate: {:.2}x quiescent engine speedup at {} active of 7 modes (floor 1.80)",
        engine.speedup_vs_full, engine.active_modes
    );
    assert!(
        engine.speedup_vs_full >= 1.8,
        "adaptive mode-bank regression: quiescent TopK{{k:2}} engine step holds only \
         {:.2}x over AlwaysFull on the 7-mode bank (floor 1.80) — the lazy schedule is \
         no longer skipping dormant modes",
        engine.speedup_vs_full
    );
    println!("telemetry gate: {telemetry_overhead_pct:.2} % ring-sink overhead (budget 6.00 %)");
    assert!(
        telemetry_overhead_pct <= 6.0,
        "telemetry overhead regression: ring-sink instrumentation costs \
         {telemetry_overhead_pct:.2} % of a detector step (budget 6 %) — check for \
         per-step histogram records or other hot-path instruments"
    );
}

/// `ROBOADS_FLEET_GATE=1` sanity floor for the CI fleet-smoke job: the
/// 64-robot / 1-thread batch must sustain at least 32× the per-robot
/// tick rate of a sequentially swept 64-robot fleet — i.e. batching may
/// cost at most 2× the standalone per-step path. A 2× slack floor (not
/// a tight perf gate) so a noisy shared runner cannot flake it, while a
/// real regression — per-batch allocation, dispatch per robot, slab
/// false sharing — still trips it.
fn check_fleet_gate(
    fleet: &[FleetRow],
    slab: &[SlabRow],
    slab_groups: &[SlabGroupRow],
    detector_step_s: f64,
) {
    if std::env::var_os("ROBOADS_FLEET_GATE").is_none_or(|v| v == "0") {
        return;
    }
    let row = fleet
        .iter()
        .filter(|r| r.requested == 1 && r.robots >= 64)
        .min_by_key(|r| r.robots)
        .expect("fleet gate requires a >=64-robot / 1-thread row");
    let rate = 1.0 / row.seconds;
    let floor = 32.0 / (row.robots as f64 * detector_step_s);
    println!(
        "fleet gate: {rate:.0} robot-steps/s at {} robots / 1 thread \
         (floor {floor:.0})",
        row.robots
    );
    assert!(
        rate >= floor,
        "fleet throughput regression: {rate:.0} robot-steps/s at {} robots / 1 thread \
         is below 32x the swept per-robot tick rate ({floor:.0}); batching is costing more \
         than 2x the standalone detector step ({:.1} us)",
        row.robots,
        detector_step_s * 1e6
    );
    // Slab leg of the gate: the SoA path must never be slower than the
    // scalar fleet it replaces (the full bench's acceptance bar is
    // 1.3x; the smoke gate only guards against the slab path silently
    // degenerating, so it sits at parity to stay noise-proof).
    let slab_row = slab
        .iter()
        .filter(|r| r.lanes == 8 && r.robots >= 64)
        .min_by_key(|r| r.robots)
        .expect("fleet gate requires a >=64-robot / 8-lane slab row");
    println!(
        "slab gate: {:.2}x vs scalar at {} robots / 8 lanes (floor 1.00)",
        slab_row.speedup_vs_scalar, slab_row.robots
    );
    assert!(
        slab_row.speedup_vs_scalar >= 1.0,
        "slab throughput regression: {:.2}x vs the scalar fleet path at {} robots — \
         the lane-batched kernels are slower than the per-robot path they replace",
        slab_row.speedup_vs_scalar,
        slab_row.robots
    );
    // Mixed-fleet leg: one odd robot amid N−1 shared-signature ones
    // must retain ≥ 1.3x over all-scalar. Pre-grouping this shape ran
    // at ~1.0x (the odd robot collapsed the fleet to the scalar path);
    // post-grouping the N−1 group keeps its slab, whose homogeneous
    // speedup is ~1.5x, so 1.3 is a real floor with noise headroom.
    let odd = slab_groups
        .iter()
        .find(|r| r.label == "odd_one_out")
        .expect("fleet gate requires the odd_one_out slab-groups row");
    println!(
        "slab-groups gate: {:.2}x vs all-scalar at {} robots, one odd robot (floor 1.30)",
        odd.speedup_vs_scalar, odd.robots
    );
    assert!(
        odd.speedup_vs_scalar >= 1.3,
        "heterogeneous slab regression: one odd robot in a {}-robot fleet retains only \
         {:.2}x over all-scalar (floor 1.30) — the signature partition is no longer \
         keeping the majority group on the slab path",
        odd.robots,
        odd.speedup_vs_scalar
    );
}

fn bench_simulation(fast: bool) {
    let (batches, per_batch) = if fast { (1, 1) } else { (5, 1) };
    let t = time_median(batches, per_batch, || {
        SimulationBuilder::khepera()
            .scenario(Scenario::ips_logic_bomb())
            .seed(11)
            .run()
            .unwrap();
    });
    report("simulation/khepera_200_iterations", t);

    // Dump one run's telemetry summary so the bench doubles as a
    // health-report demo (step latency p50/p95/p99 live here).
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::ips_logic_bomb())
        .seed(11)
        .run()
        .unwrap();
    println!("\ntelemetry summary (ips_logic_bomb, seed 11):");
    println!("{}", outcome.telemetry.to_json());
}

fn bench_substrates(fast: bool) {
    let arena = presets::evaluation_arena();
    let (b1, n1) = if fast { (2, 1) } else { (5, 2) };
    let t = time_median(b1, n1, || {
        roboads_control::RrtStar::new(&arena, 0.08)
            .unwrap()
            .plan((0.5, 0.5), (3.5, 3.5), 7)
            .unwrap();
    });
    report("rrt_star/evaluation_arena", t);

    let lidar = roboads_models::sensors::WallLidar::new(arena, 0.015, 0.02).unwrap();
    let pose = Vector::from_slice(&[2.0, 2.0, 0.5]);
    let (b2, n2) = if fast { (5, 5) } else { (30, 20) };
    let t = time_median(b2, n2, || {
        lidar.simulate_scan(&pose).unwrap();
    });
    report("lidar/241_beam_scan", t);

    let m = Matrix::from_fn(7, 7, |i, j| if i == j { 2.0 } else { 0.3 });
    let t = time_median(b2, 50, || {
        m.pseudo_inverse().unwrap();
    });
    report("linalg/pseudo_inverse_7x7", t);
}

/// The per-section result rows `write_results` renders, bundled so the
/// signature doesn't grow an argument per bench section.
struct SectionRows<'a> {
    scaling: &'a [ScalingRow],
    fleet: &'a [FleetRow],
    slab: &'a [SlabRow],
    slab_groups: &'a [SlabGroupRow],
    lazy_bank: &'a [LazyBankRow],
    ingest: &'a [IngestRow],
    recorder: &'a RecorderRow,
    shard: &'a [ShardRow],
    shard_recovery: &'a ShardRecoveryRow,
}

fn write_results(nuise: (f64, f64), detector: (f64, f64, f64), rows: &SectionRows, fast: bool) {
    let SectionRows {
        scaling,
        fleet,
        slab,
        slab_groups,
        lazy_bank,
        ingest,
        recorder,
        shard,
        shard_recovery,
    } = rows;
    let mut o = JsonObject::new();
    o.field_str("bench", "perf");
    o.field_bool("fast_mode", fast);
    o.field_u64(
        "available_parallelism",
        std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
    );
    o.field_f64("nuise_step_us", nuise.0 * 1e6);
    o.field_f64("nuise_step_into_us", nuise.1 * 1e6);
    o.field_f64("detector_step_noop_us", detector.0 * 1e6);
    o.field_f64("detector_step_ring_us", detector.1 * 1e6);
    o.field_f64("telemetry_overhead_pct", detector.2);
    let rows = roboads_core::obs::json::array_of(scaling.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_str("grain", "intra-step (dispatch-bound)");
        row.field_u64("threads", r.requested as u64);
        row.field_u64("effective_threads", r.effective as u64);
        row.field_bool("clamped", r.effective < r.requested);
        row.field_f64("engine_step_us", r.seconds * 1e6);
        row.field_f64("speedup", scaling[0].seconds / r.seconds);
        row.finish()
    }));
    o.field_raw("intra_step_scaling_complete_modes_7", &rows);
    let fleet_rows = roboads_core::obs::json::array_of(fleet.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_u64("robots", r.robots as u64);
        row.field_u64("threads", r.requested as u64);
        row.field_u64("effective_threads", r.effective as u64);
        row.field_bool("clamped", r.effective < r.requested);
        row.field_f64("robot_step_us", r.seconds * 1e6);
        row.field_f64("robot_steps_per_sec", 1.0 / r.seconds);
        row.finish()
    }));
    o.field_raw("fleet_throughput", &fleet_rows);
    let slab_rows = roboads_core::obs::json::array_of(slab.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_u64("robots", r.robots as u64);
        row.field_u64("threads", 1);
        row.field_u64("slab_lanes", r.lanes as u64);
        row.field_f64("robot_step_us", r.seconds * 1e6);
        row.field_f64("robot_steps_per_sec", 1.0 / r.seconds);
        row.field_f64("speedup_vs_scalar", r.speedup_vs_scalar);
        row.finish()
    }));
    o.field_raw("slab_throughput", &slab_rows);
    let group_rows = roboads_core::obs::json::array_of(slab_groups.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_str("shape", r.label);
        row.field_u64("robots", r.robots as u64);
        row.field_u64("signature_groups", r.groups as u64);
        row.field_u64("threads", 1);
        row.field_f64("robot_step_us", r.seconds * 1e6);
        row.field_f64("robot_steps_per_sec", 1.0 / r.seconds);
        row.field_f64("speedup_vs_scalar", r.speedup_vs_scalar);
        row.finish()
    }));
    o.field_raw("slab_groups", &group_rows);
    let lazy_rows = roboads_core::obs::json::array_of(lazy_bank.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_str("scope", r.scope);
        row.field_str("policy", r.policy);
        row.field_str("workload", r.workload);
        row.field_u64("modes", 7);
        row.field_f64("step_us", r.seconds * 1e6);
        row.field_f64("speedup_vs_full", r.speedup_vs_full);
        row.field_u64("active_modes", r.active_modes as u64);
        row.finish()
    }));
    o.field_raw("lazy_bank", &lazy_rows);
    let ingest_rows = roboads_core::obs::json::array_of(ingest.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_u64("robots", r.robots as u64);
        row.field_u64("threads", 1);
        row.field_f64("direct_robot_step_us", r.direct_seconds * 1e6);
        row.field_f64("ingest_robot_step_us", r.ingest_seconds * 1e6);
        row.field_f64("overhead_pct", r.overhead_pct);
        row.finish()
    }));
    o.field_raw("ingest_throughput", &ingest_rows);
    let mut rec = JsonObject::new();
    rec.field_f64("base_us", recorder.base_seconds * 1e6);
    rec.field_f64("live_us", recorder.live_seconds * 1e6);
    rec.field_f64("overhead_pct", recorder.overhead_pct);
    rec.field_f64("budget_pct", RECORDER_BUDGET_PCT);
    o.field_raw("recorder_overhead", &rec.finish());
    let shard_rows = roboads_core::obs::json::array_of(shard.iter().map(|r| {
        let mut row = JsonObject::new();
        row.field_u64("robots", r.robots as u64);
        row.field_u64("shards", r.requested as u64);
        row.field_u64("effective_shards", r.effective as u64);
        row.field_bool("clamped", r.effective < r.requested);
        row.field_f64("robot_step_us", r.seconds * 1e6);
        row.field_f64("robot_steps_per_sec", 1.0 / r.seconds);
        row.field_f64("overhead_vs_engine_pct", r.overhead_vs_engine_pct);
        row.finish()
    }));
    o.field_raw("shard_scaling", &shard_rows);
    let mut recov = JsonObject::new();
    recov.field_u64("robots", shard_recovery.robots as u64);
    recov.field_u64("backlog_ticks", shard_recovery.backlog_ticks as u64);
    recov.field_f64("live_ms", shard_recovery.live_seconds * 1e3);
    recov.field_f64("recovery_ms", shard_recovery.recovery_seconds * 1e3);
    recov.field_f64("ratio_vs_live", shard_recovery.ratio);
    recov.field_f64("budget_ratio", SHARD_RECOVERY_BUDGET_RATIO);
    o.field_raw("shard_recovery", &recov.finish());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    match std::fs::write(path, o.finish() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

fn main() {
    let fast = fast_mode();
    println!(
        "control period budget: 100000.0 µs per detection iteration{}\n",
        if fast { "  [fast mode]" } else { "" }
    );
    let nuise = bench_nuise(fast);
    // The fleet section runs immediately after the standalone detector
    // baseline it is compared against: on shared/bursty hosts the
    // machine's speed drifts over a multi-minute bench run, and putting
    // other sections between the two numbers would fold that drift into
    // the batching-overhead comparison. The slab section carries its
    // scalar baseline inside itself (back-to-back legs) for the same
    // reason.
    let detector = bench_detector_and_overhead(fast);
    let fleet = bench_fleet_throughput(fast);
    let slab = bench_slab_throughput(fast);
    let slab_groups = bench_slab_groups(fast);
    check_fleet_gate(&fleet, &slab, &slab_groups, detector.0);
    // The lazy-bank section carries its always-full baselines inside
    // itself (back-to-back legs per workload), so its placement is
    // drift-safe.
    let lazy_bank = bench_lazy_bank(fast);
    check_lazy_gate(&lazy_bank, detector.2);
    // The recorder and ingest overhead legs carry their baselines inside
    // themselves (back to back), so their placement is drift-safe.
    let recorder = bench_recorder_overhead(fast);
    check_recorder_gate(&recorder);
    let ingest = bench_ingest_throughput(fast);
    // The shard section carries its engine baseline inside itself (back
    // to back), and the recovery ratio normalizes against the live
    // stepping measured in the same run — both drift-safe.
    let (shard, shard_recovery) = bench_shard_scaling(fast);
    check_shard_gate(&shard, &shard_recovery);
    let scaling = bench_scaling(fast);
    bench_substrates(fast);
    bench_simulation(fast);
    write_results(
        nuise,
        detector,
        &SectionRows {
            scaling: &scaling,
            fleet: &fleet,
            slab: &slab,
            slab_groups: &slab_groups,
            lazy_bank: &lazy_bank,
            ingest: &ingest,
            recorder: &recorder,
            shard: &shard,
            shard_recovery: &shard_recovery,
        },
        fast,
    );
}
