use crate::{ModelError, Result};

/// An axis-aligned box obstacle inside the arena, in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    /// Minimum corner x.
    pub min_x: f64,
    /// Minimum corner y.
    pub min_y: f64,
    /// Maximum corner x.
    pub max_x: f64,
    /// Maximum corner y.
    pub max_y: f64,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when a maximum is not
    /// strictly greater than the corresponding minimum.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Result<Self> {
        let finite = [min_x, min_y, max_x, max_y].iter().all(|v| v.is_finite());
        if !(finite && max_x > min_x && max_y > min_y) {
            return Err(ModelError::InvalidParameter {
                name: "aabb",
                value: format!("({min_x},{min_y})..({max_x},{max_y})"),
            });
        }
        Ok(Aabb {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// Whether a point lies inside (or on the boundary of) the box.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.min_x && x <= self.max_x && y >= self.min_y && y <= self.max_y
    }

    /// The box grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Slab-method ray intersection: distance along the ray
    /// `(ox, oy) + t·(dx, dy)` to the first boundary hit, if any, for
    /// `t ≥ 0`.
    fn raycast(&self, ox: f64, oy: f64, dx: f64, dy: f64) -> Option<f64> {
        let mut t_min = f64::NEG_INFINITY;
        let mut t_max = f64::INFINITY;
        for (o, d, lo, hi) in [
            (ox, dx, self.min_x, self.max_x),
            (oy, dy, self.min_y, self.max_y),
        ] {
            if d.abs() < 1e-15 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let t1 = (lo - o) / d;
                let t2 = (hi - o) / d;
                let (t1, t2) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
                t_min = t_min.max(t1);
                t_max = t_max.min(t2);
                if t_min > t_max {
                    return None;
                }
            }
        }
        if t_max < 0.0 {
            return None;
        }
        Some(if t_min >= 0.0 { t_min } else { t_max })
    }
}

/// The result of a LiDAR raycast.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RaycastHit {
    /// Distance from the ray origin to the hit, meters.
    pub distance: f64,
    /// Whether the hit surface is an arena wall (vs. an obstacle).
    pub is_wall: bool,
}

/// A rectangular indoor arena `[0, width] × [0, height]` with axis-aligned
/// box obstacles — the Vicon-tracked room the paper's missions run in.
///
/// # Example
///
/// ```
/// use roboads_models::Arena;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let arena = Arena::new(4.0, 4.0)?;
/// // A ray fired east from the center hits the east wall 2 m away.
/// let hit = arena.raycast(2.0, 2.0, 0.0).unwrap();
/// assert!((hit.distance - 2.0).abs() < 1e-12);
/// assert!(hit.is_wall);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Arena {
    width: f64,
    height: f64,
    obstacles: Vec<Aabb>,
}

impl Arena {
    /// Creates an empty arena of the given dimensions (meters).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive
    /// dimensions.
    pub fn new(width: f64, height: f64) -> Result<Self> {
        if !(width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "arena",
                value: format!("{width}x{height}"),
            });
        }
        Ok(Arena {
            width,
            height,
            obstacles: Vec::new(),
        })
    }

    /// Adds an obstacle; returns `self` for chaining.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the obstacle extends
    /// outside the arena.
    pub fn with_obstacle(mut self, obstacle: Aabb) -> Result<Self> {
        if obstacle.min_x < 0.0
            || obstacle.min_y < 0.0
            || obstacle.max_x > self.width
            || obstacle.max_y > self.height
        {
            return Err(ModelError::InvalidParameter {
                name: "obstacle",
                value: format!("{obstacle:?} outside {}x{}", self.width, self.height),
            });
        }
        self.obstacles.push(obstacle);
        Ok(self)
    }

    /// Arena width (x extent) in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Arena height (y extent) in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The obstacles.
    pub fn obstacles(&self) -> &[Aabb] {
        &self.obstacles
    }

    /// Whether a disc of radius `radius` centered at `(x, y)` is fully
    /// inside the arena and clear of all obstacles.
    pub fn is_free(&self, x: f64, y: f64, radius: f64) -> bool {
        if x - radius < 0.0
            || y - radius < 0.0
            || x + radius > self.width
            || y + radius > self.height
        {
            return false;
        }
        !self
            .obstacles
            .iter()
            .any(|o| o.inflated(radius).contains(x, y))
    }

    /// Whether the straight segment between two points stays free for a
    /// disc of radius `radius` (sampled at centimeter resolution).
    pub fn segment_is_free(&self, x0: f64, y0: f64, x1: f64, y1: f64, radius: f64) -> bool {
        let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        let steps = (len / 0.01).ceil().max(1.0) as usize;
        (0..=steps).all(|i| {
            let t = i as f64 / steps as f64;
            self.is_free(x0 + t * (x1 - x0), y0 + t * (y1 - y0), radius)
        })
    }

    /// Casts a ray from `(x, y)` along world-frame `angle` and returns
    /// the nearest hit, or `None` if the origin lies outside the arena.
    pub fn raycast(&self, x: f64, y: f64, angle: f64) -> Option<RaycastHit> {
        if x < 0.0 || y < 0.0 || x > self.width || y > self.height {
            return None;
        }
        let (dx, dy) = (angle.cos(), angle.sin());
        // Distance to the four walls.
        let mut best = RaycastHit {
            distance: f64::INFINITY,
            is_wall: true,
        };
        for (wall_pos, o, d) in [
            (0.0, x, dx),
            (self.width, x, dx),
            (0.0, y, dy),
            (self.height, y, dy),
        ] {
            if d.abs() < 1e-15 {
                continue;
            }
            let t = (wall_pos - o) / d;
            if t >= 0.0 && t < best.distance {
                best = RaycastHit {
                    distance: t,
                    is_wall: true,
                };
            }
        }
        // Obstacles may be closer.
        for obstacle in &self.obstacles {
            if let Some(t) = obstacle.raycast(x, y, dx, dy) {
                if t >= 0.0 && t < best.distance {
                    best = RaycastHit {
                        distance: t,
                        is_wall: false,
                    };
                }
            }
        }
        if best.distance.is_finite() {
            Some(best)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn arena_with_block() -> Arena {
        Arena::new(4.0, 4.0)
            .unwrap()
            .with_obstacle(Aabb::new(1.5, 1.5, 2.5, 2.5).unwrap())
            .unwrap()
    }

    #[test]
    fn raycast_hits_each_wall() {
        let a = Arena::new(4.0, 3.0).unwrap();
        let east = a.raycast(1.0, 1.0, 0.0).unwrap();
        assert!((east.distance - 3.0).abs() < 1e-12);
        let north = a.raycast(1.0, 1.0, FRAC_PI_2).unwrap();
        assert!((north.distance - 2.0).abs() < 1e-12);
        let west = a.raycast(1.0, 1.0, PI).unwrap();
        assert!((west.distance - 1.0).abs() < 1e-12);
        let south = a.raycast(1.0, 1.0, -FRAC_PI_2).unwrap();
        assert!((south.distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn raycast_diagonal() {
        let a = Arena::new(4.0, 4.0).unwrap();
        let hit = a.raycast(1.0, 1.0, std::f64::consts::FRAC_PI_4).unwrap();
        assert!((hit.distance - 3.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn obstacle_occludes_wall() {
        let a = arena_with_block();
        let hit = a.raycast(0.5, 2.0, 0.0).unwrap();
        assert!((hit.distance - 1.0).abs() < 1e-12);
        assert!(!hit.is_wall);
        // Firing the other way sees the wall.
        let wall = a.raycast(0.5, 2.0, PI).unwrap();
        assert!(wall.is_wall);
    }

    #[test]
    fn raycast_outside_arena_is_none() {
        let a = Arena::new(4.0, 4.0).unwrap();
        assert!(a.raycast(-1.0, 2.0, 0.0).is_none());
        assert!(a.raycast(2.0, 5.0, 0.0).is_none());
    }

    #[test]
    fn free_space_checks() {
        let a = arena_with_block();
        assert!(a.is_free(0.5, 0.5, 0.1));
        assert!(!a.is_free(2.0, 2.0, 0.1)); // inside obstacle
        assert!(!a.is_free(1.45, 2.0, 0.1)); // within inflation margin
        assert!(!a.is_free(0.05, 0.5, 0.1)); // too close to wall
    }

    #[test]
    fn segment_collision_detection() {
        let a = arena_with_block();
        // Straight through the obstacle.
        assert!(!a.segment_is_free(0.5, 2.0, 3.5, 2.0, 0.05));
        // Going around it.
        assert!(a.segment_is_free(0.5, 0.5, 3.5, 0.5, 0.05));
    }

    #[test]
    fn obstacle_must_be_inside_arena() {
        let r = Arena::new(2.0, 2.0)
            .unwrap()
            .with_obstacle(Aabb::new(1.5, 1.5, 2.5, 2.5).unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn aabb_validation() {
        assert!(Aabb::new(1.0, 1.0, 0.5, 2.0).is_err());
        assert!(Aabb::new(0.0, 0.0, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn aabb_raycast_from_inside() {
        let b = Aabb::new(0.0, 0.0, 2.0, 2.0).unwrap();
        // From inside the box the exit face is returned.
        assert!((b.raycast(1.0, 1.0, 1.0, 0.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arena_validation() {
        assert!(Arena::new(0.0, 1.0).is_err());
        assert!(Arena::new(1.0, f64::NAN).is_err());
    }
}
