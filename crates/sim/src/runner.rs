use roboads_stats::{SeedableRng, StdRng};

use roboads_control::{
    BicycleTracker, DifferentialDriveTracker, Mission, Path, TrackingController,
};
use roboads_core::baseline::LinearizedOnceDetector;
use roboads_core::{
    DetectionReport, IncidentCapsule, ModeSet, RecorderConfig, RoboAds, RoboAdsConfig,
};
use roboads_linalg::Vector;
use roboads_models::sensors::WheelEncoderOdometry;
use roboads_models::{presets, Pose2, RobotSystem};

use roboads_obs::Telemetry;

use crate::attacks::{build_attacks, AttackSpec};
use crate::bus::{Bus, Frame, COMMAND_ID, SENSOR_ID_BASE};
use crate::eval::{evaluate, EvalResult};
use crate::platform::RobotPlatform;
use crate::scenario::Scenario;
use crate::telemetry::TelemetrySummary;
use crate::trace::{Trace, TraceRecord};
use crate::workflow::{ActuationWorkflow, SensingWorkflow};
use crate::{Result, SimError};

/// Which evaluation robot to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobotKind {
    /// Khepera III differential drive (IPS + wheel encoder + LiDAR).
    Khepera,
    /// Tamiya TT-02 bicycle model (IPS + IMU + LiDAR).
    Tamiya,
}

/// How the monitor fills its inputs when no fresh frame for an
/// arbitration id survived the tick — trashed, dropped, or only a
/// stale-stamped replay present. The standalone mirror of
/// [`FleetIngest`]'s `DeadlinePolicy`: the monitor consumes through the
/// staleness-aware [`Bus::latest_fresh`] view and this policy decides
/// what happens on a miss, instead of the old stale-blind
/// `bus.latest(..).expect(..)` path that panicked on any trashed frame.
///
/// [`FleetIngest`]: crate::fleet::FleetSimulationBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FramePolicy {
    /// Re-use the last consumed value for the missing id and keep
    /// stepping the detector (default; a frozen input is exactly what
    /// the detector should flag).
    #[default]
    HoldLast,
    /// Freeze the detector: the step is skipped and the previous
    /// tick's report re-used until fresh frames return. Degrades to
    /// [`FramePolicy::HoldLast`] on the very first tick, when there is
    /// no previous report to freeze.
    MarkMissing,
}

/// The result of a full simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-iteration records.
    pub trace: Trace,
    /// Evaluation against the scenario's ground truth.
    pub eval: EvalResult,
    /// The final iteration's detection report.
    pub report: DetectionReport,
    /// Detector-health summary condensed from the run's telemetry
    /// registry (step latency, per-mode distributions, failure counts).
    pub telemetry: TelemetrySummary,
    /// Incident capsules sealed by the flight recorder (empty unless
    /// [`SimulationBuilder::recorder`] was configured).
    pub capsules: Vec<IncidentCapsule>,
}

/// Builder wiring an arena, mission, tracker, workflows and the RoboADS
/// detector into one reproducible closed-loop run.
///
/// # Example
///
/// ```
/// use roboads_sim::{Scenario, SimulationBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = SimulationBuilder::khepera()
///     .scenario(Scenario::wheel_logic_bomb())
///     .seed(11)
///     .run()?;
/// assert!(outcome.eval.actuator_delay().unwrap() < 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    kind: RobotKind,
    scenario: Scenario,
    seed: u64,
    config: RoboAdsConfig,
    duration: Option<usize>,
    system: Option<RobotSystem>,
    mode_set: Option<ModeSet>,
    path_override: Option<Path>,
    use_linearized_baseline: bool,
    telemetry: Option<Telemetry>,
    recorder: Option<RecorderConfig>,
    attacks: Vec<AttackSpec>,
    frame_policy: FramePolicy,
}

enum Detector {
    RoboAds(RoboAds),
    Baseline(LinearizedOnceDetector),
}

impl Detector {
    fn step(&mut self, u: &Vector, readings: &[Vector]) -> roboads_core::Result<DetectionReport> {
        match self {
            Detector::RoboAds(d) => d.step(u, readings),
            Detector::Baseline(d) => d.step(u, readings),
        }
    }

    fn record_tick(
        &mut self,
        stamp: u64,
        u: &Vector,
        readings: &[Vector],
        report: &DetectionReport,
    ) {
        if let Detector::RoboAds(d) = self {
            d.record_tick(stamp, u, readings, report);
        }
    }

    fn take_capsules(&mut self) -> Vec<IncidentCapsule> {
        if let Detector::RoboAds(d) = self {
            if let Some(recorder) = d.recorder_mut() {
                recorder.finish();
                return recorder.take_capsules();
            }
        }
        Vec::new()
    }
}

impl SimulationBuilder {
    /// Starts a Khepera run with paper-default configuration and a
    /// clean scenario.
    pub fn khepera() -> Self {
        SimulationBuilder {
            kind: RobotKind::Khepera,
            scenario: Scenario::clean(),
            seed: 0,
            config: RoboAdsConfig::paper_defaults(),
            duration: None,
            system: None,
            mode_set: None,
            path_override: None,
            use_linearized_baseline: false,
            telemetry: None,
            recorder: None,
            attacks: Vec::new(),
            frame_policy: FramePolicy::HoldLast,
        }
    }

    /// Starts a Tamiya run.
    pub fn tamiya() -> Self {
        let mut b = SimulationBuilder::khepera();
        b.kind = RobotKind::Tamiya;
        b
    }

    /// Sets the scenario (attack/failure script).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the random seed for all noise and attack streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the detector configuration (used by the Fig. 7 sweeps).
    pub fn config(mut self, config: RoboAdsConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the run length in iterations (default: the scenario's).
    pub fn duration(mut self, iterations: usize) -> Self {
        self.duration = Some(iterations);
        self
    }

    /// Overrides the robot system (e.g. a quality-scaled sensor suite
    /// for the §V-E sweep).
    pub fn system(mut self, system: RobotSystem) -> Self {
        self.system = Some(system);
        self
    }

    /// Overrides the mode set (e.g. single-reference sets for Table IV).
    pub fn mode_set(mut self, mode_set: ModeSet) -> Self {
        self.mode_set = Some(mode_set);
        self
    }

    /// Overrides the mission path (e.g. the high-curvature perimeter
    /// loop the §V-G baseline comparison drives to exercise the
    /// nonlinearity).
    pub fn path(mut self, path: Path) -> Self {
        self.path_override = Some(path);
        self
    }

    /// Uses the linearize-once baseline detector of §V-G instead of
    /// RoboADS.
    pub fn linearized_baseline(mut self, yes: bool) -> Self {
        self.use_linearized_baseline = yes;
        self
    }

    /// Supplies the telemetry context threaded through the detector
    /// pipeline and the run loop. The default context has a disabled
    /// sink (spans/events vanish without reading the clock) but a live
    /// registry, so [`SimOutcome::telemetry`] is populated either way;
    /// pass one backed by a `RingBufferSink`/`WriterSink` to also
    /// capture spans and alarm events.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a flight recorder to the RoboADS detector: every tick's
    /// stamped inputs and decision digest are captured in a ring, and a
    /// confirmed alarm freezes a pre/post window into an
    /// [`IncidentCapsule`] (see [`SimOutcome::capsules`]). Ignored by
    /// the linearize-once baseline, which has no recorder hook.
    pub fn recorder(mut self, config: RecorderConfig) -> Self {
        self.recorder = Some(config);
        self
    }

    /// Registers a bus-level attack ([`crate::attacks`]), applied at
    /// the monitor seam — after every workflow published its frames,
    /// before the monitor decodes them. Attacks compose in
    /// registration order on the same bus, and draw from their own
    /// seeded RNG stream so adding one never perturbs the plant or
    /// sensor noise.
    pub fn bus_attack(mut self, spec: AttackSpec) -> Self {
        self.attacks.push(spec);
        self
    }

    /// Sets the monitor's missing-frame policy (default
    /// [`FramePolicy::HoldLast`]).
    pub fn frame_policy(mut self, policy: FramePolicy) -> Self {
        self.frame_policy = policy;
        self
    }

    /// Executes the run.
    ///
    /// # Errors
    ///
    /// Propagates planning, detector-construction and stepping failures.
    pub fn run(self) -> Result<SimOutcome> {
        let system = match (&self.system, self.kind) {
            (Some(s), _) => s.clone(),
            (None, RobotKind::Khepera) => presets::khepera_system(),
            (None, RobotKind::Tamiya) => presets::tamiya_system(),
        };
        let arena = presets::evaluation_arena();
        let mission = Mission::evaluation_default();
        let path = match &self.path_override {
            Some(p) => p.clone(),
            None => mission.plan(&arena, 0.08)?,
        };

        // Face the initial lookahead point.
        let (sx, sy) = path.waypoints()[0];
        let (lx, ly) = path.lookahead_point(sx, sy, 0.25);
        let theta0 = (ly - sy).atan2(lx - sx);
        let x0 = Vector::from_slice(&[sx, sy, theta0]);

        let mut tracker: Box<dyn TrackingController> = match self.kind {
            RobotKind::Khepera => Box::new(DifferentialDriveTracker::new(
                path,
                presets::khepera_dynamics().wheel_base(),
                presets::CONTROL_PERIOD,
            )?),
            RobotKind::Tamiya => Box::new(BicycleTracker::new(
                path,
                presets::tamiya_dynamics().max_steer(),
                presets::CONTROL_PERIOD,
            )?),
        };

        let mode_set = self
            .mode_set
            .clone()
            .unwrap_or_else(|| ModeSet::one_reference_per_sensor(&system));
        let telemetry = self.telemetry.clone().unwrap_or_default();
        let mut detector = if self.use_linearized_baseline {
            Detector::Baseline(LinearizedOnceDetector::new(
                system.clone(),
                self.config.clone(),
                x0.clone(),
                mode_set,
            )?)
        } else {
            let mut ads = RoboAds::new(system.clone(), self.config.clone(), x0.clone(), mode_set)?
                .with_telemetry(telemetry.clone());
            if let Some(config) = self.recorder {
                ads.attach_recorder(config);
            }
            Detector::RoboAds(ads)
        };

        let misbehaviors = self.scenario.misbehaviors().to_vec();
        let mut sensing: Vec<SensingWorkflow> = (0..system.sensor_count())
            .map(|i| {
                let geometry = (system.sensor_name(i) == "wheel-encoder")
                    .then(WheelEncoderOdometry::khepera)
                    .transpose()
                    .map_err(SimError::from)?;
                SensingWorkflow::new(&system, i, &misbehaviors, geometry)
            })
            .collect::<Result<_>>()?;
        let mut actuation = ActuationWorkflow::new(&misbehaviors);
        let mut platform = RobotPlatform::new(&system, x0.clone())?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        let duration = self.duration.unwrap_or_else(|| self.scenario.duration());
        let dt = presets::CONTROL_PERIOD;
        let mut trace = Trace::new(dt, self.scenario.name());
        // The planner tracks the path using real-time IPS data (§V-A);
        // before the first reading it knows the initial pose.
        let mut controller_pose = Pose2::from_vector(&x0).expect("pose state");

        // Step latency is a metric, not a span: collected even with the
        // default disabled sink so the outcome summary always has it.
        let step_latency = telemetry.metrics().histogram("sim.step_latency_s");

        let mut bus = Bus::new();
        let (mut attacks, mut attack_rng) = build_attacks(&self.attacks, self.seed);
        // Hold-last state: before any frame for an id has ever been
        // consumed, the fallback is a zero reading of the right
        // dimension (the detector flags it; the run does not panic).
        let mut held_readings: Vec<Vector> = (0..system.sensor_count())
            .map(|i| Ok(Vector::zeros(system.sensor(i)?.dim())))
            .collect::<Result<_>>()?;
        let mut held_command = Vector::zeros(system.input_dim());
        for k in 0..duration {
            let _iter_span = telemetry.span("sim.iteration");
            let u_planned = tracker.command(&controller_pose);
            let (u_executed, d_a_true) = actuation.execute(k, &u_planned)?;
            platform.step(&system, &u_executed, &mut rng);

            // Workflows publish their readings on the communication bus
            // (Figure 1); the monitor decodes the freshest frame per
            // arbitration id. Data really round-trips through the
            // fixed-point frames.
            bus.clear();
            bus.begin_tick(k as u64);
            bus.publish(Frame::encode(COMMAND_ID, "planner", &u_planned));
            let mut d_s_true = Vec::with_capacity(sensing.len());
            for wf in &mut sensing {
                let (reading, anomaly) = wf.sense(&system, k, platform.state(), &mut rng)?;
                bus.publish(Frame::encode(
                    SENSOR_ID_BASE + wf.sensor_index() as u16,
                    system.sensor_name(wf.sensor_index()),
                    &reading,
                ));
                d_s_true.push(anomaly);
            }
            // Bus-level attacks sit between publish and decode: the
            // monitor seam of `crate::attacks`.
            for attack in &mut attacks {
                attack.apply(k, &mut bus, &mut attack_rng);
            }

            // The monitor consumes the staleness-aware fresh view; a
            // trashed/replayed id falls back per `FramePolicy` instead
            // of panicking. With every frame on time this is the same
            // frame set `latest` would serve.
            let mut missing = false;
            let readings: Vec<Vector> = (0..system.sensor_count())
                .map(|i| match bus.latest_fresh(SENSOR_ID_BASE + i as u16) {
                    Some(frame) => {
                        held_readings[i] = frame.decode();
                        held_readings[i].clone()
                    }
                    None => {
                        missing = true;
                        held_readings[i].clone()
                    }
                })
                .collect();
            let u_monitored = match bus.latest_fresh(COMMAND_ID) {
                Some(frame) => {
                    held_command = frame.decode();
                    held_command.clone()
                }
                None => {
                    missing = true;
                    held_command.clone()
                }
            };

            let freeze = missing
                && self.frame_policy == FramePolicy::MarkMissing
                && !trace.records().is_empty();
            let report = if freeze {
                // Frozen tick: the detector neither steps nor records —
                // the previous report stands until fresh frames return.
                trace.records().last().expect("non-empty").report.clone()
            } else {
                let step_started = std::time::Instant::now();
                let report = detector.step(&u_monitored, &readings)?;
                step_latency.record(step_started.elapsed().as_secs_f64());
                // Stamped with the bus tick so a capsule's timeline
                // matches the frames it was decoded from.
                detector.record_tick(k as u64, &u_monitored, &readings, &report);
                report
            };
            controller_pose = Pose2::from_vector(&readings[0]).expect("IPS readings carry a pose");

            trace.push(TraceRecord {
                k,
                time: (k + 1) as f64 * dt,
                true_state: platform.state().clone(),
                planned_command: u_planned,
                executed_command: u_executed,
                true_actuator_anomaly: d_a_true,
                readings,
                true_sensor_anomalies: d_s_true,
                report,
            });
        }

        let capsules = detector.take_capsules();
        let eval = evaluate(&trace, &self.scenario.ground_truth());
        let report =
            trace
                .records()
                .last()
                .map(|r| r.report.clone())
                .ok_or(SimError::InvalidParameter {
                    name: "duration",
                    value: "0".into(),
                })?;
        Ok(SimOutcome {
            trace,
            eval,
            report,
            telemetry: TelemetrySummary::from_registry(telemetry.metrics()),
            capsules,
        })
    }
}

/// A fresh, never-stepped RoboADS detector constructed exactly as
/// [`SimulationBuilder::run`] builds its own (same evaluation arena,
/// planned path, initial pose and default mode set) — the detector a
/// capsule replay needs: [`roboads_core::replay_capsule`] requires an
/// anchor-state twin of the recorded detector at birth.
///
/// # Errors
///
/// Propagates planning and detector-construction failures.
pub fn evaluation_detector(kind: RobotKind, config: &RoboAdsConfig) -> Result<RoboAds> {
    let system = match kind {
        RobotKind::Khepera => presets::khepera_system(),
        RobotKind::Tamiya => presets::tamiya_system(),
    };
    let arena = presets::evaluation_arena();
    let mission = Mission::evaluation_default();
    let path = mission.plan(&arena, 0.08)?;
    let (sx, sy) = path.waypoints()[0];
    let (lx, ly) = path.lookahead_point(sx, sy, 0.25);
    let theta0 = (ly - sy).atan2(lx - sx);
    let x0 = Vector::from_slice(&[sx, sy, theta0]);
    let mode_set = ModeSet::one_reference_per_sensor(&system);
    Ok(RoboAds::new(system, config.clone(), x0, mode_set)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_khepera_run_is_mostly_quiet() {
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .seed(42)
            .run()
            .unwrap();
        assert_eq!(outcome.trace.len(), 200);
        assert!(
            outcome.eval.sensor_fpr() < 0.05,
            "fpr {}",
            outcome.eval.sensor_fpr()
        );
        assert!(outcome.eval.actuator_fpr() < 0.05);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            SimulationBuilder::khepera()
                .scenario(Scenario::ips_logic_bomb())
                .seed(seed)
                .duration(80)
                .run()
                .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(
            a.trace.records()[79].true_state,
            b.trace.records()[79].true_state
        );
        assert_eq!(a.report.misbehaving_sensors, b.report.misbehaving_sensors);
        let c = run(10);
        assert_ne!(
            a.trace.records()[79].true_state,
            c.trace.records()[79].true_state
        );
    }

    #[test]
    fn ips_spoofing_is_detected_and_identified() {
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::ips_spoofing())
            .seed(7)
            .run()
            .unwrap();
        assert_eq!(outcome.report.misbehaving_sensors, vec![0]);
        let delay = outcome.eval.sensor_delay().expect("should detect");
        assert!(delay < 1.0, "delay {delay}");
        assert!(outcome.eval.sensor_fnr() < 0.1);
    }

    #[test]
    fn wheel_logic_bomb_raises_actuator_alarm() {
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::wheel_logic_bomb())
            .seed(13)
            .run()
            .unwrap();
        assert!(outcome.report.actuator_alarm);
        assert!(outcome.eval.actuator_delay().unwrap() < 1.5);
        assert!(outcome.eval.actuator_fnr() < 0.15);
    }

    #[test]
    fn tamiya_runs_with_distinct_dynamics() {
        let outcome = SimulationBuilder::tamiya()
            .scenario(Scenario::tamiya_ips_spoofing())
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(outcome.report.misbehaving_sensors, vec![0]);
    }

    /// The bugfix pin: routing consumption through `latest_fresh` plus
    /// a hold-last/missing policy is *bitwise* invisible when every
    /// frame arrives on time — both policies reproduce the same trace,
    /// because neither ever fires.
    #[test]
    fn frame_policies_are_bitwise_invisible_when_all_frames_arrive() {
        let run = |policy| {
            SimulationBuilder::khepera()
                .scenario(Scenario::ips_spoofing())
                .seed(11)
                .duration(60)
                .frame_policy(policy)
                .run()
                .unwrap()
        };
        let hold = run(FramePolicy::HoldLast);
        let mark = run(FramePolicy::MarkMissing);
        for (a, b) in hold.trace.records().iter().zip(mark.trace.records()) {
            assert_eq!(a.readings, b.readings, "step {}", a.k);
            assert_eq!(a.report, b.report, "step {}", a.k);
        }
    }

    /// The old consumption path panicked on the first trashed frame
    /// ("every workflow published"); now a frame-trashing run completes,
    /// holds the last reading, and the detector indicts the frozen
    /// sensor.
    #[test]
    fn frame_trashing_holds_last_and_still_detects() {
        use crate::attacks::{AttackKind, AttackSpec};
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .seed(5)
            .bus_attack(AttackSpec::new(
                AttackKind::FrameTrash,
                0,
                0.0,
                60,
                Some(60),
            ))
            .run()
            .unwrap();
        let records = outcome.trace.records();
        // Held: the IPS reading freezes at its last authentic value.
        assert_eq!(records[60].readings[0], records[59].readings[0]);
        assert_eq!(records[90].readings[0], records[59].readings[0]);
        // A frozen pose on a moving robot is an indictable anomaly.
        assert!(
            records[60..120]
                .iter()
                .any(|r| r.report.misbehaving_sensors.contains(&0)),
            "frozen IPS should be identified"
        );
        // After the window the authentic stream resumes.
        assert_ne!(records[121].readings[0], records[59].readings[0]);
    }

    /// Under `MarkMissing` the detector freezes instead: no new reports
    /// are produced while frames are missing.
    #[test]
    fn mark_missing_freezes_the_report_stream() {
        use crate::attacks::{AttackKind, AttackSpec};
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .seed(5)
            .duration(100)
            .frame_policy(FramePolicy::MarkMissing)
            .bus_attack(AttackSpec::new(
                AttackKind::FrameTrash,
                0,
                0.0,
                40,
                Some(20),
            ))
            .run()
            .unwrap();
        let records = outcome.trace.records();
        for k in 40..60 {
            assert_eq!(
                records[k].report, records[39].report,
                "report not frozen at {k}"
            );
        }
        assert_ne!(records[60].report.iteration, records[39].report.iteration);
    }

    #[test]
    fn zero_duration_is_an_error() {
        let r = SimulationBuilder::khepera().duration(0).run();
        assert!(r.is_err());
    }

    #[test]
    fn outcome_telemetry_summarizes_the_run() {
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::clean())
            .seed(1)
            .duration(40)
            .run()
            .unwrap();
        let t = &outcome.telemetry;
        assert_eq!(t.steps, 40);
        assert_eq!(t.step_latency.count, 40);
        assert!(t.step_latency.p50 > 0.0);
        assert!(t.step_latency.p99 >= t.step_latency.p50);
        assert_eq!(t.modes.len(), 3, "one hypothesis per sensor");
        assert_eq!(t.numeric_failures, 0);
        // Per-mode histograms sample 1-in-16 commits (first commit
        // included): 40 iterations sample commits 1, 17 and 33.
        assert_eq!(t.modes[0].probability.count, 3);
        let json = t.to_json();
        assert!(json.contains("\"steps\":40"), "json {json}");
    }

    #[test]
    fn ring_buffer_telemetry_captures_spans_and_alarm_events() {
        use roboads_obs::{RingBufferSink, Telemetry};
        use std::sync::Arc;
        let ring = Arc::new(RingBufferSink::new(100_000));
        let outcome = SimulationBuilder::khepera()
            .scenario(Scenario::ips_spoofing())
            .seed(7)
            .telemetry(Telemetry::new(ring.clone()))
            .run()
            .unwrap();
        assert!(outcome.report.sensor_misbehavior_detected());
        let spans = ring.spans();
        assert!(spans.iter().any(|s| s.name == "engine.step"));
        assert!(spans.iter().any(|s| s.name == "sim.iteration"));
        let events = ring.events();
        assert!(
            events
                .iter()
                .any(|e| e.name == "decision.sensor_alarm_confirmed"),
            "spoofing run must log a confirmed sensor alarm"
        );
        assert!(outcome.telemetry.sensor_alarms >= 1);
    }
}
