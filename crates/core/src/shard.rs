//! Sharded fleet service: hash-partitioned [`FleetEngine`] +
//! [`FleetIngest`] pairs with whole-signature-group work stealing,
//! periodic snapshots and journal-replay crash recovery
//! (`DESIGN.md` §18).
//!
//! One [`FleetEngine`] scales across cores but is still a single
//! synchronization domain: every robot crosses the same tick barrier,
//! and one process owns all state. The [`ShardedFleet`] splits a fleet
//! into `S` fully independent shards — each its own engine + ingest
//! pair, stepped on its own worker thread — so the only cross-shard
//! coupling is the tick cadence the caller drives.
//!
//! Three invariants make the shards a *service* rather than just a
//! partition:
//!
//! * **Determinism per robot.** A robot's arithmetic depends only on
//!   its own frames (pinned transitively by
//!   `tests/fleet_determinism.rs`), so shard assignment, shard count
//!   and stealing cannot perturb any robot's verdicts.
//! * **Recoverability.** Every accepted frame is journaled; each shard
//!   periodically captures a [`crate::snapshot_fleet`] snapshot and
//!   truncates its journal. Losing a shard's live state loses nothing:
//!   [`ShardedFleet::recover_shard`] rebuilds twins from the robot
//!   factory, restores the snapshot and re-feeds the journal through
//!   the ordinary ingest path — bitwise identical to never crashing.
//! * **Whole-group stealing.** Load balancing migrates robots at
//!   signature-group granularity ([`FleetEngine::signature_groups`],
//!   §16), so a stolen group's slab tiles arrive intact on the
//!   recipient and neither shard's SIMD batching degrades. Both
//!   parties snapshot immediately after a migration, keeping the
//!   snapshot + journal recovery story sound across moves.

use std::collections::HashMap;
use std::sync::Arc;

use roboads_linalg::Vector;

use crate::detector::RoboAds;
use crate::fleet::FleetEngine;
use crate::ingest::FleetIngest;
use crate::report::DetectionReport;
use crate::snapshot;
use crate::{CoreError, Result};

/// Builds one robot's detector from its global id. Recovery calls this
/// to reconstruct a crashed shard's twins, so it must be deterministic:
/// the same id always yields an identically-configured detector (the
/// twin-reconstruction discipline of [`crate::replay_capsule`]).
pub type RobotFactory = Arc<dyn Fn(u64) -> Result<RoboAds> + Send + Sync>;

/// Configuration of a [`ShardedFleet`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
    /// Robot-grain worker threads inside each shard's [`FleetEngine`]
    /// (`1` = each shard steps its robots sequentially on its own
    /// worker — the usual choice, since sharding already spreads the
    /// fleet across cores).
    pub threads_per_shard: usize,
    /// Ticks between automatic per-shard snapshots (`0` = snapshot
    /// only on demand / after migrations). Each snapshot truncates the
    /// shard's journal, bounding both recovery replay time and journal
    /// memory.
    pub snapshot_period: u64,
    /// Minimum robot-count imbalance between the fullest and emptiest
    /// shard before [`ShardedFleet::rebalance`] migrates a group
    /// (`0` disables stealing).
    pub steal_margin: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            threads_per_shard: 1,
            snapshot_period: 64,
            steal_margin: 0,
        }
    }
}

/// One journaled ingest frame: exactly the arguments of
/// [`ShardedFleet::offer`] / [`ShardedFleet::offer_input`], addressed
/// by **global** robot id so the journal survives local renumbering.
/// Also the unit the binary wire front-end (`roboads-wire`) decodes
/// into.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedFrame {
    /// Global robot id.
    pub robot: u64,
    /// Sensing workflow index, or `None` for the planned actuator
    /// command `u_{k-1}`.
    pub sensor: Option<u32>,
    /// The tick the frame belongs to (must match the shard's staging
    /// window to be accepted — late frames are rejected, not queued).
    pub tick: u64,
    /// The reading / command values.
    pub values: Vec<f64>,
}

/// Point-in-time health of one shard (see [`ShardedFleet::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Robots currently homed on this shard.
    pub robots: usize,
    /// The shard's current staging tick.
    pub tick: u64,
    /// Journaled frames since the last snapshot (replay backlog).
    pub journal_frames: usize,
    /// Tick of the last snapshot, if one was taken.
    pub snapshot_tick: Option<u64>,
}

struct Shard {
    engine: FleetEngine,
    ingest: FleetIngest,
    /// Local fleet index -> global robot id.
    robots: Vec<u64>,
    /// Accepted frames since the last snapshot, in acceptance order.
    journal: Vec<StampedFrame>,
    /// Last captured snapshot: `(staging tick at capture, bytes)`.
    snapshot: Option<(u64, Vec<u8>)>,
    /// Batch-level outcome of the shard's last step.
    last_result: Result<()>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("robots", &self.robots)
            .field("journal_frames", &self.journal.len())
            .field("snapshot_tick", &self.snapshot.as_ref().map(|(t, _)| *t))
            .finish_non_exhaustive()
    }
}

/// SplitMix64 finalizer: the stateless hash that partitions robot ids
/// across shards. Deterministic and well-mixed for sequential ids, so
/// `0..N` spreads evenly without coordination.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fleet split into independent engine + ingest shards. See the
/// module docs for the design; `DESIGN.md` §18 for the protocol.
pub struct ShardedFleet {
    shards: Vec<Shard>,
    /// Global robot id -> `(shard, local fleet index)`. Maintained
    /// across migrations; the single source of routing truth.
    routing: HashMap<u64, (usize, usize)>,
    factory: RobotFactory,
    snapshot_period: u64,
    steal_margin: usize,
    /// Completed group migrations.
    steals: u64,
}

impl std::fmt::Debug for ShardedFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleet")
            .field("shards", &self.shards)
            .field("steals", &self.steals)
            .finish_non_exhaustive()
    }
}

impl ShardedFleet {
    /// Builds a sharded fleet: each robot id is hashed onto its home
    /// shard ([`splitmix64`]`(id) % shards`), its detector built via
    /// `factory`, and each shard gets its own [`FleetEngine`] and
    /// [`FleetIngest`] pair.
    ///
    /// # Errors
    ///
    /// Any factory error, or [`CoreError::BadReadings`] on duplicate
    /// robot ids.
    pub fn new(robot_ids: &[u64], factory: RobotFactory, config: ShardConfig) -> Result<Self> {
        let shard_count = config.shards.max(1);
        let mut members: Vec<Vec<u64>> = vec![Vec::new(); shard_count];
        let mut seen = HashMap::new();
        for &id in robot_ids {
            if seen.insert(id, ()).is_some() {
                return Err(CoreError::BadReadings {
                    reason: format!("duplicate robot id {id} in sharded fleet"),
                });
            }
            members[(splitmix64(id) % shard_count as u64) as usize].push(id);
        }
        let mut shards = Vec::with_capacity(shard_count);
        let mut routing = HashMap::with_capacity(robot_ids.len());
        for (s, ids) in members.into_iter().enumerate() {
            let detectors: Vec<RoboAds> =
                ids.iter().map(|&id| factory(id)).collect::<Result<_>>()?;
            let engine = FleetEngine::new(detectors, config.threads_per_shard);
            let ingest = FleetIngest::for_fleet(&engine);
            for (local, &id) in ids.iter().enumerate() {
                routing.insert(id, (s, local));
            }
            shards.push(Shard {
                engine,
                ingest,
                robots: ids,
                journal: Vec::new(),
                snapshot: None,
                last_result: Ok(()),
            });
        }
        Ok(ShardedFleet {
            shards,
            routing,
            factory,
            snapshot_period: config.snapshot_period,
            steal_margin: config.steal_margin,
            steals: 0,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total robots across all shards.
    pub fn robot_count(&self) -> usize {
        self.routing.len()
    }

    /// The shard currently homing `robot`, if it exists.
    pub fn shard_of(&self, robot: u64) -> Option<usize> {
        self.routing.get(&robot).map(|&(s, _)| s)
    }

    /// The fleet-wide tick cadence (every shard steps in lockstep, so
    /// any shard's staging tick is *the* tick).
    pub fn tick(&self) -> u64 {
        self.shards.first().map_or(0, |s| s.ingest.tick())
    }

    /// Completed whole-group migrations (see
    /// [`ShardedFleet::rebalance`]).
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Per-shard health, in shard order.
    pub fn status(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| ShardStatus {
                shard: s,
                robots: shard.robots.len(),
                tick: shard.ingest.tick(),
                journal_frames: shard.journal.len(),
                snapshot_tick: shard.snapshot.as_ref().map(|(t, _)| *t),
            })
            .collect()
    }

    fn route(&self, robot: u64) -> Result<(usize, usize)> {
        self.routing
            .get(&robot)
            .copied()
            .ok_or_else(|| CoreError::BadReadings {
                reason: format!("unknown robot id {robot} offered to sharded fleet"),
            })
    }

    /// Routes and stages one sensor frame (see
    /// [`FleetIngest::offer_stamped`]); accepted frames are journaled
    /// for crash recovery. Returns whether the frame matched the
    /// shard's current staging window.
    pub fn offer(
        &mut self,
        robot: u64,
        sensor: usize,
        reading: &Vector,
        tick: u64,
    ) -> Result<bool> {
        let (s, local) = self.route(robot)?;
        let shard = &mut self.shards[s];
        let accepted = shard.ingest.offer_stamped(local, sensor, reading, tick)?;
        if accepted {
            shard.journal.push(StampedFrame {
                robot,
                sensor: Some(sensor as u32),
                tick,
                values: reading.as_slice().to_vec(),
            });
        }
        Ok(accepted)
    }

    /// Routes and stages one planned-command frame (see
    /// [`FleetIngest::offer_input_stamped`]); journaled when accepted.
    pub fn offer_input(&mut self, robot: u64, u_prev: &Vector, tick: u64) -> Result<bool> {
        let (s, local) = self.route(robot)?;
        let shard = &mut self.shards[s];
        let accepted = shard.ingest.offer_input_stamped(local, u_prev, tick)?;
        if accepted {
            shard.journal.push(StampedFrame {
                robot,
                sensor: None,
                tick,
                values: u_prev.as_slice().to_vec(),
            });
        }
        Ok(accepted)
    }

    /// Offers an already-decoded frame (the wire front-end's unit).
    pub fn offer_frame(&mut self, frame: &StampedFrame) -> Result<bool> {
        let values = Vector::from_slice(&frame.values);
        match frame.sensor {
            Some(sensor) => self.offer(frame.robot, sensor as usize, &values, frame.tick),
            None => self.offer_input(frame.robot, &values, frame.tick),
        }
    }

    /// Crosses the tick boundary on every shard concurrently: each
    /// shard swaps its staging window and steps its fleet on its own
    /// worker thread ([`FleetIngest::step`]). Afterwards, takes the
    /// periodic snapshots that fall due.
    ///
    /// # Errors
    ///
    /// The first failing shard's batch error, in shard order — but
    /// *every* shard completes its tick regardless (exactly the
    /// fleet-level contract: a failing robot never stalls neighbours).
    /// Per-robot outcomes stay queryable via [`ShardedFleet::result`].
    pub fn step(&mut self) -> Result<()> {
        if self.shards.len() == 1 {
            let shard = &mut self.shards[0];
            shard.last_result = shard.ingest.step(&mut shard.engine);
        } else {
            std::thread::scope(|scope| {
                for shard in self.shards.iter_mut() {
                    scope.spawn(move || {
                        shard.last_result = shard.ingest.step(&mut shard.engine);
                    });
                }
            });
        }
        if self.snapshot_period > 0 {
            for s in 0..self.shards.len() {
                if self.shards[s]
                    .ingest
                    .tick()
                    .is_multiple_of(self.snapshot_period)
                {
                    self.snapshot_shard(s);
                }
            }
        }
        for shard in &self.shards {
            if let Err(e) = &shard.last_result {
                return Err(e.clone());
            }
        }
        Ok(())
    }

    /// Captures shard `s`'s snapshot now and truncates its journal.
    /// Returns the snapshot size in bytes.
    pub fn snapshot_shard(&mut self, s: usize) -> usize {
        let shard = &mut self.shards[s];
        let bytes = snapshot::snapshot_fleet(&shard.engine, &shard.ingest);
        let len = bytes.len();
        shard.snapshot = Some((shard.ingest.tick(), bytes));
        shard.journal.clear();
        len
    }

    /// Snapshots every shard (e.g. before a planned shutdown).
    pub fn snapshot_all(&mut self) {
        for s in 0..self.shards.len() {
            self.snapshot_shard(s);
        }
    }

    /// Rebuilds shard `s` from durable state only — the robot factory,
    /// the last snapshot and the journal — discarding its live engine
    /// and ingest entirely. This *is* the crash-recovery path: nothing
    /// of the lost in-memory state is consulted beyond construction
    /// configuration (robot roster, deadline policies, thread count).
    ///
    /// The journal replays through the ordinary ingest path — stamped
    /// offers, one [`FleetIngest::step`] per tick boundary — so the
    /// recovered shard is bitwise identical to one that never crashed:
    /// same filter states, same activation banks, same open decision
    /// windows, same staging buffers.
    ///
    /// # Errors
    ///
    /// Factory or snapshot-restore errors; the shard is left untouched
    /// on failure.
    pub fn recover_shard(&mut self, s: usize) -> Result<()> {
        let factory = Arc::clone(&self.factory);
        let shard = &mut self.shards[s];
        let detectors: Vec<RoboAds> = shard
            .robots
            .iter()
            .map(|&id| factory(id))
            .collect::<Result<_>>()?;
        let mut engine = FleetEngine::new(detectors, shard.engine.threads());
        let mut ingest = FleetIngest::for_fleet(&engine);
        for robot in 0..ingest.len() {
            ingest.set_policy(robot, shard.ingest.policy(robot));
        }
        if let Some((_, bytes)) = &shard.snapshot {
            snapshot::restore_fleet(&mut engine, &mut ingest, bytes)?;
        }
        let target = shard.ingest.tick();
        for frame in &shard.journal {
            // Reach the frame's staging window first: step errors
            // (missed deadlines among them) were already reported live
            // and do not abort the replay, mirroring the live run.
            while ingest.tick() < frame.tick {
                let _ = ingest.step(&mut engine);
            }
            let local = self
                .routing
                .get(&frame.robot)
                .map(|&(_, local)| local)
                .ok_or_else(|| {
                    snapshot::snapshot_err(format!(
                        "journaled robot {} no longer routed",
                        frame.robot
                    ))
                })?;
            let values = Vector::from_slice(&frame.values);
            match frame.sensor {
                Some(sensor) => {
                    ingest.offer_stamped(local, sensor as usize, &values, frame.tick)?;
                }
                None => {
                    ingest.offer_input_stamped(local, &values, frame.tick)?;
                }
            }
        }
        while ingest.tick() < target {
            let _ = ingest.step(&mut engine);
        }
        shard.engine = engine;
        shard.ingest = ingest;
        shard.last_result = Ok(());
        Ok(())
    }

    /// One balancing pass: while the fullest and emptiest shards differ
    /// by more than `steal_margin` robots, migrate one whole signature
    /// group from the fullest to the emptiest. Groups never split —
    /// the stolen robots arrive as one contiguous signature run, so
    /// both shards keep their slab tiling (§16) — and both shards
    /// snapshot immediately after each move, keeping snapshot + journal
    /// recovery sound. Returns the number of robots migrated.
    pub fn rebalance(&mut self) -> usize {
        if self.steal_margin == 0 || self.shards.len() < 2 {
            return 0;
        }
        let mut moved_total = 0;
        loop {
            let (donor, recipient) = {
                let mut max = 0;
                let mut min = 0;
                for (s, shard) in self.shards.iter().enumerate() {
                    if shard.robots.len() > self.shards[max].robots.len() {
                        max = s;
                    }
                    if shard.robots.len() < self.shards[min].robots.len() {
                        min = s;
                    }
                }
                (max, min)
            };
            let imbalance = self.shards[donor].robots.len() - self.shards[recipient].robots.len();
            if imbalance <= self.steal_margin {
                break;
            }
            // Largest group that still improves balance (moving g
            // robots changes the gap by 2g, so any g < imbalance
            // helps); none fitting means the donor is one indivisible
            // group — stop rather than split it.
            let groups = self.shards[donor].engine.signature_groups();
            let Some(group) = groups
                .into_iter()
                .filter(|g| g.len() < imbalance)
                .max_by_key(|g| g.len())
            else {
                break;
            };
            let moved = group.len();
            self.move_group(donor, recipient, &group);
            moved_total += moved;
        }
        moved_total
    }

    /// Migrates the robots at the donor's (ascending) fleet indices to
    /// the recipient, preserving detector state, staged ingest buffers
    /// and hold-last history byte for byte.
    fn move_group(&mut self, donor: usize, recipient: usize, fleet_indices: &[usize]) {
        debug_assert!(fleet_indices.windows(2).all(|w| w[0] < w[1]));
        let moved_ids: Vec<u64> = fleet_indices
            .iter()
            .map(|&i| self.shards[donor].robots[i])
            .collect();
        let detectors = self.shards[donor].engine.remove_robots(fleet_indices);
        let slots = self.shards[donor].ingest.remove_slots(fleet_indices);
        let mut keep = vec![true; self.shards[donor].robots.len()];
        for &i in fleet_indices {
            keep[i] = false;
        }
        let mut kept = Vec::with_capacity(keep.len() - fleet_indices.len());
        for (i, id) in self.shards[donor].robots.iter().enumerate() {
            if keep[i] {
                kept.push(*id);
            }
        }
        self.shards[donor].robots = kept;
        for detector in detectors {
            self.shards[recipient].engine.push(detector);
        }
        self.shards[recipient].ingest.append_slots(slots);
        self.shards[recipient].robots.extend(moved_ids);
        for (s, shard) in self.shards.iter().enumerate() {
            for (local, &id) in shard.robots.iter().enumerate() {
                self.routing.insert(id, (s, local));
            }
        }
        // A migration invalidates both parties' journals (the movers'
        // history is split across them); fresh snapshots restore the
        // recovery invariant.
        self.snapshot_shard(donor);
        self.snapshot_shard(recipient);
        self.steals += 1;
    }

    /// Robot `robot`'s report from the last completed tick.
    pub fn report(&self, robot: u64) -> Option<&DetectionReport> {
        let &(s, local) = self.routing.get(&robot)?;
        Some(self.shards[s].engine.report(local))
    }

    /// Robot `robot`'s outcome from the last completed tick.
    pub fn result(&self, robot: u64) -> Option<&Result<()>> {
        let &(s, local) = self.routing.get(&robot)?;
        Some(self.shards[s].engine.result(local))
    }

    /// Robot `robot`'s detector.
    pub fn detector(&self, robot: u64) -> Option<&RoboAds> {
        let &(s, local) = self.routing.get(&robot)?;
        Some(self.shards[s].engine.detector(local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    fn factory() -> RobotFactory {
        Arc::new(|_id| {
            let system = presets::khepera_system();
            let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
            RoboAds::with_defaults(system, x0)
        })
    }

    #[test]
    fn partition_covers_every_robot_exactly_once() {
        let ids: Vec<u64> = (0..64).collect();
        let fleet = ShardedFleet::new(
            &ids,
            factory(),
            ShardConfig {
                shards: 4,
                ..ShardConfig::default()
            },
        )
        .unwrap();
        assert_eq!(fleet.shard_count(), 4);
        assert_eq!(fleet.robot_count(), 64);
        let status = fleet.status();
        assert_eq!(status.iter().map(|s| s.robots).sum::<usize>(), 64);
        // The hash spreads 64 sequential ids over 4 shards reasonably.
        for s in &status {
            assert!(
                s.robots >= 8,
                "shard {} got only {} robots",
                s.shard,
                s.robots
            );
        }
        for id in ids {
            assert!(fleet.shard_of(id).is_some());
        }
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        assert!(ShardedFleet::new(&[1, 2, 1], factory(), ShardConfig::default()).is_err());
    }

    #[test]
    fn unknown_robot_offers_are_rejected() {
        let mut fleet = ShardedFleet::new(&[1, 2], factory(), ShardConfig::default()).unwrap();
        let v = Vector::from_slice(&[0.0, 0.0]);
        assert!(fleet.offer_input(99, &v, 0).is_err());
    }
}
