//! Fleet-wide live health aggregation and exposition.
//!
//! [`FleetHealth`] folds each tick's fleet state — per-robot detector
//! verdicts from the [`FleetEngine`](crate::FleetEngine), slot freshness
//! from the [`FleetIngest`](crate::FleetIngest), capsule counts from the
//! attached flight recorders — into a board renderable two ways:
//!
//! * [`FleetHealth::to_json`] — a machine-readable snapshot for
//!   dashboards and tests,
//! * [`FleetHealth::to_prometheus`] — Prometheus-style text exposition
//!   (`roboads_robot_*` series labelled `robot="<index>"`,
//!   `roboads_fleet_*` aggregates, plus the telemetry registry's
//!   metrics rendered through [`roboads_obs::expose`]).

use roboads_obs::expose::{render_snapshot, PrometheusText};
use roboads_obs::json::JsonObject;
use roboads_obs::Telemetry;

use crate::fleet::FleetEngine;
use crate::ingest::{FleetIngest, SlotState};
use crate::shard::{ShardStatus, ShardedFleet};
use crate::CoreError;

/// Rolling per-robot health state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobotHealth {
    /// Last completed detector iteration.
    pub iteration: u64,
    /// Last selected mode.
    pub selected_mode: usize,
    /// Currently active (non-dormant) estimator modes — the bank size
    /// unless the robot's lazy activation policy parked part of it
    /// (see `DESIGN.md` §17).
    pub active_modes: u64,
    /// Whether the sensor alarm is currently raised.
    pub sensor_alarm: bool,
    /// Whether the actuator alarm is currently raised.
    pub actuator_alarm: bool,
    /// Currently identified misbehaving sensors.
    pub misbehaving_sensors: Vec<usize>,
    /// Consecutive ticks since the robot last completed a step.
    pub staleness: u64,
    /// Total missed tick deadlines ([`CoreError::MissedDeadline`]).
    pub missed_deadlines: u64,
    /// Total non-deadline step errors.
    pub errors: u64,
    /// Ticks the ingest published this robot fresh.
    pub fresh: u64,
    /// Ticks published from held values.
    pub held: u64,
    /// Ticks with no publishable input set.
    pub missing: u64,
    /// Incident capsules sealed by the robot's flight recorder.
    pub capsules: u64,
}

/// Fleet-wide health aggregator; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct FleetHealth {
    robots: Vec<RobotHealth>,
    ticks: u64,
    /// Signature groups on the slab path (see
    /// [`FleetEngine::slab_groups`]); refreshed from the fleet at every
    /// [`FleetHealth::observe`].
    slab_groups: u64,
    /// Robots stepped through slab tiles.
    slab_robots: u64,
    /// Robots stepped per-robot.
    scalar_robots: u64,
    /// Per-shard rows when the fleet runs as a sharded service
    /// (`DESIGN.md` §18); empty for single-process fleets.
    shards: Vec<ShardStatus>,
    /// Whole-group migrations completed by the shard balancer.
    steals: u64,
    telemetry: Option<Telemetry>,
}

impl FleetHealth {
    /// An aggregator for `robots` robots.
    pub fn new(robots: usize) -> Self {
        FleetHealth {
            robots: vec![RobotHealth::default(); robots],
            ticks: 0,
            slab_groups: 0,
            slab_robots: 0,
            scalar_robots: 0,
            shards: Vec::new(),
            steals: 0,
            telemetry: None,
        }
    }

    /// Attaches the telemetry context whose metrics (e.g. step-latency
    /// histograms) are appended to the exposition.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The per-robot health rows.
    pub fn robots(&self) -> &[RobotHealth] {
        &self.robots
    }

    /// Folds one completed fleet tick into the board. Call after each
    /// `step_batch`/`FleetIngest::step`; `ingest` adds slot-freshness
    /// accounting when the fleet runs behind an ingest boundary.
    ///
    /// # Panics
    ///
    /// Panics if `fleet.len()` differs from the aggregator's size.
    pub fn observe(&mut self, fleet: &FleetEngine, ingest: Option<&FleetIngest>) {
        assert_eq!(
            fleet.len(),
            self.robots.len(),
            "FleetHealth sized for {} robots, fleet has {}",
            self.robots.len(),
            fleet.len()
        );
        self.ticks += 1;
        self.slab_groups = fleet.slab_groups() as u64;
        self.slab_robots = fleet.slab_robots() as u64;
        self.scalar_robots = fleet.scalar_robots() as u64;
        for (i, robot) in self.robots.iter_mut().enumerate() {
            match fleet.result(i) {
                Ok(()) => {
                    let report = fleet.report(i);
                    robot.iteration = report.iteration;
                    robot.selected_mode = report.selected_mode;
                    robot.sensor_alarm = report.sensor_alarm;
                    robot.actuator_alarm = report.actuator_alarm;
                    robot.misbehaving_sensors.clear();
                    robot
                        .misbehaving_sensors
                        .extend_from_slice(&report.misbehaving_sensors);
                    robot.staleness = 0;
                }
                Err(CoreError::MissedDeadline { .. }) => {
                    robot.missed_deadlines += 1;
                    robot.staleness += 1;
                }
                Err(_) => {
                    robot.errors += 1;
                    robot.staleness += 1;
                }
            }
            if let Some(ingest) = ingest {
                match ingest.state(i) {
                    SlotState::Fresh => robot.fresh += 1,
                    SlotState::Held => robot.held += 1,
                    SlotState::Missing => robot.missing += 1,
                }
            }
            robot.active_modes = fleet.detector(i).active_modes() as u64;
            robot.capsules = fleet
                .detector(i)
                .recorder()
                .map(|r| r.capsules().len() as u64)
                .unwrap_or(0);
        }
    }

    /// Folds a sharded service's topology into the board: one row per
    /// shard (robot count, tick, journal backlog, last snapshot) plus
    /// the balancer's migration count. Call alongside
    /// [`FleetHealth::observe`]-style per-tick observation, or at
    /// whatever cadence the dashboard scrapes.
    pub fn observe_shards(&mut self, fleet: &ShardedFleet) {
        self.shards = fleet.status();
        self.steals = fleet.steals();
    }

    /// Per-shard rows from the last [`FleetHealth::observe_shards`]
    /// (empty for single-process fleets).
    pub fn shards(&self) -> &[ShardStatus] {
        &self.shards
    }

    /// Whole-group migrations completed by the shard balancer.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Robots with any alarm currently raised.
    pub fn alarmed(&self) -> usize {
        self.robots
            .iter()
            .filter(|r| r.sensor_alarm || r.actuator_alarm)
            .count()
    }

    /// Total missed deadlines across the fleet.
    pub fn missed_deadlines(&self) -> u64 {
        self.robots.iter().map(|r| r.missed_deadlines).sum()
    }

    /// Total sealed capsules across the fleet.
    pub fn capsules(&self) -> u64 {
        self.robots.iter().map(|r| r.capsules).sum()
    }

    /// Signature groups on the slab path at the last observed tick.
    pub fn slab_groups(&self) -> u64 {
        self.slab_groups
    }

    /// Robots stepped through slab tiles at the last observed tick.
    pub fn slab_robots(&self) -> u64 {
        self.slab_robots
    }

    /// Robots stepped per-robot at the last observed tick.
    pub fn scalar_robots(&self) -> u64 {
        self.scalar_robots
    }

    /// JSON snapshot: fleet aggregates plus one object per robot.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("ticks", self.ticks);
        o.field_u64("robots", self.robots.len() as u64);
        o.field_u64("alarmed", self.alarmed() as u64);
        o.field_u64("missed_deadlines", self.missed_deadlines());
        o.field_u64("capsules", self.capsules());
        o.field_u64("slab_groups", self.slab_groups);
        o.field_u64("slab_robots", self.slab_robots);
        o.field_u64("scalar_robots", self.scalar_robots);
        let rows: Vec<String> = self
            .robots
            .iter()
            .map(|r| {
                let mut row = JsonObject::new();
                row.field_u64("iteration", r.iteration);
                row.field_u64("selected_mode", r.selected_mode as u64);
                row.field_u64("active_modes", r.active_modes);
                row.field_bool("sensor_alarm", r.sensor_alarm);
                row.field_bool("actuator_alarm", r.actuator_alarm);
                let sensors: Vec<String> = r
                    .misbehaving_sensors
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                row.field_raw("misbehaving_sensors", &format!("[{}]", sensors.join(",")));
                row.field_u64("staleness", r.staleness);
                row.field_u64("missed_deadlines", r.missed_deadlines);
                row.field_u64("errors", r.errors);
                row.field_u64("fresh", r.fresh);
                row.field_u64("held", r.held);
                row.field_u64("missing", r.missing);
                row.field_u64("capsules", r.capsules);
                row.finish()
            })
            .collect();
        o.field_raw("per_robot", &format!("[{}]", rows.join(",")));
        if !self.shards.is_empty() {
            o.field_u64("steals", self.steals);
            let rows: Vec<String> = self
                .shards
                .iter()
                .map(|s| {
                    let mut row = JsonObject::new();
                    row.field_u64("shard", s.shard as u64);
                    row.field_u64("robots", s.robots as u64);
                    row.field_u64("tick", s.tick);
                    row.field_u64("journal_frames", s.journal_frames as u64);
                    match s.snapshot_tick {
                        Some(t) => row.field_u64("snapshot_tick", t),
                        None => row.field_raw("snapshot_tick", "null"),
                    }
                    row.finish()
                })
                .collect();
            o.field_raw("shards", &format!("[{}]", rows.join(",")));
        }
        if let Some(t) = &self.telemetry {
            o.field_raw("metrics", &t.metrics().snapshot().to_json());
        }
        o.finish()
    }

    /// Prometheus-style text exposition of the board. Per-robot series
    /// carry a `robot="<index>"` label; the attached telemetry registry
    /// (step-latency summaries etc.) is appended when present.
    pub fn to_prometheus(&self) -> String {
        let mut p = PrometheusText::new();
        p.help("roboads_fleet_ticks", "Fleet ticks observed");
        p.type_("roboads_fleet_ticks", "counter");
        p.sample("roboads_fleet_ticks", &[], self.ticks as f64);
        p.help("roboads_fleet_robots", "Robots in the fleet");
        p.type_("roboads_fleet_robots", "gauge");
        p.sample("roboads_fleet_robots", &[], self.robots.len() as f64);
        p.help("roboads_fleet_alarmed", "Robots with an alarm raised");
        p.type_("roboads_fleet_alarmed", "gauge");
        p.sample("roboads_fleet_alarmed", &[], self.alarmed() as f64);
        p.help("roboads_fleet_capsules", "Incident capsules sealed");
        p.type_("roboads_fleet_capsules", "gauge");
        p.sample("roboads_fleet_capsules", &[], self.capsules() as f64);
        p.help(
            "roboads_fleet_slab_groups",
            "Signature groups on the SIMD slab path",
        );
        p.type_("roboads_fleet_slab_groups", "gauge");
        p.sample("roboads_fleet_slab_groups", &[], self.slab_groups as f64);
        p.help(
            "roboads_fleet_slab_robots",
            "Robots stepped through slab tiles",
        );
        p.type_("roboads_fleet_slab_robots", "gauge");
        p.sample("roboads_fleet_slab_robots", &[], self.slab_robots as f64);
        p.help("roboads_fleet_scalar_robots", "Robots stepped per-robot");
        p.type_("roboads_fleet_scalar_robots", "gauge");
        p.sample(
            "roboads_fleet_scalar_robots",
            &[],
            self.scalar_robots as f64,
        );

        type RobotGauge = (&'static str, &'static str, fn(&RobotHealth) -> f64);
        let gauges: [RobotGauge; 10] = [
            ("roboads_robot_iteration", "Last completed iteration", |r| {
                r.iteration as f64
            }),
            ("roboads_robot_selected_mode", "Last selected mode", |r| {
                r.selected_mode as f64
            }),
            (
                "roboads_robot_active_modes",
                "Active (non-dormant) estimator modes",
                |r| r.active_modes as f64,
            ),
            ("roboads_robot_sensor_alarm", "Sensor alarm raised", |r| {
                u64::from(r.sensor_alarm) as f64
            }),
            (
                "roboads_robot_actuator_alarm",
                "Actuator alarm raised",
                |r| u64::from(r.actuator_alarm) as f64,
            ),
            (
                "roboads_robot_staleness",
                "Ticks since the last completed step",
                |r| r.staleness as f64,
            ),
            (
                "roboads_robot_missed_deadlines",
                "Missed tick deadlines",
                |r| r.missed_deadlines as f64,
            ),
            ("roboads_robot_fresh", "Ticks published fresh", |r| {
                r.fresh as f64
            }),
            ("roboads_robot_held", "Ticks published held", |r| {
                r.held as f64
            }),
            (
                "roboads_robot_missing",
                "Ticks with no publishable inputs",
                |r| r.missing as f64,
            ),
        ];
        for (name, help, get) in gauges {
            p.help(name, help);
            p.type_(name, "gauge");
            for (i, robot) in self.robots.iter().enumerate() {
                p.sample(name, &[("robot", &i.to_string())], get(robot));
            }
        }
        if !self.shards.is_empty() {
            p.help(
                "roboads_fleet_steals",
                "Whole-group migrations completed by the shard balancer",
            );
            p.type_("roboads_fleet_steals", "counter");
            p.sample("roboads_fleet_steals", &[], self.steals as f64);
            type ShardGauge = (&'static str, &'static str, fn(&ShardStatus) -> f64);
            let gauges: [ShardGauge; 4] = [
                ("roboads_shard_robots", "Robots homed on the shard", |s| {
                    s.robots as f64
                }),
                ("roboads_shard_tick", "Shard staging tick", |s| {
                    s.tick as f64
                }),
                (
                    "roboads_shard_journal_frames",
                    "Journaled frames since the last snapshot (replay backlog)",
                    |s| s.journal_frames as f64,
                ),
                (
                    "roboads_shard_snapshot_age",
                    "Ticks since the shard's last snapshot (-1 before the first)",
                    |s| match s.snapshot_tick {
                        Some(t) => s.tick.saturating_sub(t) as f64,
                        None => -1.0,
                    },
                ),
            ];
            for (name, help, get) in gauges {
                p.help(name, help);
                p.type_(name, "gauge");
                for shard in &self.shards {
                    p.sample(name, &[("shard", &shard.shard.to_string())], get(shard));
                }
            }
        }
        let mut out = p.finish();
        if let Some(t) = &self.telemetry {
            out.push_str(&render_snapshot(&t.metrics().snapshot()));
        }
        out
    }
}
