//! Span attribution must survive a panicking robot step.
//!
//! [`FleetEngine::step_batch`] stamps the per-robot telemetry context
//! (`roboads_obs::set_robot`) around each robot's `step_into`. Pool
//! workers catch job panics and keep serving jobs, so the reset **must
//! be RAII** (`roboads_obs::robot_scope`): a plain `set_robot(0)` after
//! the step would be skipped on unwind, leaking the panicking robot's
//! id into every span the surviving worker records afterwards —
//! silently misattributing the whole rest of the run. This suite pins
//! the unwind path at the pool + obs seam the fleet relies on.

use roboads_obs::{current_robot, robot_scope, RingBufferSink, Telemetry};
use roboads_pool::Pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A job that panics inside a robot scope must not leak the robot id
/// into spans recorded by later jobs on the same (surviving) worker.
#[test]
fn panicking_job_does_not_leak_its_robot_id_into_later_spans() {
    let ring = Arc::new(RingBufferSink::new(64));
    let telemetry = Telemetry::new(ring.clone());
    // One worker: the panicking job and the follow-up job are
    // guaranteed to share a thread, so a leaked thread-local would be
    // visible to the second job.
    let pool = Pool::new(1);

    let batch = catch_unwind(AssertUnwindSafe(|| {
        pool.scoped(|scope| {
            scope.execute(|| {
                let _robot = robot_scope(7);
                panic!("robot 7 step blew up mid-span");
            });
        });
    }));
    assert!(batch.is_err(), "the job panic must surface to the caller");

    // The worker survived the panic; whatever it records next must be
    // attributed to "no robot context", not robot 7.
    pool.scoped(|scope| {
        let telemetry = &telemetry;
        scope.execute(move || {
            let _span = telemetry.span("fleet.idle_probe");
        });
    });
    let spans = ring.spans();
    let probe = spans
        .iter()
        .find(|s| s.name == "fleet.idle_probe")
        .expect("follow-up span recorded");
    assert_eq!(
        probe.robot, 0,
        "panicking robot's id leaked into a later span"
    );
}

/// The guard restores the *enclosing* scope, not unconditionally zero —
/// a nested panic inside an outer robot scope must fall back to the
/// outer robot, and the outer guard must still reset to none.
#[test]
fn nested_panic_restores_the_enclosing_robot_scope() {
    let outer = robot_scope(3);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let _inner = robot_scope(9);
        panic!("inner robot step failed");
    }));
    assert!(caught.is_err());
    assert_eq!(current_robot(), 3, "unwind must restore the outer robot");
    drop(outer);
    assert_eq!(current_robot(), 0);
}
