//! Performance benches (Criterion): RoboADS must run inside the planner
//! in real time, i.e. one full detection iteration well under the
//! 100 ms control period — and the paper notes the mode count grows
//! linearly with the sensor count for the default mode set versus
//! exponentially for the complete set (§VI).
//!
//! Run with: `cargo bench -p roboads-bench --bench perf`

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use roboads_core::{nuise_step, Linearization, Mode, ModeSet, NuiseInput, RoboAds, RoboAdsConfig};
use roboads_linalg::{Matrix, Vector};
use roboads_models::presets;
use roboads_sim::{Scenario, SimulationBuilder};

fn clean_readings(system: &roboads_models::RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

fn bench_nuise(c: &mut Criterion) {
    let system = presets::khepera_system();
    let mode = Mode::new(vec![0], vec![1, 2]);
    let x = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let p = Matrix::identity(3) * 1e-4;
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x, &u);
    let readings = clean_readings(&system, &x1);
    let lin = Linearization::PerIteration;

    c.bench_function("nuise_step/khepera_single_mode", |b| {
        b.iter(|| {
            nuise_step(NuiseInput {
                system: &system,
                mode: &mode,
                x_prev: &x,
                p_prev: &p,
                u_prev: &u,
                readings: &readings,
                linearization: &lin,
                compensate: true,
            })
            .unwrap()
        })
    });
}

fn bench_detector(c: &mut Criterion) {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);

    c.bench_function("detector_step/default_modes_3", |b| {
        b.iter_batched(
            || RoboAds::with_defaults(system.clone(), x0.clone()).unwrap(),
            |mut ads| ads.step(&u, &readings).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("detector_step/complete_modes_7", |b| {
        b.iter_batched(
            || {
                RoboAds::new(
                    system.clone(),
                    RoboAdsConfig::paper_defaults(),
                    x0.clone(),
                    ModeSet::complete(&system),
                )
                .unwrap()
            },
            |mut ads| ads.step(&u, &readings).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("simulation/khepera_200_iterations", |b| {
        b.iter(|| {
            SimulationBuilder::khepera()
                .scenario(Scenario::ips_logic_bomb())
                .seed(11)
                .run()
                .unwrap()
        })
    });
}

fn bench_substrates(c: &mut Criterion) {
    let arena = presets::evaluation_arena();
    c.bench_function("rrt_star/evaluation_arena", |b| {
        b.iter(|| {
            roboads_control::RrtStar::new(&arena, 0.08)
                .unwrap()
                .plan((0.5, 0.5), (3.5, 3.5), 7)
                .unwrap()
        })
    });

    let lidar = roboads_models::sensors::WallLidar::new(arena, 0.015, 0.02).unwrap();
    let pose = Vector::from_slice(&[2.0, 2.0, 0.5]);
    c.bench_function("lidar/241_beam_scan", |b| {
        b.iter(|| lidar.simulate_scan(&pose).unwrap())
    });

    let m = Matrix::from_fn(7, 7, |i, j| if i == j { 2.0 } else { 0.3 });
    c.bench_function("linalg/pseudo_inverse_7x7", |b| {
        b.iter(|| m.pseudo_inverse().unwrap())
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_nuise, bench_detector, bench_simulation, bench_substrates
}
criterion_main!(benches);
