//! A persistent, scoped worker pool built on `std::thread` only, so the
//! tier-1 build keeps resolving `--offline`.
//!
//! The detection engine fans the per-mode NUISE filters out over this
//! pool every step, so the design goals are:
//!
//! * **persistent workers** — threads are spawned once in [`Pool::new`]
//!   and parked on a condvar between steps; a step dispatch is a queue
//!   push plus a wake-up, not a `thread::spawn`;
//! * **scoped borrows** — [`Pool::scoped`] lets jobs borrow from the
//!   caller's stack (the engine hands each worker `&mut` slices of its
//!   per-mode workspaces), with the scope guaranteeing every job has
//!   finished before those borrows expire;
//! * **deterministic callers** — the pool itself imposes no ordering,
//!   but jobs write into caller-chosen disjoint slots, so collecting
//!   results in input order is trivial ([`Pool::map`] does exactly
//!   that);
//! * **panic transparency** — a panicking job never takes a worker
//!   down; the first payload is re-raised on the caller's thread when
//!   the scope closes.
//!
//! Concurrent scopes on one pool are allowed (each scope tracks its own
//! completion state), which is what lets a shared pool serve both the
//! engine and the experiment harnesses.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Queue state shared between the pool handle and its workers.
struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Per-scope completion bookkeeping, shared by every job of one
/// [`Pool::scoped`] call (an `Arc` so concurrent scopes on the same
/// pool cannot observe each other's counters).
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    first_panic: Mutex<Option<PanicPayload>>,
}

/// Persistent worker pool. Dropping it shuts the workers down and joins
/// them; jobs still queued at that point are executed first.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool queue poisoned");
            }
        };
        // Jobs are pre-wrapped in `catch_unwind` by `Scope::execute`,
        // so a panicking job cannot unwind through (and kill) a worker.
        job();
    }
}

impl Pool {
    /// Spawns `threads` persistent workers (clamped to at least one).
    pub fn new(threads: usize) -> Pool {
        Pool::with_thread_setup(threads, |_| {})
    }

    /// Like [`Pool::new`], but runs `setup(worker_index)` on each worker
    /// thread before it starts taking jobs — the engine uses this to
    /// register the worker with the telemetry layer so spans recorded
    /// off the main thread carry their worker's identity.
    pub fn with_thread_setup<S>(threads: usize, setup: S) -> Pool
    where
        S: Fn(usize) + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let setup = Arc::new(setup);
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let setup = Arc::clone(&setup);
                std::thread::Builder::new()
                    .name(format!("roboads-pool-{i}"))
                    .spawn(move || {
                        setup(i);
                        worker_loop(&shared);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`Scope`] whose jobs may borrow from the current
    /// stack frame. Returns only after every job submitted through the
    /// scope has finished — on *every* path, including a panic inside
    /// `f` itself (that wait is what makes the borrow erasure in
    /// [`Scope::execute`] sound).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f`, or else the first panic captured
    /// from a job of this scope.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                all_done: Condvar::new(),
                first_panic: Mutex::new(None),
            }),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait_all();
        let job_panic = scope
            .state
            .first_panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Maps `items` through `f` on the pool, preserving input order in
    /// the output (each job writes its own pre-allocated slot).
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        self.scoped(|scope| {
            for (slot, item) in slots.iter_mut().zip(items) {
                let f = &f;
                scope.execute(move || {
                    *slot = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("pool job completed without writing its slot"))
            .collect()
    }

    /// The chunk size that covers `items` with at most one job per
    /// worker while keeping every chunk at least `min_chunk` items long
    /// (clamped to 1). Batch engines use the floor to stop dispatch
    /// overhead from dominating when there are more workers than work:
    /// with 4 workers, 6 items and a floor of 4, the result is one
    /// 4-item chunk plus one 2-item remainder — not four slivers.
    pub fn chunk_size(&self, items: usize, min_chunk: usize) -> usize {
        items.div_ceil(self.threads().max(1)).max(min_chunk).max(1)
    }

    /// [`Pool::chunk_size`] rounded up to the next multiple of `align`
    /// (clamped to 1). Lane-batched engines align chunk boundaries to
    /// their SIMD tile width so no K-lane tile ever straddles two jobs:
    /// every chunk but the last holds a whole number of tiles, and only
    /// the final chunk carries the fleet-level remainder tail.
    pub fn chunk_size_aligned(&self, items: usize, min_chunk: usize, align: usize) -> usize {
        self.chunk_size(items, min_chunk)
            .next_multiple_of(align.max(1))
    }

    /// Runs `f(index, item)` for every item, fanned out as one job per
    /// contiguous chunk of [`Pool::chunk_size`] items. Items are mutated
    /// in place and `f` sees them in ascending index order within each
    /// chunk, so a caller that keeps per-item state in `items` gets
    /// results identical to a sequential `for` loop (chunks only change
    /// *which thread* runs an index, never its input or output slot).
    ///
    /// # Panics
    ///
    /// Propagates the first job panic after all chunks finish.
    pub fn chunked_for_each<T, F>(&self, items: &mut [T], min_chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let chunk = self.chunk_size(items.len(), min_chunk);
        self.scoped(|scope| {
            for (chunk_idx, chunk_items) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                let base = chunk_idx * chunk;
                scope.execute(move || {
                    for (j, item) in chunk_items.iter_mut().enumerate() {
                        f(base + j, item);
                    }
                });
            }
        });
    }

    /// Maps `items` through `f` with chunked dispatch (one job per
    /// [`Pool::chunk_size`] run of items), preserving input order in the
    /// output. Prefer this over [`Pool::map`] when per-item work is
    /// small enough that a job per item would be dominated by queue
    /// traffic.
    ///
    /// # Panics
    ///
    /// Propagates the first job panic.
    pub fn chunked_map<T, R, F>(&self, items: Vec<T>, min_chunk: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        if !slots.is_empty() {
            let chunk = self.chunk_size(slots.len(), min_chunk);
            let mut item_chunks: Vec<Vec<T>> = Vec::with_capacity(slots.len().div_ceil(chunk));
            let mut items = items.into_iter();
            loop {
                let c: Vec<T> = items.by_ref().take(chunk).collect();
                if c.is_empty() {
                    break;
                }
                item_chunks.push(c);
            }
            self.scoped(|scope| {
                for (chunk_idx, (slot_chunk, item_chunk)) in
                    slots.chunks_mut(chunk).zip(item_chunks).enumerate()
                {
                    let f = &f;
                    let base = chunk_idx * chunk;
                    scope.execute(move || {
                        for (j, (slot, item)) in slot_chunk.iter_mut().zip(item_chunk).enumerate() {
                            *slot = Some(f(base + j, item));
                        }
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|s| s.expect("pool job completed without writing its slot"))
            .collect()
    }

    fn enqueue(&self, job: Job) {
        let mut state = self.shared.state.lock().expect("pool queue poisoned");
        state.jobs.push_back(job);
        drop(state);
        self.shared.work_ready.notify_one();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool queue poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker only panics if pool-internal code is broken
            // (jobs are unwind-caught); surface that loudly.
            worker.join().expect("pool worker panicked");
        }
    }
}

/// Handle for submitting borrow-carrying jobs inside [`Pool::scoped`].
///
/// `'scope` is invariant (via the `PhantomData` marker) so the borrow
/// checker cannot shrink it below the lifetimes captured by submitted
/// jobs.
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Submits a job that may borrow anything outliving `'scope`. The
    /// job runs on some worker; panics are captured and re-raised when
    /// the scope closes.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        {
            let mut pending = self.state.pending.lock().expect("scope counter poisoned");
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(job);
        // SAFETY: the only thing erased here is the `'scope` lifetime
        // bound of the boxed closure; the fat-pointer representation is
        // identical. `Pool::scoped` blocks in `wait_all` until this
        // scope's pending count returns to zero on every exit path
        // (normal return and unwinding), so the job — and the borrows
        // it captured — never outlive the stack frame they borrow from.
        let job: Job = unsafe { mem::transmute(job) };
        let wrapped: Job = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = outcome {
                let mut slot = state.first_panic.lock().expect("scope panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = state.pending.lock().expect("scope counter poisoned");
            *pending -= 1;
            if *pending == 0 {
                state.all_done.notify_all();
            }
        });
        self.pool.enqueue(wrapped);
    }

    fn wait_all(&self) {
        let mut pending = self.state.pending.lock().expect("scope counter poisoned");
        while *pending > 0 {
            pending = self
                .state
                .all_done
                .wait(pending)
                .expect("scope counter poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order() {
        let pool = Pool::new(8);
        let out = pool.map((0..200).collect(), |i: usize| i * 3);
        assert_eq!(out, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_single_thread_and_empty() {
        let pool = Pool::new(1);
        assert_eq!(pool.map(vec![1, 2, 3], |i: i32| i + 1), vec![2, 3, 4]);
        assert!(pool.map(Vec::<i32>::new(), |i| i).is_empty());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![5], |i: i32| i), vec![5]);
    }

    #[test]
    fn scoped_jobs_borrow_stack_data_mutably() {
        let pool = Pool::new(4);
        let mut slots = [0u64; 16];
        pool.scoped(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.execute(move || *slot = i as u64 + 1);
            }
        });
        assert_eq!(slots[0], 1);
        assert_eq!(slots[15], 16);
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = Pool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scoped(|scope| {
                for _ in 0..4 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job exploded"));
            });
        }));
        let payload = result.expect_err("scope must re-raise the job panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "job exploded");
        // The pool must keep working after a job panic.
        assert_eq!(pool.map(vec![1, 2], |i: i32| i * 2), vec![2, 4]);
    }

    #[test]
    fn map_propagates_panic_message() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0, 1, 2], |i: i32| {
                assert!(i != 1, "scenario run failed");
                i
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.map(vec![7], |i: i32| i), vec![7]);
    }

    #[test]
    fn thread_setup_hook_runs_once_per_worker() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let pool = Pool::with_thread_setup(3, move |i| {
            seen2.lock().unwrap().push(i);
        });
        // Force a round-trip so all workers have certainly started.
        pool.map(vec![0; 8], |i: i32| i);
        drop(pool);
        let mut ids = seen.lock().unwrap().clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn chunk_size_covers_items_with_min_floor() {
        let pool = Pool::new(4);
        assert_eq!(pool.chunk_size(64, 1), 16); // one job per worker
        assert_eq!(pool.chunk_size(6, 4), 4); // floor kicks in
        assert_eq!(pool.chunk_size(3, 1), 1);
        assert_eq!(pool.chunk_size(0, 0), 1); // clamped
        let single = Pool::new(1);
        assert_eq!(single.chunk_size(64, 1), 64);
    }

    #[test]
    fn chunk_size_aligned_rounds_to_tile_width() {
        let pool = Pool::new(4);
        // 67 items over 4 workers → 17-item raw chunks; aligned to 8-lane
        // tiles → 24. Three full chunks hold three tiles each and the
        // remainder chunk carries the fleet tail.
        assert_eq!(pool.chunk_size_aligned(67, 4, 8), 24);
        let chunk = pool.chunk_size_aligned(67, 4, 8);
        let mut sizes = Vec::new();
        let mut rest = 67;
        while rest > 0 {
            let take = rest.min(chunk);
            sizes.push(take);
            rest -= take;
        }
        // Every chunk except the last is a whole number of tiles.
        for &s in &sizes[..sizes.len() - 1] {
            assert_eq!(s % 8, 0, "chunk of {s} straddles a tile");
        }
        assert_eq!(sizes.iter().sum::<usize>(), 67);
        // Alignment of 1 (or 0, clamped) degenerates to chunk_size.
        assert_eq!(pool.chunk_size_aligned(64, 1, 1), pool.chunk_size(64, 1));
        assert_eq!(pool.chunk_size_aligned(64, 1, 0), pool.chunk_size(64, 1));
        let single = Pool::new(1);
        assert_eq!(single.chunk_size_aligned(13, 4, 8), 16);
    }

    /// Degenerate shapes: a tile wider than the whole work list, or a
    /// work list smaller than the minimum chunk, must still yield one
    /// well-formed covering chunk — never a zero-size chunk (which
    /// would spin `chunked_for_each`'s job splitter forever).
    #[test]
    fn chunk_size_aligned_degenerate_shapes_yield_one_covering_chunk() {
        let pool = Pool::new(4);
        // Alignment wider than the item count: one chunk, whole list.
        let chunk = pool.chunk_size_aligned(3, 1, 8);
        assert!(chunk >= 3, "chunk of {chunk} cannot cover 3 items");
        assert_eq!(chunk % 8, 0);
        // Fewer items than min_chunk: the min_chunk floor wins, again
        // one covering chunk.
        let chunk = pool.chunk_size_aligned(2, 16, 4);
        assert!(chunk >= 16);
        assert_eq!(chunk % 4, 0);
        // Zero items is never a zero chunk.
        for (items, min_chunk, align) in [(0usize, 0usize, 0usize), (0, 1, 8), (1, 0, 0), (5, 0, 3)]
        {
            let chunk = pool.chunk_size_aligned(items, min_chunk, align);
            assert!(
                chunk >= 1,
                "zero-size chunk for {items}/{min_chunk}/{align}"
            );
            assert!(chunk >= items || chunk.is_multiple_of(align.max(1)));
        }
        // And the unaligned helper obeys the same floor.
        assert_eq!(pool.chunk_size(0, 0), 1);
        assert_eq!(pool.chunk_size(3, 0), 1);
    }

    #[test]
    fn chunked_for_each_matches_sequential_loop() {
        let pool = Pool::new(3);
        for n in [0usize, 1, 2, 7, 8, 64] {
            for min_chunk in [1usize, 4, 100] {
                let mut items: Vec<u64> = (0..n as u64).collect();
                pool.chunked_for_each(&mut items, min_chunk, |i, item| {
                    *item = *item * 10 + i as u64;
                });
                let expected: Vec<u64> = (0..n as u64).map(|i| i * 10 + i).collect();
                assert_eq!(items, expected, "n={n} min_chunk={min_chunk}");
            }
        }
    }

    #[test]
    fn chunked_map_preserves_order_and_indices() {
        let pool = Pool::new(4);
        let out = pool.chunked_map((0..100u64).collect(), 8, |i, item| item * 2 + i as u64);
        assert_eq!(out, (0..100u64).map(|i| i * 3).collect::<Vec<_>>());
        assert!(pool.chunked_map(Vec::<u64>::new(), 1, |_, i| i).is_empty());
    }

    #[test]
    fn chunked_for_each_propagates_panics() {
        let pool = Pool::new(2);
        let mut items = vec![0u32; 8];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.chunked_for_each(&mut items, 1, |i, _| {
                assert!(i != 5, "chunk job failed");
            });
        }));
        assert!(result.is_err());
        // The pool survives.
        assert_eq!(pool.map(vec![1, 2], |i: i32| i * 2), vec![2, 4]);
    }

    #[test]
    fn concurrent_scopes_do_not_interfere() {
        let pool = Arc::new(Pool::new(4));
        let outer = Arc::clone(&pool);
        let handle = std::thread::spawn(move || outer.map((0..64).collect(), |i: usize| i + 1));
        let mine = pool.map((0..64).collect(), |i: usize| i + 2);
        let theirs = handle.join().unwrap();
        assert_eq!(mine, (0..64).map(|i| i + 2).collect::<Vec<_>>());
        assert_eq!(theirs, (0..64).map(|i| i + 1).collect::<Vec<_>>());
    }
}
