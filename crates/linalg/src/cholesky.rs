use crate::{LinalgError, Matrix, Result, Vector};

/// Cholesky decomposition `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// In this reproduction the decomposition serves two purposes:
///
/// * drawing correlated Gaussian noise (`x = μ + L·z` with `z` standard
///   normal) in the simulation substrate, and
/// * cheap log-determinants and PSD checks on propagated covariances.
///
/// # Example
///
/// ```
/// use roboads_linalg::Matrix;
///
/// # fn main() -> Result<(), roboads_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = a.cholesky()?;
/// let l = chol.l();
/// let reconstructed = l * l.transpose();
/// assert!((&reconstructed - &a).max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Tolerance for the symmetry pre-check, relative to the largest entry.
const SYMMETRY_TOL: f64 = 1e-8;

impl Cholesky {
    /// Decomposes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input,
    /// [`LinalgError::Empty`] for an empty matrix, and
    /// [`LinalgError::NotPositiveDefinite`] if the matrix is asymmetric
    /// beyond floating-point noise or has a non-positive pivot.
    pub fn new(a: &Matrix) -> Result<Self> {
        crate::health::note_cholesky_attempt();
        let out = Self::factorize(a);
        if matches!(out, Err(LinalgError::NotPositiveDefinite)) {
            crate::health::note_cholesky_failure();
        }
        out
    }

    fn factorize(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        for i in 0..n {
            for j in (i + 1)..n {
                if (a[(i, j)] - a[(j, i)]).abs() > SYMMETRY_TOL * scale {
                    return Err(LinalgError::NotPositiveDefinite);
                }
            }
        }

        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Natural log of the determinant of `A` (numerically stable:
    /// `2·Σ ln Lᵢᵢ`).
    pub fn ln_determinant(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solves `A·x = b` via forward/backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L·y = b.
        let mut y = b.clone();
        for i in 0..n {
            for j in 0..i {
                let lij = self.l[(i, j)];
                y[i] -= lij * y[j];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward substitution: Lᵀ·x = y.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let lji = self.l[(j, i)];
                y[i] -= lji * y[j];
            }
            y[i] /= self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A·x = b` into `out` without allocating; bitwise
    /// identical to [`Cholesky::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` or `out` has
    /// the wrong length.
    pub fn solve_into(&self, b: &Vector, out: &mut Vector) -> Result<()> {
        let n = self.dim();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve_into",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        out.copy_from(b);
        for i in 0..n {
            for j in 0..i {
                let lij = self.l[(i, j)];
                out[i] -= lij * out[j];
            }
            out[i] /= self.l[(i, i)];
        }
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let lji = self.l[(j, i)];
                out[i] -= lji * out[j];
            }
            out[i] /= self.l[(i, i)];
        }
        Ok(())
    }

    /// Writes the inverse of `A` into `out`, using `col` as scratch;
    /// bitwise identical to [`Cholesky::inverse`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `out` or `col` has
    /// the wrong shape.
    pub fn inverse_into(&self, col: &mut Vector, out: &mut Matrix) -> Result<()> {
        let n = self.dim();
        if out.shape() != (n, n) || col.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_inverse_into",
                lhs: (n, n),
                rhs: out.shape(),
            });
        }
        for j in 0..n {
            col.fill(0.0);
            col[j] = 1.0;
            for i in 0..n {
                for jj in 0..i {
                    let lij = self.l[(i, jj)];
                    col[i] -= lij * col[jj];
                }
                col[i] /= self.l[(i, i)];
            }
            for i in (0..n).rev() {
                for jj in (i + 1)..n {
                    let lji = self.l[(jj, i)];
                    col[i] -= lji * col[jj];
                }
                col[i] /= self.l[(i, i)];
            }
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(())
    }

    /// Computes the inverse of `A`.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Applies the factor to a vector: `L·z`.
    ///
    /// With `z` a standard-normal draw this produces a sample with
    /// covariance `A`, the key step of multivariate-normal sampling.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `z` has the wrong
    /// length.
    pub fn apply_factor(&self, z: &Vector) -> Result<Vector> {
        let n = self.dim();
        if z.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_apply_factor",
                lhs: (n, n),
                rhs: (z.len(), 1),
            });
        }
        Ok(&self.l * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_spd_matrix() {
        let a =
            Matrix::from_rows(&[&[6.0, 3.0, 4.0], &[3.0, 6.0, 5.0], &[4.0, 5.0, 10.0]]).unwrap();
        let c = a.cholesky().unwrap();
        let r = c.l() * &c.l().transpose();
        assert!((&r - &a).max_abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(a.cholesky().unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]).unwrap();
        assert_eq!(a.cholesky().unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            Matrix::zeros(2, 3).cholesky(),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Matrix::zeros(0, 0).cholesky(),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = Vector::from_slice(&[1.0, 2.0]);
        let x_chol = a.cholesky().unwrap().solve(&b).unwrap();
        let x_lu = a.lu().unwrap().solve(&b).unwrap();
        assert!((&x_chol - &x_lu).norm() < 1e-12);
    }

    #[test]
    fn solve_into_and_inverse_into_match_allocating_versions() {
        let a =
            Matrix::from_rows(&[&[6.0, 3.0, 4.0], &[3.0, 6.0, 5.0], &[4.0, 5.0, 10.0]]).unwrap();
        let c = a.cholesky().unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 0.5]);
        let mut x = Vector::zeros(3);
        c.solve_into(&b, &mut x).unwrap();
        assert_eq!(x, c.solve(&b).unwrap());

        let mut col = Vector::zeros(3);
        let mut inv = Matrix::zeros(3, 3);
        c.inverse_into(&mut col, &mut inv).unwrap();
        assert_eq!(inv, c.inverse().unwrap());

        assert!(c.solve_into(&Vector::zeros(2), &mut x).is_err());
        let mut bad = Matrix::zeros(2, 2);
        assert!(c.inverse_into(&mut col, &mut bad).is_err());
    }

    #[test]
    fn inverse_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let inv_chol = a.cholesky().unwrap().inverse().unwrap();
        let inv_lu = a.inverse().unwrap();
        assert!((&inv_chol - &inv_lu).max_abs() < 1e-12);
    }

    #[test]
    fn ln_determinant_matches_lu_det() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lnd = a.cholesky().unwrap().ln_determinant();
        let det = a.determinant().unwrap();
        assert!((lnd - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn apply_factor_shapes_noise() {
        let a = Matrix::from_diagonal(&[4.0, 9.0]);
        let c = a.cholesky().unwrap();
        let z = Vector::from_slice(&[1.0, 1.0]);
        let s = c.apply_factor(&z).unwrap();
        assert_eq!(s.as_slice(), &[2.0, 3.0]);
        assert!(c.apply_factor(&Vector::zeros(3)).is_err());
    }
}
