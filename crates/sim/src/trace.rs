use roboads_core::DetectionReport;
use roboads_linalg::Vector;

/// Everything recorded about one control iteration of a simulation run.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Iteration index `k` (0-based).
    pub k: usize,
    /// Wall-clock time `k · Δt`, seconds.
    pub time: f64,
    /// Ground-truth state after this iteration's motion.
    pub true_state: Vector,
    /// Planned control commands `u_{k−1}` the planner issued.
    pub planned_command: Vector,
    /// Executed commands after actuator misbehaviors.
    pub executed_command: Vector,
    /// Ground-truth actuator anomaly `d^a` injected this iteration.
    pub true_actuator_anomaly: Vector,
    /// Planner-visible readings per sensor.
    pub readings: Vec<Vector>,
    /// Ground-truth sensor anomalies `d^s` per sensor.
    pub true_sensor_anomalies: Vec<Vector>,
    /// The detector's report for this iteration.
    pub report: DetectionReport,
}

/// A full simulation trace: per-iteration records plus run metadata.
///
/// # Example
///
/// ```
/// use roboads_sim::{Scenario, SimulationBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let outcome = SimulationBuilder::khepera()
///     .scenario(Scenario::clean())
///     .duration(30)
///     .seed(1)
///     .run()?;
/// assert_eq!(outcome.trace.len(), 30);
/// assert!(outcome.trace.records()[29].time > 2.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    records: Vec<TraceRecord>,
    dt: f64,
    scenario_name: String,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(dt: f64, scenario_name: impl Into<String>) -> Self {
        Trace {
            records: Vec::new(),
            dt,
            scenario_name: scenario_name.into(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The per-iteration records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Control period Δt in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The scenario this trace came from.
    pub fn scenario_name(&self) -> &str {
        &self.scenario_name
    }

    /// Renders the Figure-6 panel series as CSV: per-iteration time,
    /// per-sensor anomaly estimate components, actuator anomaly
    /// components, test statistics and thresholds, and mode selections.
    pub fn to_figure6_csv(&self) -> String {
        let mut out = String::new();
        // Header from the first record's layout.
        out.push_str("time");
        if let Some(first) = self.records.first() {
            for s in &first.report.per_sensor {
                for c in 0..s.estimate.len() {
                    out.push_str(&format!(",{}_d{}", s.name, c));
                }
            }
            for c in 0..first.report.actuator_anomaly.estimate.len() {
                out.push_str(&format!(",actuator_d{c}"));
            }
            out.push_str(
                ",sensor_stat,sensor_threshold,actuator_stat,actuator_threshold,\
                 sensor_mode,actuator_mode",
            );
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&format!("{:.2}", r.time));
            for s in &r.report.per_sensor {
                for c in 0..s.estimate.len() {
                    out.push_str(&format!(",{:.6}", s.estimate[c]));
                }
            }
            let a = &r.report.actuator_anomaly;
            for c in 0..a.estimate.len() {
                out.push_str(&format!(",{:.6}", a.estimate[c]));
            }
            let sensor_mode = sensor_mode_code(&r.report.misbehaving_sensors);
            out.push_str(&format!(
                ",{:.4},{:.4},{:.4},{:.4},{},{}\n",
                r.report.sensor_anomaly.statistic,
                r.report.sensor_anomaly.threshold,
                a.statistic,
                a.threshold,
                sensor_mode,
                if r.report.actuator_alarm { 1 } else { 0 },
            ));
        }
        out
    }

    /// Renders the complete trace as CSV for external analysis or
    /// plotting: ground truth, commands, readings, estimates and
    /// decisions per iteration. Column counts follow the first record's
    /// layout.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let Some(first) = self.records.first() else {
            return out;
        };
        out.push_str("k,time");
        for c in 0..first.true_state.len() {
            out.push_str(&format!(",true_x{c}"));
        }
        for c in 0..first.planned_command.len() {
            out.push_str(&format!(",u_planned{c}"));
        }
        for c in 0..first.executed_command.len() {
            out.push_str(&format!(",u_executed{c}"));
        }
        for (i, r) in first.readings.iter().enumerate() {
            for c in 0..r.len() {
                out.push_str(&format!(",z{i}_{c}"));
            }
        }
        for c in 0..first.report.state_estimate.len() {
            out.push_str(&format!(",est_x{c}"));
        }
        out.push_str(
            ",sensor_stat,actuator_stat,sensor_mode,actuator_alarm
",
        );
        for r in &self.records {
            out.push_str(&format!("{},{:.2}", r.k, r.time));
            for &v in r.true_state.as_slice() {
                out.push_str(&format!(",{v:.6}"));
            }
            for &v in r.planned_command.as_slice() {
                out.push_str(&format!(",{v:.6}"));
            }
            for &v in r.executed_command.as_slice() {
                out.push_str(&format!(",{v:.6}"));
            }
            for z in &r.readings {
                for &v in z.as_slice() {
                    out.push_str(&format!(",{v:.6}"));
                }
            }
            for &v in r.report.state_estimate.as_slice() {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push_str(&format!(
                ",{:.4},{:.4},{},{}
",
                r.report.sensor_anomaly.statistic,
                r.report.actuator_anomaly.statistic,
                sensor_mode_code(&r.report.misbehaving_sensors),
                u8::from(r.report.actuator_alarm),
            ));
        }
        out
    }
}

/// Maps an identified sensor set to the paper's Table-III mode number
/// (3-sensor suites: S0–S6; larger sets get a synthetic code).
pub(crate) fn sensor_mode_code(misbehaving: &[usize]) -> usize {
    match misbehaving {
        [] => 0,
        [0] => 1,
        [1] => 2,
        [2] => 3,
        [1, 2] => 4,
        [0, 2] => 5,
        [0, 1] => 6,
        _ => 6 + misbehaving.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_core::AnomalyEstimate;

    fn dummy_record(k: usize) -> TraceRecord {
        TraceRecord {
            k,
            time: k as f64 * 0.1,
            true_state: Vector::zeros(3),
            planned_command: Vector::zeros(2),
            executed_command: Vector::zeros(2),
            true_actuator_anomaly: Vector::zeros(2),
            readings: vec![Vector::zeros(3)],
            true_sensor_anomalies: vec![Vector::zeros(3)],
            report: DetectionReport {
                iteration: k as u64 + 1,
                selected_mode: 0,
                mode_probabilities: vec![1.0],
                state_estimate: Vector::zeros(3),
                sensor_anomaly: AnomalyEstimate::empty(),
                actuator_anomaly: AnomalyEstimate::empty(),
                sensor_alarm: false,
                misbehaving_sensors: vec![],
                actuator_alarm: false,
                per_sensor: vec![],
            },
        }
    }

    #[test]
    fn push_and_metadata() {
        let mut t = Trace::new(0.1, "test");
        assert!(t.is_empty());
        t.push(dummy_record(0));
        t.push(dummy_record(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dt(), 0.1);
        assert_eq!(t.scenario_name(), "test");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::new(0.1, "test");
        t.push(dummy_record(0));
        let csv = t.to_figure6_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("time"));
        assert!(lines[1].starts_with("0.00"));
    }

    #[test]
    fn full_csv_has_header_and_all_rows() {
        let mut t = Trace::new(0.1, "test");
        t.push(dummy_record(0));
        t.push(dummy_record(1));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("k,time,true_x0"));
        assert!(lines[0].ends_with("actuator_alarm"));
        // Every row has the same number of columns as the header.
        let cols = lines[0].split(',').count();
        assert!(lines[1..].iter().all(|l| l.split(',').count() == cols));
        assert!(Trace::new(0.1, "empty").to_csv().is_empty());
    }

    #[test]
    fn mode_codes_match_table_iii() {
        assert_eq!(sensor_mode_code(&[]), 0);
        assert_eq!(sensor_mode_code(&[0]), 1);
        assert_eq!(sensor_mode_code(&[1]), 2);
        assert_eq!(sensor_mode_code(&[2]), 3);
        assert_eq!(sensor_mode_code(&[1, 2]), 4);
        assert_eq!(sensor_mode_code(&[0, 2]), 5);
        assert_eq!(sensor_mode_code(&[0, 1]), 6);
        assert_eq!(sensor_mode_code(&[0, 1, 2]), 9);
    }
}
