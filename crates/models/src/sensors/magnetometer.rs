use roboads_linalg::{Matrix, Vector};

use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// Magnetometer: measures the heading `θ` only.
///
/// §VI of the paper uses the magnetometer as the canonical example of a
/// sensor that cannot serve as a NUISE reference on its own ("a
/// magnetometer only measures the orientation of a robot … RoboADS fails
/// to estimate states") and must be grouped with a position sensor. The
/// mode-set builders in the core crate use [`crate::observability`] to
/// reject or group such sensors automatically.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::sensors::Magnetometer;
/// use roboads_models::SensorModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let mag = Magnetometer::new(0.01)?;
/// let z = mag.measure(&Vector::from_slice(&[3.0, 4.0, 0.7]));
/// assert_eq!(z.as_slice(), &[0.7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Magnetometer {
    heading_std: f64,
}

impl Magnetometer {
    /// Creates a magnetometer with the given heading noise standard
    /// deviation (rad).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive values.
    pub fn new(heading_std: f64) -> Result<Self> {
        if !(heading_std.is_finite() && heading_std > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "heading_std",
                value: format!("{heading_std}"),
            });
        }
        Ok(Magnetometer { heading_std })
    }

    /// Heading noise standard deviation (rad).
    pub fn heading_std(&self) -> f64 {
        self.heading_std
    }
}

impl SensorModel for Magnetometer {
    fn dim(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "magnetometer"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 3, "magnetometer expects a pose state");
        Vector::from_slice(&[x[2]])
    }

    fn jacobian(&self, _x: &Vector) -> Matrix {
        Matrix::from_rows(&[&[0.0, 0.0, 1.0]]).expect("static shape")
    }

    fn noise_covariance(&self) -> Matrix {
        Matrix::from_diagonal(&[self.heading_std * self.heading_std])
    }

    fn angular_components(&self) -> &[usize] {
        &[0]
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 3, "magnetometer expects a pose state");
        out[0] = x[2];
    }

    fn jacobian_into(&self, _x: &Vector, out: &mut Matrix, row_offset: usize) {
        out[(row_offset, 0)] = 0.0;
        out[(row_offset, 1)] = 0.0;
        out[(row_offset, 2)] = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        let mag = Magnetometer::new(0.01).unwrap();
        assert_sensor_into_variants_match(&mag, &Vector::from_slice(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn measures_heading_only() {
        let mag = Magnetometer::new(0.01).unwrap();
        assert_eq!(mag.dim(), 1);
        assert_eq!(
            mag.measure(&Vector::from_slice(&[9.0, 9.0, -1.2]))
                .as_slice(),
            &[-1.2]
        );
        assert_eq!(mag.angular_components(), &[0]);
    }

    #[test]
    fn jacobian_and_noise() {
        let mag = Magnetometer::new(0.01).unwrap();
        assert_sensor_jacobian_matches(&mag, &Vector::from_slice(&[0.1, 0.2, 0.3]), 1e-6);
        assert_noise_covariance_valid(&mag);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Magnetometer::new(f64::NAN).is_err());
    }
}
