use roboads_linalg::{Matrix, Vector};

use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// Indoor positioning system: measures the full pose `(x, y, θ)`.
///
/// In the paper's testbed this workflow is backed by a Vicon
/// motion-capture rig (Figure 5b) tracking markers on the robot; the
/// planner receives a calibrated pose estimate. The measurement model is
/// the identity on the pose state with small Gaussian noise:
///
/// ```text
/// h_IPS(x) = (x, y, θ),   C = I₃
/// ```
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::sensors::Ips;
/// use roboads_models::SensorModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let ips = Ips::new(0.004, 0.006)?;
/// let z = ips.measure(&Vector::from_slice(&[1.0, 2.0, 0.5]));
/// assert_eq!(z.as_slice(), &[1.0, 2.0, 0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ips {
    position_std: f64,
    heading_std: f64,
}

impl Ips {
    /// Creates an IPS with the given position (m) and heading (rad) noise
    /// standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive values.
    pub fn new(position_std: f64, heading_std: f64) -> Result<Self> {
        for (name, v) in [("position_std", position_std), ("heading_std", heading_std)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: format!("{v}"),
                });
            }
        }
        Ok(Ips {
            position_std,
            heading_std,
        })
    }

    /// Position noise standard deviation (m).
    pub fn position_std(&self) -> f64 {
        self.position_std
    }

    /// Heading noise standard deviation (rad).
    pub fn heading_std(&self) -> f64 {
        self.heading_std
    }

    /// A copy with every noise standard deviation scaled by `factor`,
    /// used by the sensor-quality sweep of §V-E.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive factors.
    pub fn with_quality_factor(&self, factor: f64) -> Result<Self> {
        Ips::new(self.position_std * factor, self.heading_std * factor)
    }
}

impl SensorModel for Ips {
    fn dim(&self) -> usize {
        3
    }

    fn name(&self) -> &str {
        "ips"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 3, "ips expects a pose state");
        Vector::from_slice(&[x[0], x[1], x[2]])
    }

    fn jacobian(&self, _x: &Vector) -> Matrix {
        Matrix::identity(3)
    }

    fn noise_covariance(&self) -> Matrix {
        Matrix::from_diagonal(&[
            self.position_std * self.position_std,
            self.position_std * self.position_std,
            self.heading_std * self.heading_std,
        ])
    }

    fn angular_components(&self) -> &[usize] {
        &[2]
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 3, "ips expects a pose state");
        out[0] = x[0];
        out[1] = x[1];
        out[2] = x[2];
    }

    fn jacobian_into(&self, _x: &Vector, out: &mut Matrix, row_offset: usize) {
        for i in 0..3 {
            for j in 0..3 {
                out[(row_offset + i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        let ips = Ips::new(0.004, 0.006).unwrap();
        assert_sensor_into_variants_match(&ips, &Vector::from_slice(&[0.3, 0.1, -0.9]));
    }

    #[test]
    fn measures_identity_on_pose() {
        let ips = Ips::new(0.004, 0.006).unwrap();
        let x = Vector::from_slice(&[0.7, -0.2, 1.4]);
        assert_eq!(ips.measure(&x), x);
    }

    #[test]
    fn jacobian_and_noise_are_consistent() {
        let ips = Ips::new(0.004, 0.006).unwrap();
        assert_sensor_jacobian_matches(&ips, &Vector::from_slice(&[0.3, 0.1, -0.9]), 1e-6);
        assert_noise_covariance_valid(&ips);
    }

    #[test]
    fn heading_component_is_angular() {
        let ips = Ips::new(0.004, 0.006).unwrap();
        assert_eq!(ips.angular_components(), &[2]);
    }

    #[test]
    fn quality_factor_scales_covariance() {
        let ips = Ips::new(0.004, 0.006).unwrap();
        let worse = ips.with_quality_factor(2.0).unwrap();
        let r = ips.noise_covariance();
        let r2 = worse.noise_covariance();
        assert!((r2[(0, 0)] - 4.0 * r[(0, 0)]).abs() < 1e-15);
        assert!(ips.with_quality_factor(0.0).is_err());
    }

    #[test]
    fn rejects_invalid_noise() {
        assert!(Ips::new(0.0, 0.006).is_err());
        assert!(Ips::new(0.004, f64::NAN).is_err());
    }
}
