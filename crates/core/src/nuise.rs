//! NUISE — the Nonlinear Unknown Input and State Estimation algorithm
//! (paper Algorithm 2, Figure 4).
//!
//! One NUISE step runs under a single mode hypothesis and produces, from
//! the shared previous estimate and the fresh readings:
//!
//! 1. **Actuator anomaly estimation** — weighted-least-squares estimate
//!    of `d^a_{k−1}` from the reference-sensor innovation of the
//!    uncompensated prediction,
//! 2. **Compensated state prediction** — `x̂_{k|k−1} = f(x̂, u + d̂^a)`
//!    with the exact covariance of the compensated error (which is
//!    *correlated* with the measurement noise through `d̂^a`),
//! 3. **State estimation** — a correlated-noise Kalman update against
//!    the reference sensors,
//! 4. **Sensor anomaly estimation** — residual of the testing sensors
//!    against the updated state,
//! 5. **Mode likelihood** — degenerate-Gaussian density of the
//!    innovation (pseudo-inverse / pseudo-determinant / rank).
//!
//! ## Sign correction
//!
//! The conference text prints the cross-covariance
//! `S = E[x̃_{k|k−1}·ξ₂ᵀ]` with inconsistent signs between lines 11–14
//! and line 18. Deriving the filter (see `DESIGN.md` §2):
//! `d̂^a = M₂(C₂(A e + ζ) + ξ₂) + d^a`, so the compensated prediction
//! error is `x̃ = (I − G M₂ C₂)(A e + ζ) − G M₂ ξ₂` and
//! `S = −G·M₂·R₂`. This module implements all four lines consistently
//! with that `S`; the crate's tests verify unbiasedness, covariance
//! consistency and PSD-ness over long runs.

use roboads_linalg::{EigenWorkspace, LuWorkspace, Matrix, Vector};
use roboads_models::{wrap_angle, RobotSystem, SensorSlice};

use crate::config::Linearization;
use crate::mode::Mode;
use crate::{CoreError, Result};

/// Inputs of one NUISE step (Algorithm 2 signature:
/// `(u_{k−1}, x̂_{k−1|k−1}, z_{1,k}, z_{2,k})` plus the shared state
/// covariance and the system description).
#[derive(Debug, Clone, Copy)]
pub struct NuiseInput<'a> {
    /// The robot's `f`/`h`/`Q`/`R` bundle.
    pub system: &'a RobotSystem,
    /// The mode hypothesis (reference / testing partition).
    pub mode: &'a Mode,
    /// Previous state estimate `x̂_{k−1|k−1}` (shared across modes).
    pub x_prev: &'a Vector,
    /// Previous state covariance `P^x_{k−1}` (shared across modes).
    pub p_prev: &'a Matrix,
    /// Planned control commands `u_{k−1}`.
    pub u_prev: &'a Vector,
    /// Fresh readings, one vector per sensor in suite order.
    pub readings: &'a [Vector],
    /// Linearization strategy (per-iteration for RoboADS proper).
    pub linearization: &'a Linearization,
    /// Whether step 2 compensates the prediction with `G·d̂ᵃ` (always
    /// true in RoboADS proper; `false` is the challenge-2 ablation).
    pub compensate: bool,
}

/// Outputs of one NUISE step.
#[derive(Debug, Clone, PartialEq)]
pub struct NuiseOutput {
    /// Updated state estimate `x̂_{k|k}`.
    pub state_estimate: Vector,
    /// Updated state covariance `P^x_k`.
    pub state_covariance: Matrix,
    /// Actuator anomaly estimate `d̂^a_{k−1}`.
    pub actuator_anomaly: Vector,
    /// Error covariance `P^a_{k−1}` of the actuator anomaly estimate.
    pub actuator_covariance: Matrix,
    /// Testing-sensor anomaly estimate `d̂^s_k` (stacked in suite order
    /// over the mode's testing set; empty if the mode tests nothing).
    pub sensor_anomaly: Vector,
    /// Error covariance `P^s_k` of the sensor anomaly estimate.
    pub sensor_covariance: Matrix,
    /// Mode likelihood `N_k` (the paper's printed density; see
    /// `mode_likelihood` for why selection uses `consistency` instead).
    pub likelihood: f64,
    /// Dimension-free consistency of the hypothesis: the χ²(rank)
    /// survival p-value of the normalized innovation statistic,
    /// Uniform(0,1)-distributed for every consistent mode.
    pub consistency: f64,
    /// Reference-sensor innovation `ν_k` (diagnostics).
    pub innovation: Vector,
}

/// Model-evaluation helper honoring the linearization strategy: RoboADS
/// re-linearizes every iteration and evaluates the nonlinear `f`/`h`;
/// the §V-G baseline freezes the Jacobians at one operating point and
/// propagates the affine (truly linear) model built there.
struct Lin<'a> {
    system: &'a RobotSystem,
    strategy: &'a Linearization,
}

impl<'a> Lin<'a> {
    fn f(&self, x: &Vector, u: &Vector) -> Vector {
        match self.strategy {
            Linearization::PerIteration => self.system.dynamics().step(x, u),
            Linearization::FrozenAt { state, input } => {
                let f0 = self.system.dynamics().step(state, input);
                let a = self.system.dynamics().state_jacobian(state, input);
                let g = self.system.dynamics().input_jacobian(state, input);
                &(&f0 + &(&a * &(x - state))) + &(&g * &(u - input))
            }
        }
    }

    fn h(&self, subset: &[usize], x: &Vector) -> Vector {
        match self.strategy {
            Linearization::PerIteration => self.system.measure_subset(subset, x),
            Linearization::FrozenAt { state, .. } => {
                let h0 = self.system.measure_subset(subset, state);
                let c = self.system.jacobian_subset(subset, state);
                &h0 + &(&c * &(x - state))
            }
        }
    }

    fn a(&self, x: &Vector, u: &Vector) -> Matrix {
        match self.strategy {
            Linearization::PerIteration => self.system.dynamics().state_jacobian(x, u),
            Linearization::FrozenAt { state, input } => {
                self.system.dynamics().state_jacobian(state, input)
            }
        }
    }

    fn g(&self, x: &Vector, u: &Vector) -> Matrix {
        match self.strategy {
            Linearization::PerIteration => self.system.dynamics().input_jacobian(x, u),
            Linearization::FrozenAt { state, input } => {
                self.system.dynamics().input_jacobian(state, input)
            }
        }
    }

    fn c(&self, subset: &[usize], x: &Vector) -> Matrix {
        match self.strategy {
            Linearization::PerIteration => self.system.jacobian_subset(subset, x),
            Linearization::FrozenAt { state, .. } => self.system.jacobian_subset(subset, state),
        }
    }
}

/// Wraps the listed angular components of a residual to `(−π, π]`.
fn wrap_components(mut v: Vector, angular: &[usize]) -> Vector {
    for &i in angular {
        v[i] = wrap_angle(v[i]);
    }
    v
}

/// Stacks the readings of a sensor subset in suite order.
fn stack_readings(readings: &[Vector], subset: &[usize]) -> Vector {
    let parts: Vec<&Vector> = subset.iter().map(|&i| &readings[i]).collect();
    Vector::concat_all(parts)
}

/// Executes one NUISE step (Algorithm 2).
///
/// # Errors
///
/// Returns [`CoreError::BadReadings`] when the supplied readings do not
/// match the sensor suite, [`CoreError::Numeric`] when a gain matrix is
/// singular (prevented up front by [`crate::ModeSet::validate`]), and
/// propagates linear-algebra failures.
pub fn nuise_step(input: NuiseInput<'_>) -> Result<NuiseOutput> {
    let NuiseInput {
        system,
        mode,
        x_prev,
        p_prev,
        u_prev,
        readings,
        linearization,
        compensate,
    } = input;

    validate_readings(system, readings)?;
    let lin = Lin {
        system,
        strategy: linearization,
    };

    let n = system.state_dim();
    let reference = mode.reference();
    let testing = mode.testing();
    let z2 = stack_readings(readings, reference);
    let angular2 = system.angular_components_subset(reference);
    let q = system.process_noise();
    let r2 = system.noise_subset(reference);

    // --- Step 1: actuator anomaly estimation (Alg. 2 lines 2–6). ---
    let a = lin.a(x_prev, u_prev);
    let g = lin.g(x_prev, u_prev);
    let x_bar = lin.f(x_prev, u_prev);
    let c2 = lin.c(reference, &x_bar);

    let p_tilde = (&(&a * &(p_prev * &a.transpose())) + q)
        .symmetrized()
        .expect("square by construction");
    let r2_star = (&c2.congruence(&p_tilde)? + &r2).symmetrized()?;
    let r2_star_inv = r2_star
        .inverse()
        .map_err(|_| CoreError::Numeric("reference innovation covariance is singular".into()))?;

    let f_mat = &c2 * &g; // m₂ × q
    let normal = (&f_mat.transpose() * &(&r2_star_inv * &f_mat)).symmetrized()?;
    let normal_inv = normal.inverse().map_err(|_| {
        CoreError::Numeric(
            "rank(C2*G) < input dimension: mode cannot estimate actuator anomalies".into(),
        )
    })?;
    let m2 = &normal_inv * &(&f_mat.transpose() * &r2_star_inv); // q × m₂

    let nu_tilde = wrap_components(&z2 - &lin.h(reference, &x_bar), &angular2);
    let d_a = &m2 * &nu_tilde;
    // WLS error covariance: M₂ R*₂ M₂ᵀ = (Fᵀ R*⁻¹ F)⁻¹.
    let p_a = normal_inv;

    // --- Step 2: compensated state prediction (lines 7–10). ---
    // Algorithm 2 line 7 prints x̂_{k|k−1} = f(x̂, u + d̂^a); we apply the
    // first-order-equivalent compensation x̂_{k|k−1} = f(x̂, u) + G·d̂^a,
    // which is exactly the model the covariance recursion below assumes.
    // For wheel-speed-commanded robots (Khepera) f is linear in u and the
    // two forms coincide; for input-saturated channels (the Tamiya's
    // steering stop) the printed form would push the *noise* of a weakly
    // observable anomaly estimate through tan(·) and the mechanical
    // clamp, biasing the prediction in a way the covariances cannot
    // represent (DESIGN.md §2 records this implementation note).
    // Challenge-2 ablation: without compensation the prediction ignores
    // d̂ᵃ and the error recursion is the plain EKF one (no projector, no
    // cross-correlation) — biased under real actuator misbehavior.
    let m2_dim = z2.len();
    let (x_pred, a_bar, q_bar, s) = if compensate {
        let x_pred = &x_bar + &(&g * &d_a);
        let gm2 = &g * &m2; // n × m₂
        let j_comp = &Matrix::identity(n) - &(&gm2 * &c2); // I − G·M₂·C₂
        let a_bar = &j_comp * &a;
        let q_bar = (&j_comp.congruence(q)? + &gm2.congruence(&r2)?).symmetrized()?;
        // Cross-covariance S = E[x̃_{k|k−1}·ξ₂ᵀ] = −G·M₂·R₂
        // (sign-corrected, see module docs).
        let s = -&(&gm2 * &r2);
        (x_pred, a_bar, q_bar, s)
    } else {
        (
            x_bar.clone(),
            a.clone(),
            q.clone(),
            Matrix::zeros(n, m2_dim),
        )
    };
    let p_pred = (&a_bar.congruence(p_prev)? + &q_bar).symmetrized()?;

    // --- Step 3: correlated-noise state update (lines 11–14). ---
    let nu = wrap_components(&z2 - &lin.h(reference, &x_pred), &angular2);
    let p_nu = {
        let cs = &c2 * &s;
        (&(&c2.congruence(&p_pred)? + &r2) + &(&cs + &cs.transpose())).symmetrized()?
    };
    // Pν is *structurally singular*: the innovation of the compensated
    // prediction is ν = (I − C₂GM₂)(C₂(Ae+ζ) + ξ₂), and `I − C₂GM₂` is an
    // oblique projector of rank m₂ − q (the input estimate consumed q
    // innovation directions). This is exactly why Algorithm 2's
    // likelihood uses the pseudo-inverse, pseudo-determinant and rank;
    // the minimum-MSE update gain on the remaining subspace uses the
    // pseudo-inverse as well.
    //
    // The zero-spectrum cutoff must carry an *absolute* floor tied to
    // the measurement-noise scale: when m₂ = q the projector annihilates
    // everything and Pν is numerically zero — a purely relative cutoff
    // would then promote its rounding noise to "signal" and produce a
    // ~1/ε gain that detonates the filter.
    let nu_eig = p_nu.symmetric_eigen()?;
    let noise_scale = (r2.trace() / r2.rows().max(1) as f64).max(f64::MIN_POSITIVE);
    let cutoff = (1e-9 * noise_scale).max(1e-10 * nu_eig.max_eigenvalue().abs());
    let p_nu_pinv = nu_eig.spectral_map(|l| if l.abs() > cutoff { 1.0 / l } else { 0.0 });
    let nu_rank = nu_eig
        .eigenvalues()
        .as_slice()
        .iter()
        .filter(|l| l.abs() > cutoff)
        .count();
    let nu_pdet = nu_eig
        .eigenvalues()
        .as_slice()
        .iter()
        .filter(|l| l.abs() > cutoff)
        .product::<f64>();
    let l = &(&(&p_pred * &c2.transpose()) + &s) * &p_nu_pinv; // n × m₂
    let mut x_new = &x_pred + &(&l * &nu);
    for &i in system.dynamics().angular_state_components() {
        x_new[i] = wrap_angle(x_new[i]);
    }
    let j_upd = &Matrix::identity(n) - &(&l * &c2); // I − L·C₂
    let p_new = {
        let cross = &(&j_upd * &s) * &l.transpose();
        (&(&j_upd.congruence(&p_pred)? + &l.congruence(&r2)?) - &(&cross + &cross.transpose()))
            .symmetrized()?
    };

    // --- Step 4: testing-sensor anomaly estimation (lines 15–16). ---
    let (d_s, p_s) = if testing.is_empty() {
        (Vector::zeros(0), Matrix::zeros(0, 0))
    } else {
        let z1 = stack_readings(readings, testing);
        let angular1 = system.angular_components_subset(testing);
        let c1 = lin.c(testing, &x_new);
        let r1 = system.noise_subset(testing);
        let d_s = wrap_components(&z1 - &lin.h(testing, &x_new), &angular1);
        let p_s = (&c1.congruence(&p_new)? + &r1).symmetrized()?;
        (d_s, p_s)
    };

    // --- Step 5: mode likelihood (lines 17–20). ---
    let (likelihood, consistency) = mode_likelihood(&nu, &p_nu_pinv, nu_rank, nu_pdet)?;

    Ok(NuiseOutput {
        state_estimate: x_new,
        state_covariance: p_new,
        actuator_anomaly: d_a,
        actuator_covariance: p_a,
        sensor_anomaly: d_s,
        sensor_covariance: p_s,
        likelihood,
        consistency,
        innovation: nu,
    })
}

/// Preallocated per-mode scratch for [`nuise_step_into`].
///
/// Sized once at construction from the system dimensions and the mode's
/// reference/testing partition, a workspace makes every subsequent
/// [`nuise_step_into`] call **allocation-free** with the
/// [`Linearization::PerIteration`] strategy: subset layouts, noise
/// covariances and angular-component lists are cached, and every
/// intermediate matrix of Algorithm 2 lives in a reusable buffer
/// (including the LU and Jacobi-eigen factorizations).
///
/// The workspace-based path produces **bitwise-identical** outputs to
/// the allocating [`nuise_step`]: every in-place kernel in
/// `roboads_linalg` replicates the exact loop structure and
/// accumulation order of its allocating counterpart, and the tests in
/// this module pin the equivalence with exact `==` comparisons.
#[derive(Debug, Clone)]
pub struct NuiseWorkspace {
    // Cached per-mode constants.
    ref_slices: Vec<SensorSlice>,
    test_slices: Vec<SensorSlice>,
    angular2: Vec<usize>,
    angular1: Vec<usize>,
    r2: Matrix,
    r1: Matrix,
    noise_scale: f64,
    n: usize,
    q_dim: usize,
    m2_dim: usize,
    m1_dim: usize,
    // Vector scratch.
    z2: Vector,
    z1: Vector,
    h2: Vector,
    h1: Vector,
    nu_tilde: Vector,
    tmp_n: Vector,
    // Model evaluation scratch.
    a_mat: Matrix,  // n × n
    g_mat: Matrix,  // n × q
    x_bar: Vector,  // n
    x_pred: Vector, // n
    c2: Matrix,     // m₂ × n
    c1: Matrix,     // m₁ × n
    // n × n scratch.
    p_tilde: Matrix,
    j_comp: Matrix,
    a_bar: Matrix,
    q_bar: Matrix,
    p_pred: Matrix,
    j_upd: Matrix,
    cross: Matrix,
    tmp_nn_a: Matrix,
    tmp_nn_b: Matrix,
    // m₂ × m₂ scratch.
    r2_star: Matrix,
    r2_star_inv: Matrix,
    p_nu: Matrix,
    p_nu_pinv: Matrix,
    tmp_m2m2_a: Matrix,
    tmp_m2m2_b: Matrix,
    // Mixed-shape scratch.
    f_mat: Matrix,      // m₂ × q
    f_mat_t: Matrix,    // q × m₂
    tmp_m2q: Matrix,    // m₂ × q
    tmp_qm2: Matrix,    // q × m₂
    m2_gain: Matrix,    // q × m₂ (the paper's M₂)
    normal: Matrix,     // q × q
    normal_inv: Matrix, // q × q
    gm2: Matrix,        // n × m₂
    s_mat: Matrix,      // n × m₂
    l_gain: Matrix,     // n × m₂
    tmp_nm2_a: Matrix,  // n × m₂
    tmp_nm2_b: Matrix,  // n × m₂
    // Congruence scratches (cols × rows of the left factor).
    sc_n_m2: Matrix, // n × m₂
    sc_n_n: Matrix,  // n × n
    sc_m2_n: Matrix, // m₂ × n
    sc_n_m1: Matrix, // n × m₁
    // Reusable factorizations.
    lu_m2: LuWorkspace,
    lu_q: LuWorkspace,
    eigen: EigenWorkspace,
}

impl NuiseWorkspace {
    /// Builds the scratch space for running `mode` against `system`.
    pub fn new(system: &RobotSystem, mode: &Mode) -> Self {
        let n = system.state_dim();
        let q_dim = system.input_dim();
        let m2_dim = system.subset_dim(mode.reference());
        let m1_dim = system.subset_dim(mode.testing());
        let r2 = system.noise_subset(mode.reference());
        let r1 = if mode.testing().is_empty() {
            Matrix::zeros(0, 0)
        } else {
            system.noise_subset(mode.testing())
        };
        let noise_scale = (r2.trace() / r2.rows().max(1) as f64).max(f64::MIN_POSITIVE);
        NuiseWorkspace {
            ref_slices: system.subset_slices(mode.reference()),
            test_slices: system.subset_slices(mode.testing()),
            angular2: system.angular_components_subset(mode.reference()),
            angular1: system.angular_components_subset(mode.testing()),
            r2,
            r1,
            noise_scale,
            n,
            q_dim,
            m2_dim,
            m1_dim,
            z2: Vector::zeros(m2_dim),
            z1: Vector::zeros(m1_dim),
            h2: Vector::zeros(m2_dim),
            h1: Vector::zeros(m1_dim),
            nu_tilde: Vector::zeros(m2_dim),
            tmp_n: Vector::zeros(n),
            a_mat: Matrix::zeros(n, n),
            g_mat: Matrix::zeros(n, q_dim),
            x_bar: Vector::zeros(n),
            x_pred: Vector::zeros(n),
            c2: Matrix::zeros(m2_dim, n),
            c1: Matrix::zeros(m1_dim, n),
            p_tilde: Matrix::zeros(n, n),
            j_comp: Matrix::zeros(n, n),
            a_bar: Matrix::zeros(n, n),
            q_bar: Matrix::zeros(n, n),
            p_pred: Matrix::zeros(n, n),
            j_upd: Matrix::zeros(n, n),
            cross: Matrix::zeros(n, n),
            tmp_nn_a: Matrix::zeros(n, n),
            tmp_nn_b: Matrix::zeros(n, n),
            r2_star: Matrix::zeros(m2_dim, m2_dim),
            r2_star_inv: Matrix::zeros(m2_dim, m2_dim),
            p_nu: Matrix::zeros(m2_dim, m2_dim),
            p_nu_pinv: Matrix::zeros(m2_dim, m2_dim),
            tmp_m2m2_a: Matrix::zeros(m2_dim, m2_dim),
            tmp_m2m2_b: Matrix::zeros(m2_dim, m2_dim),
            f_mat: Matrix::zeros(m2_dim, q_dim),
            f_mat_t: Matrix::zeros(q_dim, m2_dim),
            tmp_m2q: Matrix::zeros(m2_dim, q_dim),
            tmp_qm2: Matrix::zeros(q_dim, m2_dim),
            m2_gain: Matrix::zeros(q_dim, m2_dim),
            normal: Matrix::zeros(q_dim, q_dim),
            normal_inv: Matrix::zeros(q_dim, q_dim),
            gm2: Matrix::zeros(n, m2_dim),
            s_mat: Matrix::zeros(n, m2_dim),
            l_gain: Matrix::zeros(n, m2_dim),
            tmp_nm2_a: Matrix::zeros(n, m2_dim),
            tmp_nm2_b: Matrix::zeros(n, m2_dim),
            sc_n_m2: Matrix::zeros(n, m2_dim),
            sc_n_n: Matrix::zeros(n, n),
            sc_m2_n: Matrix::zeros(m2_dim, n),
            sc_n_m1: Matrix::zeros(n, m1_dim),
            lu_m2: LuWorkspace::new(m2_dim),
            lu_q: LuWorkspace::new(q_dim),
            eigen: EigenWorkspace::new(m2_dim),
        }
    }

    /// Cached slice layout of the mode's testing set (offsets into the
    /// stacked `sensor_anomaly`/`sensor_covariance`).
    pub fn testing_slices(&self) -> &[SensorSlice] {
        &self.test_slices
    }

    /// A zeroed [`NuiseOutput`] with every buffer pre-sized for this
    /// workspace's mode, ready for [`nuise_step_into`].
    pub fn new_output(&self) -> NuiseOutput {
        NuiseOutput {
            state_estimate: Vector::zeros(self.n),
            state_covariance: Matrix::zeros(self.n, self.n),
            actuator_anomaly: Vector::zeros(self.q_dim),
            actuator_covariance: Matrix::zeros(self.q_dim, self.q_dim),
            sensor_anomaly: Vector::zeros(self.m1_dim),
            sensor_covariance: Matrix::zeros(self.m1_dim, self.m1_dim),
            likelihood: 0.0,
            consistency: 0.0,
            innovation: Vector::zeros(self.m2_dim),
        }
    }
}

/// Executes one NUISE step into preallocated buffers — the engine's hot
/// path. Bitwise-identical to [`nuise_step`] (see [`NuiseWorkspace`]),
/// but performs **zero heap allocations** in steady state with the
/// [`Linearization::PerIteration`] strategy. The §V-G frozen baseline
/// delegates to the allocating path (it is not a hot path).
///
/// `ws` and `out` must have been built for the same `(system, mode)`
/// pair as `input` (use [`NuiseWorkspace::new`] and
/// [`NuiseWorkspace::new_output`]); `out` is fully overwritten on
/// success and unspecified on error.
///
/// # Errors
///
/// Identical to [`nuise_step`].
pub fn nuise_step_into(
    input: NuiseInput<'_>,
    ws: &mut NuiseWorkspace,
    out: &mut NuiseOutput,
) -> Result<()> {
    if !matches!(input.linearization, Linearization::PerIteration) {
        *out = nuise_step(input)?;
        return Ok(());
    }
    let NuiseInput {
        system,
        mode: _,
        x_prev,
        p_prev,
        u_prev,
        readings,
        linearization: _,
        compensate,
    } = input;

    validate_readings(system, readings)?;

    let q = system.process_noise();
    for slice in &ws.ref_slices {
        ws.z2.as_mut_slice()[slice.offset..slice.offset + slice.len]
            .copy_from_slice(readings[slice.sensor].as_slice());
    }

    // --- Step 1: actuator anomaly estimation (Alg. 2 lines 2–6). ---
    system
        .dynamics()
        .state_jacobian_into(x_prev, u_prev, &mut ws.a_mat);
    system
        .dynamics()
        .input_jacobian_into(x_prev, u_prev, &mut ws.g_mat);
    system.dynamics().step_into(x_prev, u_prev, &mut ws.x_bar);
    system.jacobian_subset_into(&ws.ref_slices, &ws.x_bar, &mut ws.c2);

    // P̃ = (A·P·Aᵀ + Q).symmetrized()
    p_prev.mul_transpose_into(&ws.a_mat, &mut ws.tmp_nn_a);
    ws.a_mat.mul_into(&ws.tmp_nn_a, &mut ws.p_tilde);
    ws.p_tilde += q;
    ws.p_tilde
        .symmetrize_in_place()
        .expect("square by construction");

    // R*₂ = (C₂·P̃·C₂ᵀ + R₂).symmetrized(), then its inverse.
    ws.c2
        .congruence_into(&ws.p_tilde, &mut ws.sc_n_m2, &mut ws.r2_star)?;
    ws.r2_star += &ws.r2;
    ws.r2_star.symmetrize_in_place()?;
    ws.lu_m2
        .factorize(&ws.r2_star)
        .and_then(|()| ws.lu_m2.inverse_into(&mut ws.r2_star_inv))
        .map_err(|_| CoreError::Numeric("reference innovation covariance is singular".into()))?;

    // M₂ = (Fᵀ·R*⁻¹·F)⁻¹·Fᵀ·R*⁻¹ with F = C₂·G.
    ws.c2.mul_into(&ws.g_mat, &mut ws.f_mat);
    ws.f_mat.transpose_into(&mut ws.f_mat_t);
    ws.r2_star_inv.mul_into(&ws.f_mat, &mut ws.tmp_m2q);
    ws.f_mat_t.mul_into(&ws.tmp_m2q, &mut ws.normal);
    ws.normal.symmetrize_in_place()?;
    ws.lu_q
        .factorize(&ws.normal)
        .and_then(|()| ws.lu_q.inverse_into(&mut ws.normal_inv))
        .map_err(|_| {
            CoreError::Numeric(
                "rank(C2*G) < input dimension: mode cannot estimate actuator anomalies".into(),
            )
        })?;
    ws.f_mat_t.mul_into(&ws.r2_star_inv, &mut ws.tmp_qm2);
    ws.normal_inv.mul_into(&ws.tmp_qm2, &mut ws.m2_gain);

    // ν̃ = wrap(z₂ − h(ref, x̄)), d̂ᵃ = M₂·ν̃, Pᵃ = (Fᵀ·R*⁻¹·F)⁻¹.
    system.measure_subset_into(&ws.ref_slices, &ws.x_bar, &mut ws.h2);
    ws.nu_tilde.copy_from(&ws.z2);
    ws.nu_tilde -= &ws.h2;
    for &i in &ws.angular2 {
        ws.nu_tilde[i] = wrap_angle(ws.nu_tilde[i]);
    }
    ws.m2_gain
        .mul_vec_into(&ws.nu_tilde, &mut out.actuator_anomaly);
    out.actuator_covariance.copy_from(&ws.normal_inv);

    // --- Step 2: compensated state prediction (lines 7–10). ---
    // Same first-order-equivalent compensation as `nuise_step` (see the
    // implementation note there); this path only mirrors the math.
    if compensate {
        ws.g_mat.mul_vec_into(&out.actuator_anomaly, &mut ws.tmp_n);
        ws.x_pred.copy_from(&ws.x_bar);
        ws.x_pred += &ws.tmp_n;
        ws.g_mat.mul_into(&ws.m2_gain, &mut ws.gm2);
        // J = I − G·M₂·C₂
        ws.gm2.mul_into(&ws.c2, &mut ws.tmp_nn_a);
        ws.j_comp.set_identity();
        ws.j_comp -= &ws.tmp_nn_a;
        ws.j_comp.mul_into(&ws.a_mat, &mut ws.a_bar);
        // Q̄ = (J·Q·Jᵀ + G·M₂·R₂·M₂ᵀ·Gᵀ).symmetrized()
        ws.j_comp
            .congruence_into(q, &mut ws.sc_n_n, &mut ws.q_bar)?;
        ws.gm2
            .congruence_into(&ws.r2, &mut ws.sc_m2_n, &mut ws.tmp_nn_b)?;
        ws.q_bar += &ws.tmp_nn_b;
        ws.q_bar.symmetrize_in_place()?;
        // S = −G·M₂·R₂ (sign-corrected, see module docs).
        ws.gm2.mul_into(&ws.r2, &mut ws.s_mat);
        ws.s_mat.negate();
    } else {
        ws.x_pred.copy_from(&ws.x_bar);
        ws.a_bar.copy_from(&ws.a_mat);
        ws.q_bar.copy_from(q);
        ws.s_mat.fill(0.0);
    }
    ws.a_bar
        .congruence_into(p_prev, &mut ws.sc_n_n, &mut ws.p_pred)?;
    ws.p_pred += &ws.q_bar;
    ws.p_pred.symmetrize_in_place()?;

    // --- Step 3: correlated-noise state update (lines 11–14). ---
    system.measure_subset_into(&ws.ref_slices, &ws.x_pred, &mut ws.h2);
    out.innovation.copy_from(&ws.z2);
    out.innovation -= &ws.h2;
    for &i in &ws.angular2 {
        out.innovation[i] = wrap_angle(out.innovation[i]);
    }
    // Pν = ((C₂·P·C₂ᵀ + R₂) + (C₂S + (C₂S)ᵀ)).symmetrized()
    ws.c2.mul_into(&ws.s_mat, &mut ws.tmp_m2m2_a);
    ws.c2
        .congruence_into(&ws.p_pred, &mut ws.sc_n_m2, &mut ws.p_nu)?;
    ws.p_nu += &ws.r2;
    ws.tmp_m2m2_a.transpose_into(&mut ws.tmp_m2m2_b);
    ws.tmp_m2m2_a += &ws.tmp_m2m2_b;
    ws.p_nu += &ws.tmp_m2m2_a;
    ws.p_nu.symmetrize_in_place()?;
    // Pseudo-inverse on the informative spectrum (see `nuise_step` for
    // why Pν is structurally singular and the cutoff carries an
    // absolute noise-scale floor).
    ws.eigen.factorize(&ws.p_nu)?;
    let cutoff = (1e-9 * ws.noise_scale).max(1e-10 * ws.eigen.max_eigenvalue().abs());
    ws.eigen.spectral_map_into(
        |l| if l.abs() > cutoff { 1.0 / l } else { 0.0 },
        &mut ws.p_nu_pinv,
    );
    let nu_rank = ws
        .eigen
        .eigenvalues()
        .as_slice()
        .iter()
        .filter(|l| l.abs() > cutoff)
        .count();
    let nu_pdet = ws
        .eigen
        .eigenvalues()
        .as_slice()
        .iter()
        .filter(|l| l.abs() > cutoff)
        .product::<f64>();
    // L = (P·C₂ᵀ + S)·Pν†
    ws.p_pred.mul_transpose_into(&ws.c2, &mut ws.tmp_nm2_a);
    ws.tmp_nm2_a += &ws.s_mat;
    ws.tmp_nm2_a.mul_into(&ws.p_nu_pinv, &mut ws.l_gain);
    ws.l_gain.mul_vec_into(&out.innovation, &mut ws.tmp_n);
    out.state_estimate.copy_from(&ws.x_pred);
    out.state_estimate += &ws.tmp_n;
    for &i in system.dynamics().angular_state_components() {
        out.state_estimate[i] = wrap_angle(out.state_estimate[i]);
    }
    // J = I − L·C₂, Pˣ = (J·P·Jᵀ + L·R₂·Lᵀ − (JSLᵀ + (JSLᵀ)ᵀ)).symmetrized()
    ws.l_gain.mul_into(&ws.c2, &mut ws.tmp_nn_a);
    ws.j_upd.set_identity();
    ws.j_upd -= &ws.tmp_nn_a;
    ws.j_upd.mul_into(&ws.s_mat, &mut ws.tmp_nm2_b);
    ws.tmp_nm2_b.mul_transpose_into(&ws.l_gain, &mut ws.cross);
    ws.j_upd
        .congruence_into(&ws.p_pred, &mut ws.sc_n_n, &mut out.state_covariance)?;
    ws.l_gain
        .congruence_into(&ws.r2, &mut ws.sc_m2_n, &mut ws.tmp_nn_a)?;
    out.state_covariance += &ws.tmp_nn_a;
    ws.cross.transpose_into(&mut ws.tmp_nn_b);
    ws.cross += &ws.tmp_nn_b;
    out.state_covariance -= &ws.cross;
    out.state_covariance.symmetrize_in_place()?;

    // --- Step 4: testing-sensor anomaly estimation (lines 15–16). ---
    if !ws.test_slices.is_empty() {
        for slice in &ws.test_slices {
            ws.z1.as_mut_slice()[slice.offset..slice.offset + slice.len]
                .copy_from_slice(readings[slice.sensor].as_slice());
        }
        system.jacobian_subset_into(&ws.test_slices, &out.state_estimate, &mut ws.c1);
        system.measure_subset_into(&ws.test_slices, &out.state_estimate, &mut ws.h1);
        out.sensor_anomaly.copy_from(&ws.z1);
        out.sensor_anomaly -= &ws.h1;
        for &i in &ws.angular1 {
            out.sensor_anomaly[i] = wrap_angle(out.sensor_anomaly[i]);
        }
        ws.c1.congruence_into(
            &out.state_covariance,
            &mut ws.sc_n_m1,
            &mut out.sensor_covariance,
        )?;
        out.sensor_covariance += &ws.r1;
        out.sensor_covariance.symmetrize_in_place()?;
    }

    // --- Step 5: mode likelihood (lines 17–20). ---
    let (likelihood, consistency) =
        mode_likelihood(&out.innovation, &ws.p_nu_pinv, nu_rank, nu_pdet)?;
    out.likelihood = likelihood;
    out.consistency = consistency;
    Ok(())
}

/// Degenerate-Gaussian likelihood of `ν` under covariance `P` (Alg. 2
/// line 20): `exp(−νᵀP†ν/2) / ((2π)^{n/2}·|P|₊^{1/2})` with
/// `n = rank(P)` — plus the **dimension-free consistency**: the χ²(n)
/// survival p-value of the same normalized statistic.
///
/// The raw density is the paper's printed quantity, but densities of
/// modes with *different* innovation dimensionality are not
/// commensurable (a rank-2 LiDAR innovation's density constant dwarfs a
/// rank-1 pose innovation's), so comparing them directly permanently
/// locks the selector onto one mode. The engine therefore feeds the
/// p-value — identically distributed Uniform(0,1) for every consistent
/// mode regardless of its dimension — into the probability update, and
/// reports the printed density for fidelity/diagnostics.
fn mode_likelihood(nu: &Vector, pinv: &Matrix, rank: usize, pdet: f64) -> Result<(f64, f64)> {
    if rank == 0 {
        // No informative direction (m₂ = q: the input estimate consumed
        // the whole innovation): every innovation is equally likely.
        return Ok((1.0, 1.0));
    }
    let stat = nu.quadratic_form(pinv)?.max(0.0);
    let norm = (2.0 * std::f64::consts::PI).powf(rank as f64 / 2.0) * pdet.abs().sqrt();
    let density = (-0.5 * stat).exp() / norm.max(f64::MIN_POSITIVE);
    let consistency = roboads_stats::ChiSquared::new(rank)
        .and_then(|chi| chi.survival(stat))
        .map_err(|e| CoreError::Numeric(e.to_string()))?;
    Ok((density, consistency))
}

pub(crate) fn validate_readings(system: &RobotSystem, readings: &[Vector]) -> Result<()> {
    if readings.len() != system.sensor_count() {
        return Err(CoreError::BadReadings {
            reason: format!(
                "expected {} sensor readings, got {}",
                system.sensor_count(),
                readings.len()
            ),
        });
    }
    for (i, z) in readings.iter().enumerate() {
        let expected = system.sensor(i).map_err(|e| CoreError::BadReadings {
            reason: e.to_string(),
        })?;
        if z.len() != expected.dim() {
            return Err(CoreError::BadReadings {
                reason: format!(
                    "sensor {i} ({}) reading has {} components, expected {}",
                    expected.name(),
                    z.len(),
                    expected.dim()
                ),
            });
        }
        if !z.is_finite() {
            return Err(CoreError::BadReadings {
                reason: format!("sensor {i} ({}) reading is not finite", expected.name()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    fn khepera_setup() -> (RobotSystem, Mode, Vector, Matrix, Vector) {
        let system = presets::khepera_system();
        // Trust the IPS, test encoder and LiDAR.
        let mode = Mode::new(vec![0], vec![1, 2]);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.3]);
        let p0 = Matrix::identity(3) * 1e-4;
        let u = Vector::from_slice(&[0.06, 0.05]);
        (system, mode, x0, p0, u)
    }

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    fn step(
        system: &RobotSystem,
        mode: &Mode,
        x_prev: &Vector,
        p_prev: &Matrix,
        u: &Vector,
        readings: &[Vector],
    ) -> NuiseOutput {
        nuise_step(NuiseInput {
            system,
            mode,
            x_prev,
            p_prev,
            u_prev: u,
            readings,
            linearization: &Linearization::PerIteration,
            compensate: true,
        })
        .unwrap()
    }

    #[test]
    fn clean_data_yields_near_zero_anomalies() {
        let (system, mode, x0, p0, u) = khepera_setup();
        let x1 = system.dynamics().step(&x0, &u);
        let readings = clean_readings(&system, &x1);
        let out = step(&system, &mode, &x0, &p0, &u, &readings);
        assert!(
            out.actuator_anomaly.max_abs() < 1e-9,
            "{:?}",
            out.actuator_anomaly
        );
        assert!(
            out.sensor_anomaly.max_abs() < 1e-9,
            "{:?}",
            out.sensor_anomaly
        );
        assert!((&out.state_estimate - &x1).max_abs() < 1e-9);
        assert!(out.likelihood > 0.0);
    }

    #[test]
    fn actuator_bias_is_estimated() {
        let (system, mode, x0, p0, u) = khepera_setup();
        // Executed commands differ from planned by a constant bias.
        let bias = Vector::from_slice(&[0.02, -0.01]);
        let x1 = system.dynamics().step(&x0, &(&u + &bias));
        let readings = clean_readings(&system, &x1);
        let out = step(&system, &mode, &x0, &p0, &u, &readings);
        assert!(
            (&out.actuator_anomaly - &bias).max_abs() < 1e-6,
            "estimated {:?}, injected {bias:?}",
            out.actuator_anomaly
        );
        // Compensation keeps the state estimate accurate despite the bias.
        assert!((&out.state_estimate - &x1).max_abs() < 1e-6);
    }

    #[test]
    fn testing_sensor_bias_is_estimated() {
        let (system, mode, x0, p0, u) = khepera_setup();
        let x1 = system.dynamics().step(&x0, &u);
        let mut readings = clean_readings(&system, &x1);
        // Corrupt the wheel encoder (testing sensor index 1) on x.
        readings[1][0] += 0.07;
        let out = step(&system, &mode, &x0, &p0, &u, &readings);
        // Stacked testing vector: encoder (3) then lidar (4).
        assert!((out.sensor_anomaly[0] - 0.07).abs() < 1e-6);
        assert!(out.sensor_anomaly.segment(1, 6).max_abs() < 1e-6);
        // State estimation is untouched (encoder is not a reference).
        assert!((&out.state_estimate - &x1).max_abs() < 1e-9);
    }

    #[test]
    fn reference_corruption_lowers_likelihood() {
        let (system, _, x0, p0, u) = khepera_setup();
        let x1 = system.dynamics().step(&x0, &u);
        let mut readings = clean_readings(&system, &x1);
        readings[0][0] += 0.1; // corrupt the IPS

        // Mode trusting the IPS is inconsistent; mode trusting the
        // encoder explains the data.
        let bad_mode = Mode::new(vec![0], vec![1, 2]);
        let good_mode = Mode::new(vec![1], vec![0, 2]);
        let bad = step(&system, &bad_mode, &x0, &p0, &u, &readings);
        let good = step(&system, &good_mode, &x0, &p0, &u, &readings);
        assert!(
            good.likelihood > bad.likelihood * 10.0,
            "good {} vs bad {}",
            good.likelihood,
            bad.likelihood
        );
    }

    #[test]
    fn covariances_stay_psd_and_bounded_over_long_runs() {
        let (system, mode, mut x_est, mut p, u) = khepera_setup();
        let mut x_true = x_est.clone();
        for k in 0..200 {
            x_true = system.dynamics().step(&x_true, &u);
            let readings = clean_readings(&system, &x_true);
            let out = step(&system, &mode, &x_est, &p, &u, &readings);
            x_est = out.state_estimate;
            p = out.state_covariance;
            assert!(
                p.is_positive_semi_definite(1e-12).unwrap(),
                "P^x not PSD at iteration {k}"
            );
            assert!(
                out.actuator_covariance
                    .is_positive_semi_definite(1e-12)
                    .unwrap(),
                "P^a not PSD at iteration {k}"
            );
            assert!(p.max_abs() < 1.0, "covariance diverged at iteration {k}");
        }
        assert!((&x_est - &x_true).max_abs() < 1e-6);
    }

    #[test]
    fn heading_branch_cut_does_not_create_phantom_anomalies() {
        let (system, mode, _, p0, _) = khepera_setup();
        // Robot heading just below +π, turning CCW across the cut.
        let x0 = Vector::from_slice(&[2.0, 2.0, std::f64::consts::PI - 0.01]);
        let u = Vector::from_slice(&[0.0, 0.06]);
        let x1 = system.dynamics().step(&x0, &u);
        assert!(x1[2] < 0.0, "test should cross the branch cut");
        let readings = clean_readings(&system, &x1);
        let out = step(&system, &mode, &x0, &p0, &u, &readings);
        assert!(out.actuator_anomaly.max_abs() < 1e-6);
        assert!(out.sensor_anomaly.max_abs() < 1e-6);
    }

    #[test]
    fn empty_testing_set_is_supported() {
        let (system, _, x0, p0, u) = khepera_setup();
        let mode = Mode::new(vec![0, 1, 2], vec![]);
        let x1 = system.dynamics().step(&x0, &u);
        let readings = clean_readings(&system, &x1);
        let out = step(&system, &mode, &x0, &p0, &u, &readings);
        assert_eq!(out.sensor_anomaly.len(), 0);
        assert!(out.likelihood > 0.0);
    }

    #[test]
    fn bad_readings_are_rejected() {
        let (system, mode, x0, p0, u) = khepera_setup();
        let base = clean_readings(&system, &x0);

        let mut wrong_count = base.clone();
        wrong_count.pop();
        let err = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &p0,
            u_prev: &u,
            readings: &wrong_count,
            linearization: &Linearization::PerIteration,
            compensate: true,
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));

        let mut nan = base.clone();
        nan[0][0] = f64::NAN;
        let err = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &p0,
            u_prev: &u,
            readings: &nan,
            linearization: &Linearization::PerIteration,
            compensate: true,
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));

        let mut wrong_dim = base;
        wrong_dim[2] = Vector::zeros(2);
        let err = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x0,
            p_prev: &p0,
            u_prev: &u,
            readings: &wrong_dim,
            linearization: &Linearization::PerIteration,
            compensate: true,
        })
        .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));
    }

    #[test]
    fn workspace_step_is_bitwise_identical_to_allocating_step() {
        let (system, _, x0, p0, u) = khepera_setup();
        // Cover every reference/testing partition shape, including the
        // empty-testing mode, over a multi-step trajectory so the
        // workspace is exercised warm (reuse) as well as cold.
        let modes = [
            Mode::new(vec![0], vec![1, 2]),
            Mode::new(vec![1], vec![0, 2]),
            Mode::new(vec![2], vec![0, 1]),
            Mode::new(vec![0, 1, 2], vec![]),
        ];
        for mode in &modes {
            let mut ws = NuiseWorkspace::new(&system, mode);
            let mut out = ws.new_output();
            let mut x_est = x0.clone();
            let mut p = p0.clone();
            let mut x_true = x0.clone();
            for k in 0..20 {
                x_true = system.dynamics().step(&x_true, &u);
                let mut readings = clean_readings(&system, &x_true);
                if k > 10 {
                    readings[1][0] += 0.05; // exercise nonzero anomalies
                }
                let input = NuiseInput {
                    system: &system,
                    mode,
                    x_prev: &x_est,
                    p_prev: &p,
                    u_prev: &u,
                    readings: &readings,
                    linearization: &Linearization::PerIteration,
                    compensate: true,
                };
                let reference = nuise_step(input).unwrap();
                nuise_step_into(input, &mut ws, &mut out).unwrap();
                assert_eq!(out, reference, "mode {mode:?} diverged at step {k}");
                x_est = reference.state_estimate;
                p = reference.state_covariance;
            }
        }
    }

    #[test]
    fn workspace_step_matches_without_compensation_and_frozen() {
        let (system, mode, x0, p0, u) = khepera_setup();
        let x1 = system.dynamics().step(&x0, &u);
        let readings = clean_readings(&system, &x1);
        let mut ws = NuiseWorkspace::new(&system, &mode);
        let mut out = ws.new_output();
        for linearization in [
            Linearization::PerIteration,
            Linearization::FrozenAt {
                state: x0.clone(),
                input: u.clone(),
            },
        ] {
            for compensate in [true, false] {
                let input = NuiseInput {
                    system: &system,
                    mode: &mode,
                    x_prev: &x0,
                    p_prev: &p0,
                    u_prev: &u,
                    readings: &readings,
                    linearization: &linearization,
                    compensate,
                };
                let reference = nuise_step(input).unwrap();
                nuise_step_into(input, &mut ws, &mut out).unwrap();
                assert_eq!(out, reference);
            }
        }
    }

    #[test]
    fn workspace_step_propagates_bad_readings() {
        let (system, mode, x0, p0, u) = khepera_setup();
        let mut ws = NuiseWorkspace::new(&system, &mode);
        let mut out = ws.new_output();
        let mut readings = clean_readings(&system, &x0);
        readings.pop();
        let err = nuise_step_into(
            NuiseInput {
                system: &system,
                mode: &mode,
                x_prev: &x0,
                p_prev: &p0,
                u_prev: &u,
                readings: &readings,
                linearization: &Linearization::PerIteration,
                compensate: true,
            },
            &mut ws,
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadReadings { .. }));
    }

    #[test]
    fn frozen_linearization_degrades_after_turning() {
        let (system, mode, x0, p0, _) = khepera_setup();
        let frozen = Linearization::FrozenAt {
            state: x0.clone(),
            input: Vector::from_slice(&[0.05, 0.05]),
        };
        // Drive through a 90° turn; the frozen model keeps predicting
        // motion along the original heading.
        let u_turn = Vector::from_slice(&[0.02, 0.10]);
        let mut x_true = x0.clone();
        let mut x_nl = x0.clone();
        let mut p_nl = p0.clone();
        let mut x_fr = x0;
        let mut p_fr = p0;
        for _ in 0..60 {
            x_true = system.dynamics().step(&x_true, &u_turn);
            let readings = clean_readings(&system, &x_true);
            let out_nl = step(&system, &mode, &x_nl, &p_nl, &u_turn, &readings);
            x_nl = out_nl.state_estimate;
            p_nl = out_nl.state_covariance;
            let out_fr = nuise_step(NuiseInput {
                system: &system,
                mode: &mode,
                x_prev: &x_fr,
                p_prev: &p_fr,
                u_prev: &u_turn,
                readings: &readings,
                linearization: &frozen,
                compensate: true,
            })
            .unwrap();
            x_fr = out_fr.state_estimate;
            p_fr = out_fr.state_covariance;
        }
        let err_nl = (&x_nl - &x_true).norm();
        let err_fr = (&x_fr - &x_true).norm();
        assert!(err_nl < 1e-6, "nonlinear estimator should track: {err_nl}");
        assert!(
            err_fr > 10.0 * err_nl.max(1e-9),
            "frozen linearization should degrade: {err_fr} vs {err_nl}"
        );
    }
}
