use roboads_stats::{Rng, SeedableRng, StdRng};

use roboads_models::Arena;

use crate::{ControlError, Path, Result};

/// RRT* (optimal rapidly-exploring random tree) planner over an [`Arena`].
///
/// The paper's mission planner "calculates a collision-free path using
/// optimal rapidly-exploring random trees (RRT*)" (§V-A, citing Karaman &
/// Frazzoli 2011). This implementation uses goal biasing, bounded-step
/// steering, cost-aware parent selection within a neighborhood radius and
/// rewiring — the standard RRT* loop — plus a final shortcut-smoothing
/// pass.
///
/// Planning is deterministic for a given seed, which keeps every
/// benchmark and test reproducible.
///
/// # Example
///
/// ```
/// use roboads_models::presets;
/// use roboads_control::RrtStar;
///
/// # fn main() -> Result<(), roboads_control::ControlError> {
/// let arena = presets::evaluation_arena();
/// let planner = RrtStar::new(&arena, 0.08)?;
/// let path = planner.plan((0.5, 0.5), (3.5, 3.5), 7)?;
/// assert_eq!(path.waypoints()[0], (0.5, 0.5));
/// assert_eq!(path.goal(), (3.5, 3.5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RrtStar {
    arena: Arena,
    robot_radius: f64,
    max_iterations: usize,
    step_size: f64,
    neighbor_radius: f64,
    goal_bias: f64,
    goal_tolerance: f64,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    x: f64,
    y: f64,
    parent: usize,
    cost: f64,
}

impl RrtStar {
    /// Creates a planner for the given arena and robot radius, with
    /// evaluation-tuned defaults (4000 iterations, 0.3 m steps, 0.6 m
    /// rewiring radius, 10 % goal bias).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for a non-positive
    /// robot radius.
    pub fn new(arena: &Arena, robot_radius: f64) -> Result<Self> {
        if !(robot_radius.is_finite() && robot_radius > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "robot_radius",
                value: format!("{robot_radius}"),
            });
        }
        Ok(RrtStar {
            arena: arena.clone(),
            robot_radius,
            max_iterations: 4000,
            step_size: 0.3,
            neighbor_radius: 0.6,
            goal_bias: 0.1,
            goal_tolerance: 0.15,
        })
    }

    /// Overrides the iteration budget.
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Plans a collision-free path from `start` to `goal` using the seed
    /// for the sampling stream.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::PositionNotFree`] if either endpoint is in
    /// collision, and [`ControlError::NoPathFound`] if the iteration
    /// budget expires without reaching the goal.
    pub fn plan(&self, start: (f64, f64), goal: (f64, f64), seed: u64) -> Result<Path> {
        for (x, y) in [start, goal] {
            if !self.arena.is_free(x, y, self.robot_radius) {
                return Err(ControlError::PositionNotFree { x, y });
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nodes = vec![Node {
            x: start.0,
            y: start.1,
            parent: usize::MAX,
            cost: 0.0,
        }];
        let mut best_goal_node: Option<usize> = None;

        for _ in 0..self.max_iterations {
            // Sample, with goal bias.
            let (sx, sy) = if rng.random() < self.goal_bias {
                goal
            } else {
                (
                    rng.random() * self.arena.width(),
                    rng.random() * self.arena.height(),
                )
            };
            // Nearest node.
            let nearest = (0..nodes.len())
                .min_by(|&a, &b| {
                    d2(&nodes[a], sx, sy)
                        .partial_cmp(&d2(&nodes[b], sx, sy))
                        .expect("finite distances")
                })
                .expect("tree is nonempty");
            // Steer toward the sample by at most step_size.
            let (nx, ny) = {
                let dx = sx - nodes[nearest].x;
                let dy = sy - nodes[nearest].y;
                let d = (dx * dx + dy * dy).sqrt();
                if d < 1e-9 {
                    continue;
                }
                let t = (self.step_size / d).min(1.0);
                (nodes[nearest].x + t * dx, nodes[nearest].y + t * dy)
            };
            if !self.arena.is_free(nx, ny, self.robot_radius) {
                continue;
            }
            // Choose the lowest-cost reachable parent in the neighborhood.
            let neighbors: Vec<usize> = (0..nodes.len())
                .filter(|&i| d2(&nodes[i], nx, ny).sqrt() <= self.neighbor_radius)
                .collect();
            let mut parent = nearest;
            let mut cost = nodes[nearest].cost + d2(&nodes[nearest], nx, ny).sqrt();
            for &i in &neighbors {
                let c = nodes[i].cost + d2(&nodes[i], nx, ny).sqrt();
                if c < cost && self.edge_free(nodes[i].x, nodes[i].y, nx, ny) {
                    parent = i;
                    cost = c;
                }
            }
            if !self.edge_free(nodes[parent].x, nodes[parent].y, nx, ny) {
                continue;
            }
            let new_index = nodes.len();
            nodes.push(Node {
                x: nx,
                y: ny,
                parent,
                cost,
            });
            // Rewire neighbors through the new node where cheaper.
            for &i in &neighbors {
                let through_new = cost + d2(&nodes[i], nx, ny).sqrt();
                if through_new + 1e-12 < nodes[i].cost
                    && self.edge_free(nx, ny, nodes[i].x, nodes[i].y)
                {
                    nodes[i].parent = new_index;
                    nodes[i].cost = through_new;
                }
            }
            // Track goal connections.
            let goal_d = ((nx - goal.0).powi(2) + (ny - goal.1).powi(2)).sqrt();
            if goal_d <= self.goal_tolerance && self.edge_free(nx, ny, goal.0, goal.1) {
                let total = cost + goal_d;
                let better = match best_goal_node {
                    Some(best) => {
                        total
                            < nodes[best].cost
                                + ((nodes[best].x - goal.0).powi(2)
                                    + (nodes[best].y - goal.1).powi(2))
                                .sqrt()
                    }
                    None => true,
                };
                if better {
                    best_goal_node = Some(new_index);
                }
            }
        }

        let Some(goal_node) = best_goal_node else {
            return Err(ControlError::NoPathFound {
                iterations: self.max_iterations,
            });
        };

        // Walk back to the root, then smooth.
        let mut waypoints = vec![goal];
        let mut i = goal_node;
        while i != usize::MAX {
            waypoints.push((nodes[i].x, nodes[i].y));
            i = nodes[i].parent;
        }
        waypoints.reverse();
        let smoothed = self.shortcut(waypoints);
        Path::new(smoothed)
    }

    /// Greedy shortcut smoothing: skip intermediate waypoints whenever
    /// the direct segment stays free.
    fn shortcut(&self, waypoints: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
        if waypoints.len() <= 2 {
            return waypoints;
        }
        let mut out = vec![waypoints[0]];
        let mut i = 0;
        while i < waypoints.len() - 1 {
            let mut j = waypoints.len() - 1;
            while j > i + 1 {
                let (x0, y0) = waypoints[i];
                let (x1, y1) = waypoints[j];
                if self.edge_free(x0, y0, x1, y1) {
                    break;
                }
                j -= 1;
            }
            out.push(waypoints[j]);
            i = j;
        }
        out
    }

    fn edge_free(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> bool {
        self.arena
            .segment_is_free(x0, y0, x1, y1, self.robot_radius)
    }
}

fn d2(n: &Node, x: f64, y: f64) -> f64 {
    (n.x - x).powi(2) + (n.y - y).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_models::presets;

    #[test]
    fn finds_path_in_evaluation_arena() {
        let arena = presets::evaluation_arena();
        let planner = RrtStar::new(&arena, 0.08).unwrap();
        let path = planner.plan((0.5, 0.5), (3.5, 3.5), 1).unwrap();
        assert_eq!(path.waypoints()[0], (0.5, 0.5));
        assert_eq!(path.goal(), (3.5, 3.5));
        // Path at least as long as the straight-line distance.
        let direct = ((3.0f64).powi(2) + (3.0f64).powi(2)).sqrt();
        assert!(path.length() >= direct - 1e-9);
        // Reasonably efficient after smoothing.
        assert!(path.length() < 2.0 * direct, "length {}", path.length());
    }

    #[test]
    fn path_is_collision_free() {
        let arena = presets::evaluation_arena();
        let planner = RrtStar::new(&arena, 0.08).unwrap();
        for seed in [2, 3, 4] {
            let path = planner.plan((0.5, 0.5), (3.5, 3.5), seed).unwrap();
            for pair in path.waypoints().windows(2) {
                assert!(
                    arena.segment_is_free(pair[0].0, pair[0].1, pair[1].0, pair[1].1, 0.08),
                    "segment {pair:?} collides (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let arena = presets::evaluation_arena();
        let planner = RrtStar::new(&arena, 0.08).unwrap();
        let a = planner.plan((0.5, 0.5), (3.5, 3.5), 9).unwrap();
        let b = planner.plan((0.5, 0.5), (3.5, 3.5), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_blocked_endpoints() {
        let arena = presets::evaluation_arena();
        let planner = RrtStar::new(&arena, 0.08).unwrap();
        // Inside the first obstacle.
        let r = planner.plan((1.5, 1.7), (3.5, 3.5), 1);
        assert!(matches!(r, Err(ControlError::PositionNotFree { .. })));
        let r = planner.plan((0.5, 0.5), (-1.0, 0.5), 1);
        assert!(matches!(r, Err(ControlError::PositionNotFree { .. })));
    }

    #[test]
    fn reports_failure_when_budget_too_small() {
        let arena = presets::evaluation_arena();
        let planner = RrtStar::new(&arena, 0.08).unwrap().with_max_iterations(1);
        let r = planner.plan((0.5, 0.5), (3.5, 3.5), 1);
        assert!(matches!(r, Err(ControlError::NoPathFound { .. })));
    }

    #[test]
    fn invalid_radius_rejected() {
        let arena = presets::evaluation_arena();
        assert!(RrtStar::new(&arena, 0.0).is_err());
    }
}
