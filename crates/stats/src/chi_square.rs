use crate::gamma::regularized_lower_gamma;
use crate::{Result, StatsError};

/// The χ² distribution with `k` degrees of freedom.
///
/// RoboADS confirms sensor/actuator anomalies with χ² tests: the
/// normalized anomaly statistic `dᵀP⁻¹d` follows a χ² distribution with
/// as many degrees of freedom as the anomaly vector has components, and an
/// alarm requires the statistic to exceed the `(1 − α)` quantile.
///
/// # Example
///
/// ```
/// use roboads_stats::ChiSquared;
///
/// let chi = ChiSquared::new(2).unwrap();
/// // Median of chi-square(2) is 2·ln 2 ≈ 1.386.
/// assert!((chi.inverse_cdf(0.5).unwrap() - 1.386).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChiSquared {
    dof: usize,
}

impl ChiSquared {
    /// Creates the distribution with `dof` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `dof == 0`.
    pub fn new(dof: usize) -> Result<Self> {
        if dof == 0 {
            return Err(StatsError::InvalidParameter {
                name: "dof",
                value: "0".into(),
            });
        }
        Ok(ChiSquared { dof })
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> usize {
        self.dof
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for negative or
    /// non-finite `x`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        regularized_lower_gamma(self.dof as f64 / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)`.
    ///
    /// # Errors
    ///
    /// Same domain as [`ChiSquared::cdf`].
    pub fn survival(&self, x: f64) -> Result<f64> {
        Ok(1.0 - self.cdf(x)?)
    }

    /// Mean of the distribution (`k`).
    pub fn mean(&self) -> f64 {
        self.dof as f64
    }

    /// Variance of the distribution (`2k`).
    pub fn variance(&self) -> f64 {
        2.0 * self.dof as f64
    }

    /// Inverse cdf (quantile function): the `x` with `cdf(x) = p`.
    ///
    /// Uses a Wilson–Hilferty starting guess refined by bisection, which
    /// is robust over the full `p ∈ (0, 1)` range.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `p` outside `(0, 1)`.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "p",
                value: format!("{p}"),
            });
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        let k = self.dof as f64;
        // Wilson–Hilferty: χ²_p ≈ k (1 − 2/(9k) + z_p √(2/(9k)))³.
        let z = standard_normal_quantile(p);
        let guess = {
            let c = 2.0 / (9.0 * k);
            (k * (1.0 - c + z * c.sqrt()).powi(3)).max(1e-12)
        };
        // Bracket the root around the guess.
        let mut lo = 0.0;
        let mut hi = guess.max(1.0);
        while self.cdf(hi)? < p {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NoConvergence {
                    routine: "chi_square_inverse_cdf",
                });
            }
        }
        // Bisection to 1e-12 relative width.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid)? < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-12 * hi.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Critical value for a test at significance level `alpha`: the
    /// `(1 − α)` quantile. A statistic above this value rejects the
    /// no-anomaly hypothesis with confidence `1 − α`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `alpha` outside
    /// `(0, 1)`.
    pub fn critical_value(&self, alpha: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                value: format!("{alpha}"),
            });
        }
        self.inverse_cdf(1.0 - alpha)
    }
}

/// Approximate standard-normal quantile (Acklam-style rational
/// approximation), used only to seed the bisection with a good guess.
fn standard_normal_quantile(p: f64) -> f64 {
    // Beasley–Springer–Moro.
    const A: [f64; 4] = [
        2.50662823884,
        -18.61500062529,
        41.39119773534,
        -25.44106049637,
    ];
    const B: [f64; 4] = [
        -8.47351093090,
        23.08336743743,
        -21.06224101826,
        3.13082909833,
    ];
    const C: [f64; 9] = [
        0.3374754822726147,
        0.9761690190917186,
        0.1607979714918209,
        0.0276438810333863,
        0.0038405729373609,
        0.0003951896511919,
        0.0000321767881768,
        0.0000002888167364,
        0.0000003960315187,
    ];
    let y = p - 0.5;
    if y.abs() < 0.42 {
        let r = y * y;
        y * (((A[3] * r + A[2]) * r + A[1]) * r + A[0])
            / ((((B[3] * r + B[2]) * r + B[1]) * r + B[0]) * r + 1.0)
    } else {
        let mut r = if y > 0.0 { 1.0 - p } else { p };
        r = (-r.ln()).ln();
        let mut x = C[0];
        let mut rk = 1.0;
        for &c in &C[1..] {
            rk *= r;
            x += c * rk;
        }
        if y < 0.0 {
            -x
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published critical values (dof, alpha, value), e.g. from standard
    /// chi-square tables.
    const TABLE: &[(usize, f64, f64)] = &[
        (1, 0.05, 3.841),
        (2, 0.05, 5.991),
        (3, 0.05, 7.815),
        (4, 0.05, 9.488),
        (1, 0.005, 7.879),
        (2, 0.005, 10.597),
        (3, 0.005, 12.838),
        (6, 0.005, 18.548),
        (2, 0.5, 1.386),
        (5, 0.95, 1.145),
    ];

    #[test]
    fn critical_values_match_published_tables() {
        for &(dof, alpha, expected) in TABLE {
            let chi = ChiSquared::new(dof).unwrap();
            let v = chi.critical_value(alpha).unwrap();
            assert!(
                (v - expected).abs() < 0.002,
                "chi2({dof}, alpha={alpha}) = {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn cdf_at_zero_and_large() {
        let chi = ChiSquared::new(3).unwrap();
        assert_eq!(chi.cdf(0.0).unwrap(), 0.0);
        assert!((chi.cdf(1e4).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_survival_complement() {
        let chi = ChiSquared::new(4).unwrap();
        for &x in &[0.5, 2.0, 7.0, 15.0] {
            assert!((chi.cdf(x).unwrap() + chi.survival(x).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for dof in [1, 2, 3, 6, 10] {
            let chi = ChiSquared::new(dof).unwrap();
            for &p in &[0.005, 0.05, 0.5, 0.95, 0.995] {
                let x = chi.inverse_cdf(p).unwrap();
                assert!(
                    (chi.cdf(x).unwrap() - p).abs() < 1e-9,
                    "round trip failed at dof={dof}, p={p}"
                );
            }
        }
    }

    #[test]
    fn moments() {
        let chi = ChiSquared::new(7).unwrap();
        assert_eq!(chi.mean(), 7.0);
        assert_eq!(chi.variance(), 14.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ChiSquared::new(0).is_err());
        let chi = ChiSquared::new(2).unwrap();
        assert!(chi.cdf(-1.0).is_err());
        assert!(chi.inverse_cdf(1.0).is_err());
        assert!(chi.inverse_cdf(-0.1).is_err());
        assert!(chi.critical_value(0.0).is_err());
        assert!(chi.critical_value(1.5).is_err());
    }

    #[test]
    fn smaller_alpha_means_larger_threshold() {
        let chi = ChiSquared::new(3).unwrap();
        let t1 = chi.critical_value(0.05).unwrap();
        let t2 = chi.critical_value(0.005).unwrap();
        assert!(t2 > t1);
    }
}
