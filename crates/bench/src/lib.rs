//! Shared machinery for the experiment harnesses.
//!
//! Each `benches/*.rs` target (run via `cargo bench -p roboads-bench`)
//! regenerates one table or figure of the paper (see `DESIGN.md` §5 for
//! the experiment index and `EXPERIMENTS.md` for recorded results).
//! This library holds what they share: batched scenario execution,
//! aggregation across seeds, order-preserving parallel mapping on the
//! workspace's `roboads-pool` workers (no external crates: the tier-1
//! build must resolve offline), and table formatting.

use roboads_core::RoboAdsConfig;
use roboads_pool::Pool;
use roboads_sim::{EvalResult, Scenario, SimOutcome, SimulationBuilder};
use roboads_stats::ConfusionCounts;

/// Seeds used when aggregating a scenario over repeated runs.
pub const DEFAULT_SEEDS: [u64; 5] = [11, 23, 37, 53, 71];

/// Runs one Khepera scenario with the given configuration and seed.
///
/// # Panics
///
/// Panics on simulation failure — harnesses treat any failure as fatal
/// so a broken configuration cannot silently produce an empty table.
pub fn run_khepera(scenario: &Scenario, config: &RoboAdsConfig, seed: u64) -> SimOutcome {
    SimulationBuilder::khepera()
        .scenario(scenario.clone())
        .config(config.clone())
        .seed(seed)
        .run()
        .expect("khepera scenario run")
}

/// Runs one Tamiya scenario.
///
/// # Panics
///
/// Panics on simulation failure, as [`run_khepera`] does.
pub fn run_tamiya(scenario: &Scenario, config: &RoboAdsConfig, seed: u64) -> SimOutcome {
    SimulationBuilder::tamiya()
        .scenario(scenario.clone())
        .config(config.clone())
        .seed(seed)
        .run()
        .expect("tamiya scenario run")
}

/// Aggregate of several runs of the same scenario.
#[derive(Debug, Clone)]
pub struct ScenarioAggregate {
    /// Scenario name.
    pub name: String,
    /// Table II row number.
    pub number: usize,
    /// Merged sensor confusion counts.
    pub sensor: ConfusionCounts,
    /// Merged actuator confusion counts.
    pub actuator: ConfusionCounts,
    /// Mean sensor detection delay (s) over runs that had one.
    pub sensor_delay: Option<f64>,
    /// Mean actuator detection delay (s) over runs that had one.
    pub actuator_delay: Option<f64>,
    /// Detected sensor-condition sequence from the first run, e.g.
    /// `S0→S2→S4`.
    pub sensor_sequence: String,
    /// Detected actuator-condition sequence from the first run.
    pub actuator_sequence: String,
}

/// Merges per-seed evaluation results into one scenario row.
pub fn aggregate(name: &str, number: usize, evals: &[EvalResult]) -> ScenarioAggregate {
    let mut sensor = ConfusionCounts::default();
    let mut actuator = ConfusionCounts::default();
    let mut sensor_delays = Vec::new();
    let mut actuator_delays = Vec::new();
    for e in evals {
        sensor.merge(&e.sensor_counts);
        actuator.merge(&e.actuator_counts);
        if let Some(d) = e.sensor_delay() {
            sensor_delays.push(d);
        }
        if let Some(d) = e.actuator_delay() {
            actuator_delays.push(d);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    };
    ScenarioAggregate {
        name: name.to_string(),
        number,
        sensor,
        actuator,
        sensor_delay: mean(&sensor_delays),
        actuator_delay: mean(&actuator_delays),
        sensor_sequence: evals
            .first()
            .map(|e| e.detected_sensor_sequence.join("→"))
            .unwrap_or_default(),
        actuator_sequence: evals
            .first()
            .map(|e| e.detected_actuator_sequence.join("→"))
            .unwrap_or_default(),
    }
}

/// Maps `jobs` through `f` on a `threads`-worker [`Pool`], preserving
/// input order in the output (each job writes its pre-assigned slot —
/// no sorting pass, and the same engine that runs the detector's own
/// NUISE fan-out).
///
/// # Panics
///
/// Propagates a worker panic (a failing scenario run must not silently
/// produce an empty table).
pub fn parallel_map<T, R, F>(jobs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Pool::new(threads).map(jobs, f)
}

/// Formats a rate as a percentage with two decimals, `"-"` when the
/// denominator never occurred (paper convention).
pub fn pct(rate: f64, applicable: bool) -> String {
    if applicable {
        format!("{:.2}%", rate * 100.0)
    } else {
        "-".to_string()
    }
}

/// Formats an optional delay in seconds.
pub fn delay(d: Option<f64>) -> String {
    match d {
        Some(d) => format!("{d:.2}"),
        None => "-".to_string(),
    }
}

/// Number of worker threads for sweeps: available parallelism minus one.
pub fn sweep_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        let out = parallel_map(vec![1, 2, 3], 1, |i: i32| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0123, true), "1.23%");
        assert_eq!(pct(0.5, false), "-");
        assert_eq!(delay(Some(0.4)), "0.40");
        assert_eq!(delay(None), "-");
        assert!(sweep_threads() >= 1);
    }

    #[test]
    fn aggregate_merges_counts_and_delays() {
        use roboads_sim::Scenario;
        let config = RoboAdsConfig::paper_defaults();
        let scenario = Scenario::ips_logic_bomb();
        let evals: Vec<EvalResult> = [5u64, 6]
            .iter()
            .map(|&s| {
                let mut sc = scenario.clone();
                // Shorten for test speed.
                sc = Scenario::new(
                    sc.number(),
                    sc.name().to_string(),
                    sc.description().to_string(),
                    sc.misbehaviors().to_vec(),
                    80,
                );
                run_khepera(&sc, &config, s).eval
            })
            .collect();
        let agg = aggregate("ips-logic-bomb", 3, &evals);
        assert_eq!(agg.number, 3);
        assert!(agg.sensor.total() > 0);
        assert!(agg.sensor_delay.is_some());
        assert!(agg.sensor_sequence.contains("S1"));
    }
}
