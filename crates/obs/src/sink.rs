//! Span/event records and the [`Sink`] trait with its three shipped
//! implementations: [`NoopSink`], [`RingBufferSink`] and [`WriterSink`].

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

use crate::json::JsonObject;
use crate::metrics::{Counter, MetricsRegistry};

/// A typed field value carried by an [`EventRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (iteration counts, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (statistics, thresholds, estimates).
    F64(f64),
    /// Static string (labels known at compile time).
    Str(&'static str),
    /// Owned string (rare, for dynamic content such as sensor lists).
    Text(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(u) => write!(f, "{u}"),
            Value::I64(i) => write!(f, "{i}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Text(s) => f.write_str(s),
        }
    }
}

/// One named event field.
pub type Field = (&'static str, Value);

/// A completed, timed region of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"engine.step"`.
    pub name: &'static str,
    /// Start offset from the telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub duration_ns: u64,
    /// Worker that closed the span: `0` is the main thread, pool
    /// workers are `1..` (see [`crate::set_worker`]).
    pub worker: u32,
    /// Robot the span was recorded for: `0` means "no robot context",
    /// fleet robots are `1..` (see [`crate::set_robot`]).
    pub robot: u32,
}

/// A structured point-in-time event (alarm raised, mode re-anchored…).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Static event name, e.g. `"decision.sensor_alarm_confirmed"`.
    pub name: &'static str,
    /// Offset from the telemetry epoch, nanoseconds.
    pub time_ns: u64,
    /// Typed payload fields.
    pub fields: Vec<Field>,
}

fn value_into(o: &mut JsonObject, key: &str, v: &Value) {
    match v {
        Value::Bool(b) => o.field_bool(key, *b),
        Value::U64(u) => o.field_u64(key, *u),
        Value::I64(i) => o.field_i64(key, *i),
        Value::F64(f) => o.field_f64(key, *f),
        Value::Str(s) => o.field_str(key, s),
        Value::Text(s) => o.field_str(key, s),
    }
}

impl SpanRecord {
    /// One-line JSON encoding (`{"type":"span",...}`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("type", "span");
        o.field_str("name", self.name);
        o.field_u64("start_ns", self.start_ns);
        o.field_u64("duration_ns", self.duration_ns);
        o.field_u64("worker", u64::from(self.worker));
        o.field_u64("robot", u64::from(self.robot));
        o.finish()
    }
}

impl EventRecord {
    /// One-line JSON encoding (`{"type":"event",...,"fields":{...}}`).
    pub fn to_json(&self) -> String {
        let mut fields = JsonObject::new();
        for (k, v) in &self.fields {
            value_into(&mut fields, k, v);
        }
        let mut o = JsonObject::new();
        o.field_str("type", "event");
        o.field_str("name", self.name);
        o.field_u64("time_ns", self.time_ns);
        o.field_raw("fields", &fields.finish());
        o.finish()
    }
}

/// Receives completed spans and events.
///
/// Implementations must be thread-safe: the sim harness maps scenarios
/// over worker threads, each with its own detector but potentially a
/// shared sink. `enabled()` lets the instrumentation skip clock reads
/// and field assembly entirely when nobody is listening — that is how
/// the default [`NoopSink`] keeps the hot path within the measured
/// overhead budget.
pub trait Sink: Send + Sync + std::fmt::Debug {
    /// Whether span/event assembly is worth the caller's time.
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts a completed span.
    fn record_span(&self, span: &SpanRecord);

    /// Accepts an event.
    fn record_event(&self, event: &EventRecord);

    /// Called once when the sink is attached to a [`crate::Telemetry`],
    /// handing it the run's metrics registry. Sinks with internal loss
    /// accounting (see [`RingBufferSink`]) register their counters here;
    /// the default does nothing.
    fn bind_metrics(&self, _metrics: &MetricsRegistry) {}
}

/// Discards everything; reports itself as disabled so callers skip
/// timing and field assembly altogether.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&self, _span: &SpanRecord) {}

    fn record_event(&self, _event: &EventRecord) {}
}

/// One record as stored by [`RingBufferSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryRecord {
    /// A completed span.
    Span(SpanRecord),
    /// An event.
    Event(EventRecord),
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<TelemetryRecord>,
    dropped: u64,
    /// `telemetry.dropped` counter, present once `bind_metrics` ran.
    dropped_counter: Option<Counter>,
    /// Next `dropped` total at which an overflow event is noted; keeps
    /// the self-reporting to at most one event per `capacity` drops.
    overflow_note_at: u64,
}

/// Keeps the most recent `capacity` records in memory, overwriting the
/// oldest when full (flight-recorder semantics: after an incident the
/// tail of the telemetry is what matters).
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // Pre-size (bounded) so steady-state pushes never reallocate;
        // rings larger than the bound grow once past it, amortized.
        let preallocate = capacity.min(1 << 16);
        RingBufferSink {
            capacity,
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(preallocate),
                dropped: 0,
                dropped_counter: None,
                overflow_note_at: 1,
            }),
        }
    }

    fn push(&self, r: TelemetryRecord) {
        let mut inner = self.inner.lock().expect("ring sink poisoned");
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
            if let Some(c) = &inner.dropped_counter {
                c.incr();
            }
            if inner.dropped >= inner.overflow_note_at
                && inner.dropped_counter.is_some()
                && self.capacity >= 2
            {
                // Self-report the loss in-band, rate-limited to one note
                // per ring's worth of drops so the note itself can never
                // dominate the buffer. Only telemetry-bound rings note —
                // a standalone ring is an inspection buffer whose exact
                // contents tests rely on. (A capacity-1 ring would evict
                // the note immediately — skip it there too.)
                inner.overflow_note_at = inner.dropped + self.capacity as u64;
                let note = EventRecord {
                    name: "telemetry.overflow",
                    time_ns: 0,
                    fields: vec![("dropped", Value::U64(inner.dropped))],
                };
                if inner.buf.len() + 1 >= self.capacity {
                    // The note displaces one more record; count that too.
                    inner.buf.pop_front();
                    inner.dropped += 1;
                    if let Some(c) = &inner.dropped_counter {
                        c.incr();
                    }
                }
                inner.buf.push_back(TelemetryRecord::Event(note));
            }
        }
        inner.buf.push_back(r);
    }

    /// Copies out the buffered records, oldest first.
    pub fn records(&self) -> Vec<TelemetryRecord> {
        self.inner
            .lock()
            .expect("ring sink poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Buffered spans only, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                TelemetryRecord::Span(s) => Some(s),
                TelemetryRecord::Event(_) => None,
            })
            .collect()
    }

    /// Buffered events only, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                TelemetryRecord::Event(e) => Some(e),
                TelemetryRecord::Span(_) => None,
            })
            .collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring sink poisoned").buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records overwritten since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring sink poisoned").dropped
    }
}

impl Sink for RingBufferSink {
    fn record_span(&self, span: &SpanRecord) {
        self.push(TelemetryRecord::Span(span.clone()));
    }

    fn record_event(&self, event: &EventRecord) {
        self.push(TelemetryRecord::Event(event.clone()));
    }

    fn bind_metrics(&self, metrics: &MetricsRegistry) {
        let counter = metrics.counter("telemetry.dropped");
        let mut inner = self.inner.lock().expect("ring sink poisoned");
        // Catch the counter up with any loss that predates binding.
        counter.add(inner.dropped);
        inner.dropped_counter = Some(counter);
    }
}

/// Streams records as JSON Lines (one object per line) to any writer —
/// a file, a pipe, or an in-memory buffer in tests. The writer is
/// flushed explicitly via [`WriterSink::flush`] and automatically on
/// `Drop`, so buffered JSONL (capsules, telemetry tails) survives a
/// normal process exit.
pub struct WriterSink<W: Write + Send> {
    w: Mutex<Option<W>>,
}

impl<W: Write + Send> std::fmt::Debug for WriterSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> WriterSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        WriterSink {
            w: Mutex::new(Some(w)),
        }
    }

    /// Unwraps the inner writer (e.g. to inspect a `Vec<u8>` in tests).
    /// The drop-flush is skipped — the caller now owns the writer.
    pub fn into_inner(self) -> W {
        self.w
            .lock()
            .expect("writer sink poisoned")
            .take()
            .expect("writer already taken")
    }

    /// Flushes the underlying writer. I/O errors are swallowed, as for
    /// record writes.
    pub fn flush(&self) {
        if let Some(w) = self.w.lock().expect("writer sink poisoned").as_mut() {
            let _ = w.flush();
        }
    }

    fn line(&self, json: &str) {
        if let Some(w) = self.w.lock().expect("writer sink poisoned").as_mut() {
            // Telemetry must never take the robot down: I/O errors are
            // swallowed by design.
            let _ = writeln!(w, "{json}");
        }
    }
}

impl<W: Write + Send> Drop for WriterSink<W> {
    fn drop(&mut self) {
        if let Ok(mut guard) = self.w.lock() {
            if let Some(w) = guard.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

impl<W: Write + Send> Sink for WriterSink<W> {
    fn record_span(&self, span: &SpanRecord) {
        self.line(&span.to_json());
    }

    fn record_event(&self, event: &EventRecord) {
        self.line(&event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, d: u64) -> SpanRecord {
        SpanRecord {
            name,
            start_ns: 10,
            duration_ns: d,
            worker: 0,
            robot: 0,
        }
    }

    #[test]
    fn ring_buffer_overwrites_oldest_and_counts_drops() {
        let ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record_span(&span("s", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.spans().iter().map(|s| s.duration_ns).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest records must be evicted first");
    }

    #[test]
    fn ring_buffer_separates_spans_and_events() {
        let ring = RingBufferSink::new(8);
        ring.record_span(&span("a", 1));
        ring.record_event(&EventRecord {
            name: "alarm",
            time_ns: 99,
            fields: vec![("sensor", Value::U64(0))],
        });
        assert_eq!(ring.spans().len(), 1);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].fields[0].1, Value::U64(0));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = RingBufferSink::new(0);
        ring.record_span(&span("a", 1));
        ring.record_span(&span("a", 2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn writer_sink_emits_one_json_object_per_line() {
        let sink = WriterSink::new(Vec::new());
        sink.record_span(&span("engine.step", 1234));
        sink.record_event(&EventRecord {
            name: "decision.sensor_alarm_confirmed",
            time_ns: 77,
            fields: vec![
                ("iteration", Value::U64(12)),
                ("statistic", Value::F64(25.5)),
                ("sensors", Value::Text("0,2".into())),
                ("confirmed", Value::Bool(true)),
            ],
        });
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"type":"span","name":"engine.step","start_ns":10,"duration_ns":1234,"worker":0,"robot":0}"#
        );
        assert_eq!(
            lines[1],
            r#"{"type":"event","name":"decision.sensor_alarm_confirmed","time_ns":77,"fields":{"iteration":12,"statistic":25.5,"sensors":"0,2","confirmed":true}}"#
        );
    }

    #[test]
    fn noop_sink_reports_disabled() {
        assert!(!NoopSink.enabled());
        let ring = RingBufferSink::new(4);
        assert!(ring.enabled());
    }

    #[test]
    fn ring_drop_accounting_feeds_counter_and_overflow_events() {
        let reg = MetricsRegistry::new();
        let ring = RingBufferSink::new(4);
        ring.bind_metrics(&reg);
        // Fill without loss: counter stays zero, no overflow note.
        for i in 0..4 {
            ring.record_span(&span("s", i));
        }
        assert_eq!(reg.counter_value("telemetry.dropped"), Some(0));
        // Force several wraparounds.
        for i in 4..20 {
            ring.record_span(&span("s", i));
        }
        let dropped = ring.dropped();
        assert!(dropped >= 16, "expected ≥16 drops, saw {dropped}");
        assert_eq!(reg.counter_value("telemetry.dropped"), Some(dropped));
        let notes: Vec<u64> = ring
            .events()
            .iter()
            .filter(|e| e.name == "telemetry.overflow")
            .filter_map(|e| match e.fields[0] {
                ("dropped", Value::U64(n)) => Some(n),
                _ => None,
            })
            .collect();
        assert!(!notes.is_empty(), "overflow must be self-reported in-band");
        // Rate limit: at most one note per capacity's worth of drops.
        assert!(notes.len() as u64 <= dropped / 4 + 1, "notes {notes:?}");
        // The ring never exceeds its capacity, notes included.
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn ring_counter_catches_up_on_late_binding() {
        let ring = RingBufferSink::new(2);
        for i in 0..5 {
            ring.record_span(&span("s", i));
        }
        let pre = ring.dropped();
        assert!(pre > 0);
        let reg = MetricsRegistry::new();
        ring.bind_metrics(&reg);
        assert_eq!(reg.counter_value("telemetry.dropped"), Some(pre));
    }

    /// Write-through probe that counts `flush` calls.
    struct FlushProbe {
        flushes: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        buf: Vec<u8>,
    }

    impl Write for FlushProbe {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            Ok(data.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn writer_sink_flushes_explicitly_and_on_drop() {
        let flushes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sink = WriterSink::new(FlushProbe {
            flushes: flushes.clone(),
            buf: Vec::new(),
        });
        sink.record_span(&span("s", 1));
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 0);
        sink.flush();
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 1);
        drop(sink);
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn writer_sink_into_inner_skips_drop_flush() {
        let flushes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sink = WriterSink::new(FlushProbe {
            flushes: flushes.clone(),
            buf: Vec::new(),
        });
        sink.record_span(&span("s", 1));
        let probe = sink.into_inner();
        assert!(!probe.buf.is_empty());
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 0);
    }
}
