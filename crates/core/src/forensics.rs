//! Forensic summarization of detection runs.
//!
//! The paper motivates anomaly-vector *quantification* explicitly: "For
//! forensics purposes, we intend to quantify the magnitude of the
//! anomaly by estimating `d^a_{k−1}` and `d^s_k`" (§III-C), and its
//! conclusion names post-detection forensics as the next step. This
//! module turns a stream of [`DetectionReport`]s into that artifact: a
//! timeline of *incidents* (contiguous confirmed conditions) with
//! per-workflow anomaly magnitude statistics an investigator can read.
//!
//! # Example
//!
//! ```
//! use roboads_core::forensics::ForensicLog;
//! use roboads_core::{ModeSet, RoboAds, RoboAdsConfig};
//! use roboads_linalg::Vector;
//! use roboads_models::presets;
//!
//! # fn main() -> Result<(), roboads_core::CoreError> {
//! let system = presets::khepera_system();
//! let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
//! let mut ads = RoboAds::with_defaults(system.clone(), x0.clone())?;
//! let mut log = ForensicLog::new(0.1);
//!
//! let u = Vector::from_slice(&[0.05, 0.05]);
//! let mut x = x0;
//! for k in 0..30 {
//!     x = system.dynamics().step(&x, &u);
//!     let mut readings: Vec<_> = (0..3)
//!         .map(|i| system.sensor(i).unwrap().measure(&x))
//!         .collect();
//!     if k >= 10 {
//!         readings[0][0] += 0.07;
//!     }
//!     log.push(&ads.step(&u, &readings)?);
//! }
//! let incidents = log.incidents();
//! assert_eq!(incidents.len(), 1);
//! assert_eq!(incidents[0].sensors, vec![0]);
//! # Ok(())
//! # }
//! ```

use roboads_linalg::Vector;

use crate::report::DetectionReport;

/// One contiguous confirmed misbehavior: the unit of a forensic report.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Incident {
    /// Start time (seconds from the first pushed report).
    pub start: f64,
    /// End time (exclusive); equals the last report's time while the
    /// incident is still open.
    pub end: f64,
    /// Identified misbehaving sensor workflows (empty for a pure
    /// actuator incident).
    pub sensors: Vec<usize>,
    /// Whether an actuator misbehavior was confirmed.
    pub actuator: bool,
    /// Condition label, e.g. `"S2"`, `"A1"`, `"S2+A1"`.
    pub label: String,
    /// Mean per-sensor anomaly estimates over the incident, paired with
    /// the sensor index.
    pub mean_sensor_anomalies: Vec<(usize, Vector)>,
    /// Mean actuator anomaly estimate over the incident.
    pub mean_actuator_anomaly: Vector,
    /// Number of iterations the incident spanned.
    pub iterations: usize,
}

impl Incident {
    /// Largest absolute component over all quantified anomalies — a
    /// one-number severity for triage.
    pub fn peak_magnitude(&self) -> f64 {
        let sensor_peak = self
            .mean_sensor_anomalies
            .iter()
            .map(|(_, v)| v.max_abs())
            .fold(0.0f64, f64::max);
        sensor_peak.max(self.mean_actuator_anomaly.max_abs())
    }
}

/// Accumulates [`DetectionReport`]s and segments them into
/// [`Incident`]s.
#[derive(Debug, Clone, Default)]
pub struct ForensicLog {
    dt: f64,
    count: usize,
    incidents: Vec<Incident>,
    /// In-progress accumulation for the open incident, if any.
    open: Option<OpenIncident>,
}

#[derive(Debug, Clone)]
struct OpenIncident {
    start_iteration: usize,
    sensors: Vec<usize>,
    actuator: bool,
    sensor_sums: Vec<(usize, Vector)>,
    actuator_sum: Vector,
    iterations: usize,
}

impl ForensicLog {
    /// Creates a log for reports arriving every `dt` seconds.
    pub fn new(dt: f64) -> Self {
        ForensicLog {
            dt,
            count: 0,
            incidents: Vec::new(),
            open: None,
        }
    }

    /// Folds one report into the log.
    pub fn push(&mut self, report: &DetectionReport) {
        let sensors = if report.sensor_alarm {
            report.misbehaving_sensors.clone()
        } else {
            Vec::new()
        };
        let actuator = report.actuator_alarm;
        let condition_active = !sensors.is_empty() || actuator;

        let same_condition = self
            .open
            .as_ref()
            .map(|o| o.sensors == sensors && o.actuator == actuator)
            .unwrap_or(false);

        if !same_condition {
            self.close_open();
        }
        if condition_active {
            let open = self.open.get_or_insert_with(|| OpenIncident {
                start_iteration: self.count,
                sensors: sensors.clone(),
                actuator,
                sensor_sums: sensors
                    .iter()
                    .filter_map(|&s| {
                        report
                            .sensor_anomaly_for(s)
                            .map(|v| (s, Vector::zeros(v.estimate.len())))
                    })
                    .collect(),
                actuator_sum: Vector::zeros(report.actuator_anomaly.estimate.len()),
                iterations: 0,
            });
            for (s, sum) in &mut open.sensor_sums {
                if let Some(view) = report.sensor_anomaly_for(*s) {
                    *sum = &*sum + &view.estimate;
                }
            }
            open.actuator_sum = &open.actuator_sum + &report.actuator_anomaly.estimate;
            open.iterations += 1;
        }
        self.count += 1;
    }

    fn close_open(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        if open.iterations == 0 {
            return;
        }
        let n = open.iterations as f64;
        let label = {
            let mut parts: Vec<String> = Vec::new();
            if !open.sensors.is_empty() {
                parts.push(format!(
                    "S{}",
                    open.sensors
                        .iter()
                        .map(|s| (s + 1).to_string())
                        .collect::<Vec<_>>()
                        .join("+")
                ));
            }
            if open.actuator {
                parts.push("A1".to_string());
            }
            parts.join("+")
        };
        self.incidents.push(Incident {
            start: open.start_iteration as f64 * self.dt,
            end: (open.start_iteration + open.iterations) as f64 * self.dt,
            sensors: open.sensors,
            actuator: open.actuator,
            label,
            mean_sensor_anomalies: open
                .sensor_sums
                .into_iter()
                .map(|(s, sum)| (s, &sum * (1.0 / n)))
                .collect(),
            mean_actuator_anomaly: &open.actuator_sum * (1.0 / n),
            iterations: open.iterations,
        });
    }

    /// The closed incidents plus the currently open one, if any.
    pub fn incidents(&self) -> Vec<Incident> {
        let mut out = self.incidents.clone();
        let mut probe = self.clone();
        probe.close_open();
        if probe.incidents.len() > out.len() {
            out.push(probe.incidents.last().expect("just closed").clone());
        }
        out
    }

    /// Number of reports folded so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no reports have been folded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Renders a human-readable forensic report.
    pub fn render(&self, sensor_names: &[&str]) -> String {
        let incidents = self.incidents();
        let mut out = format!(
            "forensic report: {} iterations ({:.1} s), {} incident(s)\n",
            self.count,
            self.count as f64 * self.dt,
            incidents.len()
        );
        for (i, inc) in incidents.iter().enumerate() {
            out.push_str(&format!(
                "incident {}: {} during {:.1}–{:.1} s ({} iterations)\n",
                i + 1,
                inc.label,
                inc.start,
                inc.end,
                inc.iterations
            ));
            for (s, mean) in &inc.mean_sensor_anomalies {
                let name = sensor_names.get(*s).copied().unwrap_or("?");
                out.push_str(&format!("  sensor {name}: mean anomaly {mean:?}\n"));
            }
            if inc.actuator {
                out.push_str(&format!(
                    "  actuators: mean anomaly {:?}\n",
                    inc.mean_actuator_anomaly
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::RoboAds;
    use roboads_models::presets;

    fn run_with_attack(attack: impl Fn(usize, &mut Vec<Vector>), iterations: usize) -> ForensicLog {
        let system = presets::khepera_system();
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut ads = RoboAds::with_defaults(system.clone(), x0.clone()).unwrap();
        let mut log = ForensicLog::new(0.1);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x = x0;
        for k in 0..iterations {
            x = system.dynamics().step(&x, &u);
            let mut readings: Vec<Vector> = (0..3)
                .map(|i| system.sensor(i).unwrap().measure(&x))
                .collect();
            attack(k, &mut readings);
            log.push(&ads.step(&u, &readings).unwrap());
        }
        log
    }

    #[test]
    fn clean_run_has_no_incidents() {
        let log = run_with_attack(|_, _| {}, 40);
        assert!(log.incidents().is_empty());
        assert_eq!(log.len(), 40);
        assert!(!log.is_empty());
    }

    #[test]
    fn single_attack_becomes_one_incident_with_magnitude() {
        let log = run_with_attack(
            |k, r| {
                if k >= 10 {
                    r[0][0] += 0.07;
                }
            },
            40,
        );
        let incidents = log.incidents();
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.sensors, vec![0]);
        assert_eq!(inc.label, "S1");
        assert!(inc.start >= 1.0 && inc.start <= 1.3, "start {}", inc.start);
        let (_, mean) = &inc.mean_sensor_anomalies[0];
        assert!((mean[0] - 0.07).abs() < 0.01, "quantified {mean:?}");
        assert!(inc.peak_magnitude() > 0.05);
    }

    #[test]
    fn bounded_attack_produces_closed_incident() {
        let log = run_with_attack(
            |k, r| {
                if (10..25).contains(&k) {
                    r[2][0] += 0.15;
                }
            },
            60,
        );
        let incidents = log.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].sensors, vec![2]);
        // The incident closes shortly after the attack ends.
        assert!(incidents[0].end < 3.5, "end {}", incidents[0].end);
    }

    #[test]
    fn render_mentions_workflow_names_and_times() {
        let log = run_with_attack(
            |k, r| {
                if k >= 10 {
                    r[1][1] += 0.08;
                }
            },
            40,
        );
        let text = log.render(&["ips", "wheel-encoder", "lidar"]);
        assert!(text.contains("incident 1: S2"));
        assert!(text.contains("wheel-encoder"));
        assert!(text.contains("1 incident"));
    }

    #[test]
    fn condition_changes_split_incidents() {
        let log = run_with_attack(
            |k, r| {
                if k >= 10 {
                    r[1][0] += 0.08; // encoder from 1 s
                }
                if k >= 25 {
                    r[0][0] += 0.09; // IPS joins at 2.5 s
                }
            },
            50,
        );
        let incidents = log.incidents();
        assert!(incidents.len() >= 2, "incidents {incidents:?}");
        assert_eq!(incidents[0].sensors, vec![1]);
        // The combined phase appears as its own incident (transition
        // blips between the two phases may add short extra incidents —
        // the 2-of-3-corrupted condition is genuinely ambiguous).
        let combined = incidents
            .iter()
            .find(|i| i.label == "S1+2")
            .unwrap_or_else(|| panic!("no combined incident in {incidents:?}"));
        assert_eq!(combined.sensors, vec![0, 1]);
    }
}
