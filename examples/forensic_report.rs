//! Post-mission forensics: the paper quantifies anomaly vectors "for
//! forensics purposes" (§III-C); this example turns a multi-phase attack
//! run into the investigator-facing artifact — an incident timeline with
//! quantified magnitudes — and exports the full trace as CSV.
//!
//! ```text
//! cargo run --release --example forensic_report
//! ```

use roboads::core::forensics::ForensicLog;
use roboads::sim::{Scenario, SimulationBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scenario #10 has three ground-truth phases:
    // S0 → S3 (LiDAR DoS at 4 s) → S5 (IPS joins at 8 s) → S1 (LiDAR
    // recovers at 12 s).
    let scenario = Scenario::ips_spoofing_and_lidar_dos();
    println!("scenario #10: {}\n", scenario.description());

    let outcome = SimulationBuilder::khepera()
        .scenario(scenario)
        .seed(11)
        .run()?;

    // Fold every detection report into the forensic log.
    let mut log = ForensicLog::new(outcome.trace.dt());
    for record in outcome.trace.records() {
        log.push(&record.report);
    }

    println!("{}", log.render(&["ips", "wheel-encoder", "lidar"]));

    for (i, incident) in log.incidents().iter().enumerate() {
        println!(
            "incident {} severity: peak quantified magnitude {:.3}",
            i + 1,
            incident.peak_magnitude()
        );
    }

    // Export the complete run for external plotting.
    let path = std::env::temp_dir().join("roboads_scenario10_trace.csv");
    std::fs::write(&path, outcome.trace.to_csv())?;
    println!("\nfull trace exported to {}", path.display());
    Ok(())
}
