use roboads_linalg::{Matrix, Vector};

use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// GPS-style position-only sensor: measures `(x, y)` but not the heading.
///
/// Used by §VI's sensor-grouping discussion: a GPS alone leaves the
/// heading unobservable and a magnetometer alone leaves the position
/// unobservable, but grouped together they reconstruct the full state.
/// The [`crate::observability`] module verifies exactly this.
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::sensors::Gps;
/// use roboads_models::SensorModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let gps = Gps::new(0.5)?;
/// let z = gps.measure(&Vector::from_slice(&[10.0, 20.0, 1.0]));
/// assert_eq!(z.as_slice(), &[10.0, 20.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gps {
    position_std: f64,
}

impl Gps {
    /// Creates a GPS with the given position noise standard deviation (m).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive values.
    pub fn new(position_std: f64) -> Result<Self> {
        if !(position_std.is_finite() && position_std > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "position_std",
                value: format!("{position_std}"),
            });
        }
        Ok(Gps { position_std })
    }

    /// Position noise standard deviation (m).
    pub fn position_std(&self) -> f64 {
        self.position_std
    }
}

impl SensorModel for Gps {
    fn dim(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "gps"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 2, "gps expects a planar state");
        Vector::from_slice(&[x[0], x[1]])
    }

    fn jacobian(&self, _x: &Vector) -> Matrix {
        Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).expect("static shape")
    }

    fn noise_covariance(&self) -> Matrix {
        let v = self.position_std * self.position_std;
        Matrix::from_diagonal(&[v, v])
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 2, "gps expects a planar state");
        out[0] = x[0];
        out[1] = x[1];
    }

    fn jacobian_into(&self, _x: &Vector, out: &mut Matrix, row_offset: usize) {
        for i in 0..2 {
            for j in 0..3 {
                out[(row_offset + i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        let gps = Gps::new(0.5).unwrap();
        assert_sensor_into_variants_match(&gps, &Vector::from_slice(&[0.0, 0.0, 0.5]));
    }

    #[test]
    fn measures_position_only() {
        let gps = Gps::new(0.5).unwrap();
        let z = gps.measure(&Vector::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(z.len(), 2);
        assert_eq!(gps.angular_components(), &[] as &[usize]);
    }

    #[test]
    fn jacobian_and_noise() {
        let gps = Gps::new(0.5).unwrap();
        assert_sensor_jacobian_matches(&gps, &Vector::from_slice(&[0.0, 0.0, 0.5]), 1e-6);
        assert_noise_covariance_valid(&gps);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Gps::new(0.0).is_err());
    }
}
