//! Snapshot/restore bitwise contract (`DESIGN.md` §18): a detector
//! snapshotted mid-run, restored onto a freshly constructed twin, and
//! continued on the same inputs must end **bitwise identical** to the
//! uninterrupted run — on every Table II scenario and in the awkward
//! states the format is most likely to get wrong: a lazy mode bank
//! mid-wake with the dormant audit in flight, an open χ² decision
//! window, a `HoldLast` ingest slot with incomplete history, and a
//! freshly regrouped heterogeneous fleet.
//!
//! The end-state check is [`snapshot_detector`] byte equality: the
//! snapshot serializes every mutable `f64` of detector state via
//! `to_bits`, so equal bytes means equal bits everywhere.

use roboads::core::{
    restore_detector, restore_fleet, snapshot_detector, snapshot_fleet, ActivationPolicy,
    DeadlinePolicy, DetectionReport, FleetEngine, FleetIngest, RoboAds, RoboAdsConfig,
};
use roboads::sim::{
    evaluation_detector, RobotKind, Scenario, SimulationBuilder, Trace, TraceRecord,
};

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::clean(),
        Scenario::wheel_logic_bomb(),
        Scenario::wheel_jamming(),
        Scenario::ips_logic_bomb(),
        Scenario::ips_spoofing(),
        Scenario::encoder_logic_bomb(),
        Scenario::lidar_dos(),
        Scenario::lidar_blocking(),
        Scenario::wheel_and_ips_logic_bomb(),
        Scenario::lidar_dos_and_encoder_logic_bomb(),
        Scenario::ips_spoofing_and_lidar_dos(),
        Scenario::ips_and_encoder_logic_bomb(),
    ]
}

/// The recorded inputs (planned commands + readings) of one scenario
/// run — the exact `f64` bits the runner fed its detector.
fn trace_for(scenario: Scenario) -> Trace {
    SimulationBuilder::khepera()
        .scenario(scenario)
        .seed(11)
        .run()
        .unwrap()
        .trace
}

/// A twin built exactly as the evaluation runner builds detectors.
fn twin(config: &RoboAdsConfig) -> RoboAds {
    evaluation_detector(RobotKind::Khepera, config).unwrap()
}

/// Drives a detector through recorded inputs, collecting its reports.
fn drive(det: &mut RoboAds, records: &[TraceRecord]) -> Vec<DetectionReport> {
    records
        .iter()
        .map(|r| det.step(&r.planned_command, &r.readings).unwrap())
        .collect()
}

#[test]
fn table2_midpoint_snapshot_restore_continue_is_bitwise() {
    let config = RoboAdsConfig::paper_defaults();
    for scenario in scenarios() {
        let name = scenario.name().to_string();
        let trace = trace_for(scenario);
        let records = trace.records();
        let mid = records.len() / 2;

        let mut reference = twin(&config);
        let reference_reports = drive(&mut reference, records);

        let mut first_half = twin(&config);
        drive(&mut first_half, &records[..mid]);
        let snap = snapshot_detector(&first_half);

        // Roundtrip identity: restore onto a fresh twin reproduces the
        // snapshot byte-for-byte.
        let mut restored = twin(&config);
        restore_detector(&mut restored, &snap).unwrap();
        assert_eq!(
            snapshot_detector(&restored),
            snap,
            "{name}: snapshot → restore → snapshot is not the identity"
        );

        // Continuation: the restored twin finishes the run with the same
        // reports and the same end-state bits as the uninterrupted one.
        let tail_reports = drive(&mut restored, &records[mid..]);
        assert_eq!(
            tail_reports,
            reference_reports[mid..],
            "{name}: reports diverged after restore"
        );
        assert_eq!(
            snapshot_detector(&restored),
            snapshot_detector(&reference),
            "{name}: end state diverged after restore"
        );
    }
}

#[test]
fn lazy_bank_snapshots_are_restorable_at_every_tick_including_mid_wake() {
    // With the §17 lazy schedule the bank cycles through dormancy,
    // wakes, and audit countdowns; an attack scenario forces mid-run
    // wake-ups. Snapshotting after *every* tick sweeps the format over
    // each of those intermediate states — including audits in flight —
    // and each snapshot must restore to identical bytes.
    let config = RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::lazy_defaults());
    let trace = trace_for(Scenario::ips_spoofing());
    let records = trace.records();

    let mut live = twin(&config);
    let mut scratch = twin(&config);
    let mut snaps = Vec::with_capacity(records.len());
    for r in records {
        live.step(&r.planned_command, &r.readings).unwrap();
        let snap = snapshot_detector(&live);
        restore_detector(&mut scratch, &snap).unwrap();
        assert_eq!(
            snapshot_detector(&scratch),
            snap,
            "tick {}: roundtrip identity",
            r.k
        );
        snaps.push(snap);
    }
    let end = snapshot_detector(&live);

    // Continuations from a quiet tick, from the attack onset, and from
    // deep inside the alarm all converge on the reference end state.
    for cut in [records.len() / 4, records.len() / 2, 3 * records.len() / 4] {
        let mut resumed = twin(&config);
        restore_detector(&mut resumed, &snaps[cut - 1]).unwrap();
        drive(&mut resumed, &records[cut..]);
        assert_eq!(
            snapshot_detector(&resumed),
            end,
            "continuation from tick {cut} diverged"
        );
    }
}

#[test]
fn open_chi2_window_survives_snapshot_at_every_onset_tick() {
    // Scenario S1 turns the IPS hostile at t = 4 s; the χ² decision
    // window opens and fills across the following ticks. Cutting at
    // every tick of that span guarantees some snapshots land with the
    // window partially filled and the alarm not yet confirmed.
    let config = RoboAdsConfig::paper_defaults();
    let trace = trace_for(Scenario::ips_spoofing());
    let records = trace.records();
    let mut reference = twin(&config);
    drive(&mut reference, records);
    let end = snapshot_detector(&reference);

    let onset = 36..48.min(records.len());
    let mut live = twin(&config);
    drive(&mut live, &records[..onset.start]);
    for cut in onset {
        live.step(&records[cut].planned_command, &records[cut].readings)
            .unwrap();
        let snap = snapshot_detector(&live);
        let mut resumed = twin(&config);
        restore_detector(&mut resumed, &snap).unwrap();
        drive(&mut resumed, &records[cut + 1..]);
        assert_eq!(
            snapshot_detector(&resumed),
            end,
            "open-window snapshot at tick {cut} diverged"
        );
    }
}

/// Fleet twin construction shared by the ingest tests: `n` runner-exact
/// detectors pinned to sequential stepping, wrapped in an engine and a
/// stamped-frame ingest.
fn fleet_twins(n: usize, policy: DeadlinePolicy) -> (FleetEngine, FleetIngest) {
    let mut config = RoboAdsConfig::paper_defaults();
    config.threads = Some(1);
    let detectors: Vec<RoboAds> = (0..n).map(|_| twin(&config)).collect();
    let engine = FleetEngine::new(detectors, 1);
    let ingest = FleetIngest::for_fleet(&engine).with_policy(policy);
    (engine, ingest)
}

/// Feeds one tick of recorded inputs into the ingest — all sensors of
/// every robot except those in `drop` — and steps the fleet. Missed
/// deadlines are tolerated, exactly as a live monitor tolerates them.
fn fleet_tick(
    engine: &mut FleetEngine,
    ingest: &mut FleetIngest,
    record: &TraceRecord,
    k: u64,
    drop: &[(usize, usize)],
) {
    for robot in 0..engine.len() {
        ingest
            .offer_input_stamped(robot, &record.planned_command, k)
            .unwrap();
        for (sensor, reading) in record.readings.iter().enumerate() {
            if drop.contains(&(robot, sensor)) {
                continue;
            }
            ingest.offer_stamped(robot, sensor, reading, k).unwrap();
        }
    }
    let _ = ingest.step(engine);
}

#[test]
fn hold_last_ingest_with_incomplete_history_snapshots_bitwise() {
    // Robot 1 loses its IPS frames for the first three ticks, so its
    // `HoldLast` slot has no complete history to hold — the hardest
    // ingest state to serialize. The cut lands at tick 2, inside that
    // incomplete span; frames keep dropping after the restore too.
    let trace = trace_for(Scenario::clean());
    let records = trace.records();
    let drops: Vec<(u64, Vec<(usize, usize)>)> = vec![
        (0, vec![(1, 0)]),
        (1, vec![(1, 0)]),
        (2, vec![(1, 0)]),
        (6, vec![(1, 0), (0, 2)]),
    ];
    let drop_at = |k: u64| -> Vec<(usize, usize)> {
        drops
            .iter()
            .find(|(tick, _)| *tick == k)
            .map(|(_, d)| d.clone())
            .unwrap_or_default()
    };

    let (mut ref_engine, mut ref_ingest) = fleet_twins(2, DeadlinePolicy::HoldLast);
    for (k, r) in records.iter().enumerate() {
        fleet_tick(
            &mut ref_engine,
            &mut ref_ingest,
            r,
            k as u64,
            &drop_at(k as u64),
        );
    }
    let end = snapshot_fleet(&ref_engine, &ref_ingest);

    let cut = 3usize;
    let (mut live_engine, mut live_ingest) = fleet_twins(2, DeadlinePolicy::HoldLast);
    for (k, r) in records[..cut].iter().enumerate() {
        fleet_tick(
            &mut live_engine,
            &mut live_ingest,
            r,
            k as u64,
            &drop_at(k as u64),
        );
    }
    let snap = snapshot_fleet(&live_engine, &live_ingest);

    let (mut engine, mut ingest) = fleet_twins(2, DeadlinePolicy::HoldLast);
    restore_fleet(&mut engine, &mut ingest, &snap).unwrap();
    assert_eq!(
        snapshot_fleet(&engine, &ingest),
        snap,
        "fleet roundtrip identity"
    );
    for (k, r) in records.iter().enumerate().skip(cut) {
        fleet_tick(&mut engine, &mut ingest, r, k as u64, &drop_at(k as u64));
    }
    assert_eq!(
        snapshot_fleet(&engine, &ingest),
        end,
        "HoldLast fleet end state diverged after restore"
    );
    for robot in 0..2 {
        assert_eq!(
            engine.report(robot),
            ref_engine.report(robot),
            "robot {robot} report"
        );
    }
}

#[test]
fn freshly_regrouped_heterogeneous_fleet_snapshots_bitwise() {
    // Two activation policies → two §16 signature groups. The restore
    // path deliberately drops the slab partition (it re-resolves on the
    // next step), so the continued run exercises a freshly regrouped
    // fleet on both sides of the cut.
    let trace = trace_for(Scenario::clean());
    let records = &trace.records()[..24];
    let build = || {
        let mut full = RoboAdsConfig::paper_defaults();
        full.threads = Some(1);
        let mut lazy = full
            .clone()
            .with_activation(ActivationPolicy::lazy_defaults());
        lazy.threads = Some(1);
        let detectors = vec![twin(&full), twin(&lazy), twin(&full), twin(&lazy)];
        let engine = FleetEngine::new(detectors, 1);
        let ingest = FleetIngest::for_fleet(&engine);
        (engine, ingest)
    };

    let (mut ref_engine, mut ref_ingest) = build();
    for (k, r) in records.iter().enumerate() {
        fleet_tick(&mut ref_engine, &mut ref_ingest, r, k as u64, &[]);
    }
    let end = snapshot_fleet(&ref_engine, &ref_ingest);

    let cut = 9usize;
    let (mut live_engine, mut live_ingest) = build();
    for (k, r) in records[..cut].iter().enumerate() {
        fleet_tick(&mut live_engine, &mut live_ingest, r, k as u64, &[]);
    }
    let snap = snapshot_fleet(&live_engine, &live_ingest);

    let (mut engine, mut ingest) = build();
    restore_fleet(&mut engine, &mut ingest, &snap).unwrap();
    for (k, r) in records.iter().enumerate().skip(cut) {
        fleet_tick(&mut engine, &mut ingest, r, k as u64, &[]);
    }
    assert_eq!(
        snapshot_fleet(&engine, &ingest),
        end,
        "heterogeneous fleet end state diverged after restore"
    );
}

#[test]
fn snapshots_reject_foreign_and_damaged_bytes() {
    let config = RoboAdsConfig::paper_defaults();
    let trace = trace_for(Scenario::clean());
    let mut det = twin(&config);
    drive(&mut det, &trace.records()[..5]);
    let snap = snapshot_detector(&det);

    // A fleet envelope is not a detector envelope.
    let (engine, ingest) = fleet_twins(1, DeadlinePolicy::MarkMissing);
    let fleet_snap = snapshot_fleet(&engine, &ingest);
    let mut victim = twin(&config);
    assert!(restore_detector(&mut victim, &fleet_snap).is_err());

    // Truncations error cleanly, never panic.
    for cut in [0, 4, 9, snap.len() / 2, snap.len() - 1] {
        let mut victim = twin(&config);
        assert!(
            restore_detector(&mut victim, &snap[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }

    // A clean restore still succeeds after the rejected attempts.
    let mut victim = twin(&config);
    restore_detector(&mut victim, &snap).unwrap();
    assert_eq!(snapshot_detector(&victim), snap);
}
