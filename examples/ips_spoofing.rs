//! Sensor-misbehavior walkthrough: Table II scenario #4 (IPS spoofing)
//! with a per-second timeline of what the detector sees and decides.
//!
//! ```text
//! cargo run --release --example ips_spoofing
//! ```

use roboads::sim::{Scenario, SimulationBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::ips_spoofing();
    println!("scenario #4: {}\n", scenario.description());

    let outcome = SimulationBuilder::khepera()
        .scenario(scenario)
        .seed(42)
        .run()?;

    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "t (s)", "ips dX", "χ² stat", "threshold", "alarm", "condition"
    );
    for r in outcome.trace.records() {
        if r.k % 10 != 9 {
            continue; // one line per second
        }
        let ips = r.report.sensor_anomaly_for(0).expect("IPS view");
        println!(
            "{:>5.1} {:>+10.3} {:>10.1} {:>12.1} {:>10} {:>12}",
            r.time,
            ips.estimate[0],
            r.report.sensor_anomaly.statistic,
            r.report.sensor_anomaly.threshold,
            if r.report.sensor_alarm { "ALARM" } else { "-" },
            r.report.sensor_condition_label(),
        );
    }

    println!(
        "\nidentified sequence: {}",
        outcome.eval.detected_sensor_sequence.join(" -> ")
    );
    println!(
        "per-iteration rates: FPR {:.2}%, FNR {:.2}%",
        outcome.eval.sensor_fpr() * 100.0,
        outcome.eval.sensor_fnr() * 100.0,
    );
    Ok(())
}
