use roboads_obs::wire;

use crate::{CoreError, Result};

/// The mode selector of Algorithm 1 (lines 6–9): maintains normalized
/// mode probabilities `μ_m ← max(N_m·μ_m, ε)` and selects the most
/// likely sensor-condition hypothesis.
///
/// The floor `ε` keeps a momentarily implausible mode recoverable: after
/// an attack ends, the previously "wrong" hypothesis can win again
/// within a few iterations instead of being locked out by a vanishing
/// probability. The floor is applied both before and after
/// normalization (the paper applies it before; re-applying after
/// normalization guards against underflow when one likelihood dwarfs
/// the others by hundreds of orders of magnitude).
///
/// In addition, each update mixes the probabilities toward uniform with
/// rate [`MODE_MIXING`] — the standard interacting-multiple-model
/// transition prior. §VI observes that "experienced attackers could
/// frequently switch attack targets, making mode estimation
/// challenging"; the mixing term is exactly a nonzero prior on such
/// switches, and it bounds how far a temporarily out-of-favor clean
/// hypothesis can be starved by the multiplicative update.
///
/// # Example
///
/// ```
/// use roboads_core::ModeSelector;
///
/// let mut sel = ModeSelector::uniform(3, 1e-6).unwrap();
/// // Mode 1 explains the data far better for a few iterations.
/// for _ in 0..3 {
///     sel.update(&[0.1, 100.0, 0.1]).unwrap();
/// }
/// assert_eq!(sel.selected(), 1);
/// assert!(sel.probabilities()[1] > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModeSelector {
    probabilities: Vec<f64>,
    floor: f64,
    mixing: f64,
    selected: usize,
    /// Whether the last [`ModeSelector::update`] saw *every* likelihood
    /// sanitize to zero (non-finite, negative or exactly 0). The floor
    /// then renormalizes the bank to near-uniform — indistinguishable,
    /// from the probabilities alone, from healthy uncertainty — so the
    /// condition must stay queryable: a fleet-wide filter blow-up is an
    /// alarm, not a shrug.
    all_floored: bool,
}

/// Per-iteration mixing rate toward the uniform distribution (the
/// mode-switch prior).
pub const MODE_MIXING: f64 = 0.02;

/// Selection hysteresis: the incumbent mode stays selected unless a
/// challenger's probability exceeds the incumbent's by this factor.
/// Near-ties between competing self-consistent hypotheses otherwise
/// flap on noise.
pub const SELECTION_HYSTERESIS: f64 = 3.0;

impl ModeSelector {
    /// Creates a selector with uniform initial probabilities over
    /// `mode_count` modes and the given floor `ε`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero modes or a floor
    /// outside `(0, 1)`.
    pub fn uniform(mode_count: usize, floor: f64) -> Result<Self> {
        if mode_count == 0 {
            return Err(CoreError::InvalidConfig {
                name: "mode_count",
                value: "0".into(),
            });
        }
        if !(floor.is_finite() && floor > 0.0 && floor < 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "mode_floor",
                value: format!("{floor}"),
            });
        }
        Ok(ModeSelector {
            probabilities: vec![1.0 / mode_count as f64; mode_count],
            floor,
            mixing: MODE_MIXING,
            selected: 0,
            all_floored: false,
        })
    }

    /// Returns a copy with a different mixing rate (0 disables the
    /// transition prior — ablation only; recovery after attacks then
    /// relies on the floor alone).
    pub fn with_mixing(mut self, mixing: f64) -> Self {
        self.mixing = mixing.clamp(0.0, 0.999);
        self
    }

    /// Folds one iteration's likelihoods into the probabilities and
    /// returns the selected (most likely) mode index; ties resolve to
    /// the lowest index.
    ///
    /// Non-finite or negative likelihoods are treated as zero — a mode
    /// whose filter blew up must not win the selection.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the likelihood count does
    /// not match the mode count.
    pub fn update(&mut self, likelihoods: &[f64]) -> Result<usize> {
        if likelihoods.len() != self.probabilities.len() {
            return Err(CoreError::InvalidConfig {
                name: "likelihoods",
                value: format!(
                    "{} values for {} modes",
                    likelihoods.len(),
                    self.probabilities.len()
                ),
            });
        }
        self.all_floored = !likelihoods.iter().any(|&n| n.is_finite() && n > 0.0);
        for (mu, &n) in self.probabilities.iter_mut().zip(likelihoods) {
            let n = if n.is_finite() && n > 0.0 { n } else { 0.0 };
            *mu = (*mu * n).max(self.floor);
        }
        let sum: f64 = self.probabilities.iter().sum();
        if sum > 0.0 && sum.is_finite() {
            for mu in &mut self.probabilities {
                *mu = (*mu / sum).max(self.floor);
            }
            // Flooring after normalization can push the sum above 1;
            // renormalize so the output is a proper distribution, then
            // mix toward uniform (the mode-switch prior).
            let sum2: f64 = self.probabilities.iter().sum();
            let uniform = 1.0 / self.probabilities.len() as f64;
            for mu in &mut self.probabilities {
                *mu = (1.0 - self.mixing) * (*mu / sum2) + self.mixing * uniform;
            }
        } else {
            // All hypotheses died (e.g. every reading NaN-adjacent):
            // restart from uniform rather than divide by zero.
            let uniform = 1.0 / self.probabilities.len() as f64;
            self.probabilities.fill(uniform);
        }
        let argmax = self
            .probabilities
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("nonempty probabilities");
        // Hysteresis: keep the incumbent through near-ties.
        if argmax != self.selected
            && self.probabilities[argmax] < self.probabilities[self.selected] * SELECTION_HYSTERESIS
        {
            return Ok(self.selected);
        }
        self.selected = argmax;
        Ok(self.selected)
    }

    /// Folds one iteration's likelihoods for a **partially active** bank
    /// (DESIGN.md §17): dormant modes (`active[m] == false`) carry no
    /// information this iteration, so their probability is pinned at the
    /// floor `ε` rather than multiplied, normalized or mixed — they must
    /// neither absorb probability mass through the uniform-mixing prior
    /// nor trip the [`ModeSelector::all_floored`] condition, which is
    /// evaluated over the *active* likelihoods only. Active modes are
    /// renormalized onto the remaining `1 − dormant·ε` mass (floored and
    /// mixed toward uniform-over-active), so the output stays a proper
    /// distribution over the full bank and a woken mode restarts from
    /// exactly the refloored probability the re-anchor contract expects.
    ///
    /// The selection argmax and hysteresis run over active modes only; a
    /// dormant incumbent (the caller keeps the selected mode active, so
    /// this is defensive) is simply replaced by the active argmax.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `likelihoods` or `active`
    /// length differs from the mode count, or no mode is active.
    pub fn update_partial(&mut self, likelihoods: &[f64], active: &[bool]) -> Result<usize> {
        if likelihoods.len() != self.probabilities.len() || active.len() != likelihoods.len() {
            return Err(CoreError::InvalidConfig {
                name: "likelihoods/active",
                value: format!(
                    "{}/{} values for {} modes",
                    likelihoods.len(),
                    active.len(),
                    self.probabilities.len()
                ),
            });
        }
        let active_count = active.iter().filter(|&&a| a).count();
        if active_count == 0 {
            return Err(CoreError::InvalidConfig {
                name: "active",
                value: "no active modes".into(),
            });
        }
        self.all_floored = !likelihoods
            .iter()
            .zip(active)
            .any(|(&n, &a)| a && n.is_finite() && n > 0.0);
        for ((mu, &n), &a) in self.probabilities.iter_mut().zip(likelihoods).zip(active) {
            if !a {
                *mu = self.floor;
                continue;
            }
            let n = if n.is_finite() && n > 0.0 { n } else { 0.0 };
            *mu = (*mu * n).max(self.floor);
        }
        // Dormant modes hold exactly ε each; the active modes share the
        // rest so the full bank still sums to one.
        let dormant_mass = (likelihoods.len() - active_count) as f64 * self.floor;
        let target = 1.0 - dormant_mass;
        let sum: f64 = self
            .probabilities
            .iter()
            .zip(active)
            .filter(|(_, &a)| a)
            .map(|(mu, _)| *mu)
            .sum();
        if sum > 0.0 && sum.is_finite() {
            for (mu, &a) in self.probabilities.iter_mut().zip(active) {
                if a {
                    *mu = (*mu / sum).max(self.floor);
                }
            }
            let sum2: f64 = self
                .probabilities
                .iter()
                .zip(active)
                .filter(|(_, &a)| a)
                .map(|(mu, _)| *mu)
                .sum();
            let uniform = 1.0 / active_count as f64;
            for (mu, &a) in self.probabilities.iter_mut().zip(active) {
                if a {
                    *mu = ((1.0 - self.mixing) * (*mu / sum2) + self.mixing * uniform) * target;
                }
            }
        } else {
            // Every *active* hypothesis died: restart the active subset
            // from uniform. Dormant modes stay parked at the floor —
            // they were not consulted and must not look resurrected.
            let uniform = target / active_count as f64;
            for (mu, &a) in self.probabilities.iter_mut().zip(active) {
                if a {
                    *mu = uniform;
                }
            }
        }
        let argmax = self
            .probabilities
            .iter()
            .zip(active)
            .enumerate()
            .filter(|(_, (_, &a))| a)
            .max_by(|(_, (a, _)), (_, (b, _))| a.partial_cmp(b).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .expect("at least one active mode");
        if active[self.selected]
            && argmax != self.selected
            && self.probabilities[argmax] < self.probabilities[self.selected] * SELECTION_HYSTERESIS
        {
            return Ok(self.selected);
        }
        self.selected = argmax;
        Ok(self.selected)
    }

    /// The currently selected mode.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Whether the last [`ModeSelector::update`] floored *every* mode:
    /// all likelihoods were zero, negative or non-finite, so no
    /// hypothesis explains the data and the near-uniform probabilities
    /// carry no information. Callers should surface this (the engine
    /// emits `engine.all_modes_floored`) rather than read the uniform
    /// output as healthy uncertainty.
    pub fn all_floored(&self) -> bool {
        self.all_floored
    }

    /// The normalized mode probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Resets to uniform probabilities.
    pub fn reset(&mut self) {
        let uniform = 1.0 / self.probabilities.len() as f64;
        self.probabilities.fill(uniform);
        self.selected = 0;
    }

    /// Appends the selector's mutable state to a snapshot buffer
    /// (DESIGN.md §18). `floor`/`mixing` are construction-time
    /// configuration and belong to the restore twin, not the snapshot.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        wire::put_f64_slice(out, &self.probabilities);
        wire::put_u64(out, self.selected as u64);
        wire::put_bool(out, self.all_floored);
    }

    /// Restores the selector's mutable state from a snapshot buffer.
    pub(crate) fn snap_read(&mut self, rd: &mut wire::ByteReader<'_>) -> Result<()> {
        rd.f64_into(&mut self.probabilities)?;
        let selected = rd.u64()? as usize;
        if selected >= self.probabilities.len() {
            return Err(CoreError::Snapshot {
                reason: format!(
                    "selected mode {selected} out of range for {} modes",
                    self.probabilities.len()
                ),
            });
        }
        self.selected = selected;
        self.all_floored = rd.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_dominant_mode() {
        let mut sel = ModeSelector::uniform(3, 1e-6).unwrap();
        for _ in 0..5 {
            sel.update(&[1.0, 1.0, 50.0]).unwrap();
        }
        assert_eq!(sel.selected(), 2);
        let p = sel.probabilities();
        assert!(p[2] > 0.9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floor_enables_recovery_after_switch() {
        let mut sel = ModeSelector::uniform(2, 1e-6).unwrap();
        // Mode 0 dominates for a long time.
        for _ in 0..500 {
            sel.update(&[100.0, 0.001]).unwrap();
        }
        assert_eq!(sel.selected(), 0);
        // Now the world switches; mode 1 must win within a few steps.
        let mut switched_at = None;
        for k in 0..20 {
            if sel.update(&[0.001, 100.0]).unwrap() == 1 {
                switched_at = Some(k);
                break;
            }
        }
        assert!(
            switched_at.is_some() && switched_at.unwrap() < 5,
            "recovery took {switched_at:?} iterations"
        );
    }

    #[test]
    fn nan_likelihood_cannot_win() {
        let mut sel = ModeSelector::uniform(2, 1e-6).unwrap();
        sel.update(&[f64::NAN, 1.0]).unwrap();
        assert_eq!(sel.selected(), 1);
        assert!(sel.probabilities().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn all_zero_likelihoods_reset_to_uniform() {
        let mut sel = ModeSelector::uniform(4, 1e-6).unwrap();
        sel.update(&[10.0, 1.0, 1.0, 1.0]).unwrap();
        sel.update(&[0.0, 0.0, 0.0, 0.0]).unwrap();
        // max(μ·0, ε) = ε for all → normalized uniform.
        for &p in sel.probabilities() {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn all_floored_is_flagged_and_clears_on_recovery() {
        let mut sel = ModeSelector::uniform(3, 1e-6).unwrap();
        assert!(!sel.all_floored(), "fresh selector has seen no update");
        sel.update(&[1.0, 2.0, 3.0]).unwrap();
        assert!(!sel.all_floored());
        // Every hypothesis dies at once: zeros, NaN and a negative all
        // sanitize to zero, so the floor is the only thing holding the
        // distribution up — that must be flagged, because the resulting
        // near-uniform probabilities look exactly like healthy
        // uncertainty.
        sel.update(&[0.0, f64::NAN, -1.0]).unwrap();
        assert!(sel.all_floored(), "fleet-wide blow-up must be visible");
        let sum: f64 = sel.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "output is still a distribution");
        // One live likelihood clears the flag again.
        sel.update(&[0.0, 5.0, 0.0]).unwrap();
        assert!(!sel.all_floored());
    }

    #[test]
    fn single_floored_mode_does_not_flag() {
        let mut sel = ModeSelector::uniform(2, 1e-6).unwrap();
        sel.update(&[0.0, 4.0]).unwrap();
        assert!(!sel.all_floored(), "one dead mode is normal operation");
    }

    #[test]
    fn partial_update_parks_dormant_modes_at_the_floor() {
        // k = 2 of 7: only modes 0 and 3 are active; the other five are
        // dormant and must stay pinned at ε no matter how many
        // iterations pass — the uniform-mixing prior must not leak mass
        // back into hypotheses nobody is evaluating.
        let mut sel = ModeSelector::uniform(7, 1e-6).unwrap();
        let mut active = [false; 7];
        active[0] = true;
        active[3] = true;
        for _ in 0..50 {
            sel.update_partial(&[5.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0], &active)
                .unwrap();
        }
        let p = sel.probabilities();
        for (m, &mu) in p.iter().enumerate() {
            if !active[m] {
                assert_eq!(mu, 1e-6, "dormant mode {m} drifted off the floor");
            }
        }
        assert_eq!(sel.selected(), 0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.9);
    }

    #[test]
    fn partial_update_flags_all_floored_over_active_modes_only() {
        let mut sel = ModeSelector::uniform(7, 1e-6).unwrap();
        let mut active = [false; 7];
        active[0] = true;
        active[3] = true;
        // Dormant likelihood slots are zero by construction; that must
        // not read as a bank-wide blow-up while an active mode is alive.
        sel.update_partial(&[2.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0], &active)
            .unwrap();
        assert!(
            !sel.all_floored(),
            "dormant zeros spuriously tripped all_floored"
        );
        // Both *active* hypotheses dying is a real blow-up.
        sel.update_partial(&[0.0, 0.0, 0.0, f64::NAN, 0.0, 0.0, 0.0], &active)
            .unwrap();
        assert!(sel.all_floored());
        // The active subset restarts uniform; dormant modes stay parked.
        let p = sel.probabilities();
        assert!((p[0] - p[3]).abs() < 1e-12);
        assert_eq!(p[1], 1e-6);
    }

    #[test]
    fn partial_update_requires_an_active_mode_and_matching_lengths() {
        let mut sel = ModeSelector::uniform(3, 1e-6).unwrap();
        assert!(sel.update_partial(&[1.0, 1.0, 1.0], &[false; 3]).is_err());
        assert!(sel.update_partial(&[1.0, 1.0], &[true; 3]).is_err());
        assert!(sel.update_partial(&[1.0, 1.0, 1.0], &[true; 2]).is_err());
    }

    #[test]
    fn mismatched_likelihood_count_errors() {
        let mut sel = ModeSelector::uniform(2, 1e-6).unwrap();
        assert!(sel.update(&[1.0]).is_err());
    }

    #[test]
    fn invalid_construction() {
        assert!(ModeSelector::uniform(0, 1e-6).is_err());
        assert!(ModeSelector::uniform(2, 0.0).is_err());
        assert!(ModeSelector::uniform(2, 1.5).is_err());
    }

    #[test]
    fn hysteresis_keeps_the_incumbent_through_near_ties() {
        let mut sel = ModeSelector::uniform(2, 1e-6).unwrap();
        // Mode 0 becomes the incumbent.
        for _ in 0..5 {
            sel.update(&[10.0, 1.0]).unwrap();
        }
        assert_eq!(sel.selected(), 0);
        // A mild advantage for mode 1 (under the 3x hysteresis band
        // after one step) must not flip the selection immediately...
        sel.update(&[1.0, 1.3]).unwrap();
        assert_eq!(sel.selected(), 0, "near-tie must keep the incumbent");
        // ...but a decisive advantage must.
        for _ in 0..10 {
            sel.update(&[0.001, 10.0]).unwrap();
        }
        assert_eq!(sel.selected(), 1);
    }

    #[test]
    fn mixing_rate_is_configurable() {
        let mut plain = ModeSelector::uniform(2, 1e-6).unwrap().with_mixing(0.0);
        let mut mixed = ModeSelector::uniform(2, 1e-6).unwrap().with_mixing(0.2);
        for _ in 0..20 {
            plain.update(&[10.0, 0.1]).unwrap();
            mixed.update(&[10.0, 0.1]).unwrap();
        }
        // Heavier mixing keeps the loser's probability higher.
        assert!(mixed.probabilities()[1] > plain.probabilities()[1]);
    }

    #[test]
    fn reset_restores_uniform() {
        let mut sel = ModeSelector::uniform(2, 1e-6).unwrap();
        sel.update(&[100.0, 0.1]).unwrap();
        sel.reset();
        assert_eq!(sel.probabilities(), &[0.5, 0.5]);
    }
}
