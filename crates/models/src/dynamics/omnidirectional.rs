use roboads_linalg::{Matrix, Vector};

use crate::angle::wrap_angle;
use crate::dynamics::DynamicsModel;
use crate::{ModelError, Result};

/// Omnidirectional (mecanum/holonomic) kinematics: state `(x, y, θ)`,
/// input `u = (v_x, v_y, ω)` with the translational velocities in the
/// *body* frame.
///
/// Not one of the paper's robots, but it rounds out the library with a
/// three-channel actuator: with `q = 3`, a single full-pose reference
/// sensor has `C₂G` square and invertible, so NUISE can attribute an
/// anomaly to any individual actuator channel — the warehouse-robot
/// configuration the paper's introduction motivates.
///
/// ```text
/// x_k = x + (v_x·cosθ − v_y·sinθ)·Δt
/// y_k = y + (v_x·sinθ + v_y·cosθ)·Δt
/// θ_k = wrap(θ + ω·Δt)
/// ```
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::dynamics::Omnidirectional;
/// use roboads_models::DynamicsModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let omni = Omnidirectional::new(0.1)?;
/// // Pure sideways motion while facing +x.
/// let x1 = omni.step(
///     &Vector::from_slice(&[0.0, 0.0, 0.0]),
///     &Vector::from_slice(&[0.0, 0.5, 0.0]),
/// );
/// assert_eq!(x1[0], 0.0);
/// assert!((x1[1] - 0.05).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Omnidirectional {
    dt: f64,
}

impl Omnidirectional {
    /// Creates the model with control period `dt` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive `dt`.
    pub fn new(dt: f64) -> Result<Self> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "dt",
                value: format!("{dt}"),
            });
        }
        Ok(Omnidirectional { dt })
    }

    /// Control period in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }
}

impl DynamicsModel for Omnidirectional {
    fn state_dim(&self) -> usize {
        3
    }

    fn input_dim(&self) -> usize {
        3
    }

    fn angular_state_components(&self) -> &[usize] {
        &[2]
    }

    fn name(&self) -> &str {
        "omnidirectional"
    }

    fn step(&self, x: &Vector, u: &Vector) -> Vector {
        assert_eq!(x.len(), 3, "omnidirectional expects a 3-state");
        assert_eq!(u.len(), 3, "omnidirectional expects (vx, vy, omega)");
        let (c, s) = (x[2].cos(), x[2].sin());
        Vector::from_slice(&[
            x[0] + (u[0] * c - u[1] * s) * self.dt,
            x[1] + (u[0] * s + u[1] * c) * self.dt,
            wrap_angle(x[2] + u[2] * self.dt),
        ])
    }

    fn state_jacobian(&self, x: &Vector, u: &Vector) -> Matrix {
        let (c, s) = (x[2].cos(), x[2].sin());
        Matrix::from_rows(&[
            &[1.0, 0.0, (-u[0] * s - u[1] * c) * self.dt],
            &[0.0, 1.0, (u[0] * c - u[1] * s) * self.dt],
            &[0.0, 0.0, 1.0],
        ])
        .expect("static shape")
    }

    fn input_jacobian(&self, x: &Vector, _u: &Vector) -> Matrix {
        let (c, s) = (x[2].cos(), x[2].sin());
        Matrix::from_rows(&[
            &[c * self.dt, -s * self.dt, 0.0],
            &[s * self.dt, c * self.dt, 0.0],
            &[0.0, 0.0, self.dt],
        ])
        .expect("static shape")
    }

    fn step_into(&self, x: &Vector, u: &Vector, out: &mut Vector) {
        assert_eq!(x.len(), 3, "omnidirectional expects a 3-state");
        assert_eq!(u.len(), 3, "omnidirectional expects (vx, vy, omega)");
        let (c, s) = (x[2].cos(), x[2].sin());
        out[0] = x[0] + (u[0] * c - u[1] * s) * self.dt;
        out[1] = x[1] + (u[0] * s + u[1] * c) * self.dt;
        out[2] = wrap_angle(x[2] + u[2] * self.dt);
    }

    fn state_jacobian_into(&self, x: &Vector, u: &Vector, out: &mut Matrix) {
        let (c, s) = (x[2].cos(), x[2].sin());
        out.as_mut_slice().copy_from_slice(&[
            1.0,
            0.0,
            (-u[0] * s - u[1] * c) * self.dt,
            0.0,
            1.0,
            (u[0] * c - u[1] * s) * self.dt,
            0.0,
            0.0,
            1.0,
        ]);
    }

    fn input_jacobian_into(&self, x: &Vector, _u: &Vector, out: &mut Matrix) {
        let (c, s) = (x[2].cos(), x[2].sin());
        out.as_mut_slice().copy_from_slice(&[
            c * self.dt,
            -s * self.dt,
            0.0,
            s * self.dt,
            c * self.dt,
            0.0,
            0.0,
            0.0,
            self.dt,
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::test_support::{assert_into_variants_match, assert_jacobians_match};

    #[test]
    fn body_frame_motion_rotates_with_heading() {
        let omni = Omnidirectional::new(0.1).unwrap();
        // Facing +y, body-forward motion moves along world +y.
        let x1 = omni.step(
            &Vector::from_slice(&[0.0, 0.0, std::f64::consts::FRAC_PI_2]),
            &Vector::from_slice(&[0.5, 0.0, 0.0]),
        );
        assert!(x1[0].abs() < 1e-12);
        assert!((x1[1] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn holonomic_diagonal_translation_with_spin() {
        let omni = Omnidirectional::new(0.1).unwrap();
        let x1 = omni.step(
            &Vector::from_slice(&[1.0, 1.0, 0.0]),
            &Vector::from_slice(&[0.3, 0.4, 1.0]),
        );
        assert!((x1[0] - 1.03).abs() < 1e-12);
        assert!((x1[1] - 1.04).abs() < 1e-12);
        assert!((x1[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jacobians_match_numeric() {
        let omni = Omnidirectional::new(0.1).unwrap();
        for &theta in &[0.0, 0.9, -2.4] {
            assert_jacobians_match(
                &omni,
                &Vector::from_slice(&[0.4, -0.2, theta]),
                &Vector::from_slice(&[0.2, -0.1, 0.6]),
                1e-6,
            );
            assert_into_variants_match(
                &omni,
                &Vector::from_slice(&[0.4, -0.2, theta]),
                &Vector::from_slice(&[0.2, -0.1, 0.6]),
            );
        }
    }

    #[test]
    fn input_jacobian_is_invertible() {
        // q = 3 with a full-pose sensor: C₂G square and invertible, so a
        // three-channel actuator anomaly is fully attributable.
        let omni = Omnidirectional::new(0.1).unwrap();
        let g = omni.input_jacobian(&Vector::from_slice(&[0.0, 0.0, 0.7]), &Vector::zeros(3));
        assert!(g.determinant().unwrap().abs() > 1e-6);
    }

    #[test]
    fn rejects_bad_dt() {
        assert!(Omnidirectional::new(0.0).is_err());
    }
}
