//! §V-H — evasive attacks: the largest corruption that stays below the
//! alarm thresholds.
//!
//! The paper reports that under the tuned configuration a stealthy IPS
//! spoofing shift must stay **under 0.02 m** and a stealthy wheel-speed
//! alteration **under 900 speed units (0.006 m/s)** — too small to have
//! meaningful mission impact. This harness bisects both stealth
//! boundaries.
//!
//! Run with: `cargo bench -p roboads-bench --bench evasive`

use roboads_core::RoboAdsConfig;
use roboads_linalg::Vector;
use roboads_models::dynamics::DifferentialDrive;
use roboads_sim::{Corruption, Misbehavior, Scenario, SimulationBuilder, Target};

const SEEDS: [u64; 2] = [11, 23];
const ONSET: usize = 40;
const DURATION: usize = 200;

/// Whether an IPS X-shift of `bias` meters triggers any sensor alarm.
fn ips_shift_detected(bias: f64) -> bool {
    let scenario = Scenario::new(
        0,
        "stealth-ips",
        "stealthy IPS shift",
        vec![Misbehavior::new(
            "stealth-ips",
            Target::Sensor(0),
            Corruption::Bias(Vector::from_slice(&[bias, 0.0, 0.0])),
            ONSET,
            None,
        )],
        DURATION,
    );
    SEEDS.iter().any(|&seed| {
        let outcome = SimulationBuilder::khepera()
            .scenario(scenario.clone())
            .config(RoboAdsConfig::paper_defaults())
            .seed(seed)
            .run()
            .expect("stealth run");
        // Detection = the attacked workflow is *identified* for at least
        // 5 iterations (0.5 s); isolated background window transients
        // exist at any attack magnitude and do not count.
        outcome
            .trace
            .records()
            .iter()
            .filter(|r| r.report.misbehaving_sensors == vec![0])
            .count()
            >= 5
    })
}

/// Whether a symmetric wheel-speed alteration of `mps` m/s triggers any
/// actuator alarm.
fn wheel_bias_detected(mps: f64) -> bool {
    let scenario = Scenario::new(
        0,
        "stealth-wheel",
        "stealthy wheel alteration",
        vec![Misbehavior::new(
            "stealth-wheel",
            Target::Actuators,
            Corruption::Bias(Vector::from_slice(&[-mps, mps])),
            ONSET,
            None,
        )],
        DURATION,
    );
    SEEDS.iter().any(|&seed| {
        let outcome = SimulationBuilder::khepera()
            .scenario(scenario.clone())
            .config(RoboAdsConfig::paper_defaults())
            .seed(seed)
            .run()
            .expect("stealth run");
        outcome
            .trace
            .records()
            .iter()
            .filter(|r| r.k >= ONSET && r.report.actuator_alarm)
            .count()
            >= 5
    })
}

/// Bisects the detection boundary of a monotone predicate on `[lo, hi]`.
fn bisect(mut lo: f64, mut hi: f64, detected: impl Fn(f64) -> bool) -> f64 {
    assert!(!detected(lo), "lower bound must be stealthy");
    assert!(detected(hi), "upper bound must be detected");
    for _ in 0..10 {
        let mid = 0.5 * (lo + hi);
        if detected(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    println!("bisecting the stealthy IPS spoofing boundary …");
    let ips_boundary = bisect(0.001, 0.08, ips_shift_detected);
    println!(
        "largest stealthy IPS X shift ≈ {:.3} m (paper: ~0.02 m)",
        ips_boundary
    );

    println!("\nbisecting the stealthy wheel-speed boundary …");
    let wheel_boundary = bisect(0.0005, 0.03, wheel_bias_detected);
    let units = wheel_boundary / DifferentialDrive::KHEPERA_SPEED_UNIT;
    println!(
        "largest stealthy wheel alteration ≈ {:.4} m/s ≈ {:.0} speed units \
         (paper: ~0.006 m/s ≈ 900 units)",
        wheel_boundary, units
    );

    // Impact check: the paper argues the surviving attacks are too small
    // to matter. Quantify: deviation a stealthy wheel bias can cause in
    // one second of open-loop motion.
    let per_second = wheel_boundary * 2.0 / 0.0885; // rad/s of phantom turn
    println!(
        "\nimpact bound: a stealthy wheel bias turns the robot at most {:.3} rad/s — \
         within the tracker's correction authority",
        per_second
    );
}
