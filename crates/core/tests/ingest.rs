//! The async ingestion front-end must be *bitwise* invisible when
//! frames arrive on time, and surgically isolating when they don't.
//!
//! [`FleetIngest`] sits between a jittery transport and
//! [`FleetEngine::step_batch`]: frames are offered per robot / per
//! sensor in any order, and a tick-boundary `swap` publishes complete
//! slots into the aligned batch. The contract pinned here (DESIGN.md
//! §14):
//!
//! * all frames on time ⇒ the report stream is identical, bit for bit,
//!   to direct `step_batch` calls — the front-end adds buffering, never
//!   arithmetic;
//! * one robot late past the deadline ⇒ only that robot's
//!   [`FleetEngine::result`] changes (`MarkMissing` errs, `HoldLast`
//!   steps on held values); every other robot's reports stay bitwise
//!   identical to the all-on-time run;
//! * the isolation holds on the SIMD slab path too — a missing robot is
//!   masked out of the batched kernels, not fed garbage lanes.

use roboads_core::{
    CoreError, DeadlinePolicy, DetectionReport, FleetEngine, FleetIngest, ModeSet, RoboAds,
    RoboAdsConfig, RobotInput, SlotState,
};
use roboads_linalg::Vector;
use roboads_models::{presets, RobotSystem};

const STEPS: usize = 16;

fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

/// Robot `robot`'s readings at step `k`: shared trajectory, per-robot
/// phase-shifted misbehavior (an IPS spoof) so robots are distinct.
fn robot_readings(system: &RobotSystem, x: &Vector, robot: usize, k: usize) -> Vec<Vector> {
    let mut readings = clean_readings(system, x);
    if k >= 6 + robot % 4 {
        readings[0][0] += 0.07;
    }
    readings
}

fn detector_with_lanes(lanes: usize) -> RoboAds {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let modes = ModeSet::one_reference_per_sensor(&system);
    RoboAds::new(
        system,
        RoboAdsConfig::paper_defaults().with_slab_lanes(lanes),
        x0,
        modes,
    )
    .unwrap()
}

fn detector() -> RoboAds {
    let system = presets::khepera_system();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    RoboAds::with_defaults(system, x0).unwrap()
}

/// Per-robot report sequences from a fleet stepped directly (dense).
fn direct_run(robots: usize) -> Vec<Vec<DetectionReport>> {
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut fleet = FleetEngine::new((0..robots).map(|_| detector()).collect(), 1);
    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut sequences: Vec<Vec<DetectionReport>> = vec![Vec::with_capacity(STEPS); robots];
    for k in 0..STEPS {
        x_true = system.dynamics().step(&x_true, &u);
        let all_readings: Vec<Vec<Vector>> = (0..robots)
            .map(|robot| robot_readings(&system, &x_true, robot, k))
            .collect();
        let inputs: Vec<RobotInput> = all_readings
            .iter()
            .map(|readings| RobotInput {
                u_prev: &u,
                readings,
            })
            .collect();
        fleet.step_batch(&inputs).unwrap();
        for (robot, seq) in sequences.iter_mut().enumerate() {
            seq.push(fleet.report(robot).clone());
        }
    }
    sequences
}

/// With every frame on time, a fleet driven through [`FleetIngest`]
/// produces reports bitwise identical to direct [`FleetEngine::
/// step_batch`] calls — even with frames offered out of order and
/// duplicates where the newest wins.
#[test]
fn on_time_ingest_is_bitwise_identical_to_direct_stepping() {
    const ROBOTS: usize = 5;
    let expected = direct_run(ROBOTS);
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut fleet = FleetEngine::new((0..ROBOTS).map(|_| detector()).collect(), 1);
    let mut ingest = FleetIngest::for_fleet(&fleet);
    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let stale = Vector::from_slice(&[9.9, 9.9]);
    for k in 0..STEPS {
        x_true = system.dynamics().step(&x_true, &u);
        for robot in (0..ROBOTS).rev() {
            let readings = robot_readings(&system, &x_true, robot, k);
            // A garbage frame first — overwritten below (newest wins).
            ingest.offer(robot, 0, &stale).unwrap();
            // Sensors in reverse order, command last: order-free.
            for (s, reading) in readings.iter().enumerate().rev() {
                ingest.offer(robot, s, reading).unwrap();
            }
            ingest.offer_input(robot, &u).unwrap();
        }
        let summary = ingest.swap();
        assert_eq!(summary.fresh, ROBOTS);
        assert_eq!(summary.tick, k as u64);
        let inputs: Vec<Option<RobotInput>> = (0..ROBOTS).map(|r| ingest.input(r)).collect();
        fleet.step_batch_masked(&inputs).unwrap();
        for (robot, robot_expected) in expected.iter().enumerate() {
            assert_eq!(
                fleet.report(robot),
                &robot_expected[k],
                "robot {robot} diverged at step {k}"
            );
        }
    }
}

/// Shared harness: run `ROBOTS` robots through ingest with robot 1's
/// frames withheld during `delay_window`, under `policy`. Returns the
/// per-robot report sequences.
fn delayed_run(
    robots: usize,
    policy: DeadlinePolicy,
    delay_window: std::ops::Range<usize>,
) -> (Vec<Vec<DetectionReport>>, Vec<Vec<Option<CoreError>>>) {
    const DELAYED: usize = 1;
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let mut fleet = FleetEngine::new((0..robots).map(|_| detector()).collect(), 1);
    let mut ingest = FleetIngest::for_fleet(&fleet);
    ingest.set_policy(DELAYED, policy);
    let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let mut sequences: Vec<Vec<DetectionReport>> = vec![Vec::with_capacity(STEPS); robots];
    let mut errors: Vec<Vec<Option<CoreError>>> = vec![Vec::with_capacity(STEPS); robots];
    for k in 0..STEPS {
        x_true = system.dynamics().step(&x_true, &u);
        for robot in 0..robots {
            if robot == DELAYED && delay_window.contains(&k) {
                continue; // this robot's frames never make the window
            }
            let readings = robot_readings(&system, &x_true, robot, k);
            ingest.offer_input(robot, &u).unwrap();
            for (s, reading) in readings.iter().enumerate() {
                ingest.offer(robot, s, reading).unwrap();
            }
        }
        let _ = ingest.step(&mut fleet);
        for robot in 0..robots {
            sequences[robot].push(fleet.report(robot).clone());
            errors[robot].push(fleet.result(robot).as_ref().err().cloned());
        }
    }
    (sequences, errors)
}

/// `MarkMissing`: the delayed robot's iterations are skipped and err
/// with [`CoreError::MissedDeadline`]; every other robot's full report
/// sequence stays bitwise identical to the all-on-time run.
#[test]
fn mark_missing_isolates_the_delayed_robot() {
    const ROBOTS: usize = 4;
    let expected = direct_run(ROBOTS);
    let (got, errors) = delayed_run(ROBOTS, DeadlinePolicy::MarkMissing, 5..8);
    for robot in [0, 2, 3] {
        assert_eq!(got[robot], expected[robot], "robot {robot} was perturbed");
        assert!(errors[robot].iter().all(Option::is_none));
    }
    for k in 0..STEPS {
        if (5..8).contains(&k) {
            assert!(
                matches!(errors[1][k], Some(CoreError::MissedDeadline { robot: 1 })),
                "delayed robot not flagged at step {k}"
            );
            // Its report is frozen at the last completed iteration.
            assert_eq!(got[1][k], got[1][4]);
        } else {
            assert!(errors[1][k].is_none(), "spurious error at step {k}");
        }
    }
    // Before and inside the window the delayed robot tracked the fleet;
    // after it, its skipped iterations make it genuinely different.
    assert_eq!(got[1][..5], expected[1][..5]);
    assert_ne!(got[1][STEPS - 1], expected[1][STEPS - 1]);
}

/// `HoldLast`: the delayed robot steps on the previous window's values
/// (explicitly, observable via [`SlotState::Held`]) and stays `Ok`;
/// neighbours are untouched.
#[test]
fn hold_last_steps_the_delayed_robot_on_held_values() {
    const ROBOTS: usize = 3;
    let expected = direct_run(ROBOTS);
    let (got, errors) = delayed_run(ROBOTS, DeadlinePolicy::HoldLast, 6..7);
    for robot in [0, 2] {
        assert_eq!(got[robot], expected[robot], "robot {robot} was perturbed");
    }
    // The held robot still completed every iteration without error...
    assert!(errors[1].iter().all(Option::is_none));
    // ...tracking the fleet before the hold, diverging after it (it
    // stepped on tick-5 readings at tick 6).
    assert_eq!(got[1][..6], expected[1][..6]);
    assert_ne!(got[1][6], expected[1][6]);

    // And a hold with no history yet resolves to Missing, not a step
    // on uninitialized buffers.
    let mut ingest = FleetIngest::new(&[1]).with_policy(DeadlinePolicy::HoldLast);
    ingest.swap();
    assert_eq!(ingest.state(0), SlotState::Missing);
    assert!(ingest.input(0).is_none());
}

/// The masked slab path: an 8-robot homogeneous fleet on the SIMD lanes
/// with one robot missing mid-run must produce, for every robot, the
/// exact reports of the scalar (`slab_lanes = 1`) fleet fed the same
/// masked batches — missing lanes are masked out of the batched
/// kernels, never run on stale lane data.
#[test]
fn masked_slab_path_matches_masked_scalar_path_bitwise() {
    const ROBOTS: usize = 8;
    const MISSING: usize = 3;
    let system = presets::khepera_system();
    let u = Vector::from_slice(&[0.06, 0.05]);
    let run = |lanes: usize| -> (Vec<Vec<DetectionReport>>, Vec<Vec<bool>>) {
        let mut fleet =
            FleetEngine::new((0..ROBOTS).map(|_| detector_with_lanes(lanes)).collect(), 1);
        let mut x_true = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut sequences: Vec<Vec<DetectionReport>> =
            (0..ROBOTS).map(|_| Vec::with_capacity(STEPS)).collect();
        let mut missed: Vec<Vec<bool>> = (0..ROBOTS).map(|_| Vec::with_capacity(STEPS)).collect();
        for k in 0..STEPS {
            x_true = system.dynamics().step(&x_true, &u);
            let all_readings: Vec<Vec<Vector>> = (0..ROBOTS)
                .map(|robot| robot_readings(&system, &x_true, robot, k))
                .collect();
            let inputs: Vec<Option<RobotInput>> = all_readings
                .iter()
                .enumerate()
                .map(|(robot, readings)| {
                    (robot != MISSING || !(4..7).contains(&k)).then_some(RobotInput {
                        u_prev: &u,
                        readings,
                    })
                })
                .collect();
            let _ = fleet.step_batch_masked(&inputs);
            for robot in 0..ROBOTS {
                sequences[robot].push(fleet.report(robot).clone());
                missed[robot].push(matches!(
                    fleet.result(robot),
                    Err(CoreError::MissedDeadline { .. })
                ));
            }
        }
        (sequences, missed)
    };
    let (scalar, scalar_missed) = run(1);
    for lanes in [4, 8] {
        let (slab, slab_missed) = run(lanes);
        assert_eq!(slab, scalar, "slab lanes {lanes} diverged under masking");
        assert_eq!(slab_missed, scalar_missed);
    }
    // Sanity: the mask actually fired, and only for the missing robot.
    assert!(scalar_missed[MISSING][4..7].iter().all(|&m| m));
    assert!(scalar_missed[MISSING][..4].iter().all(|&m| !m));
    for robot in (0..ROBOTS).filter(|&r| r != MISSING) {
        assert!(scalar_missed[robot].iter().all(|&m| !m));
    }
}

/// Late frames — stamped with an already-swapped tick — are rejected
/// and counted, never staged into the wrong window.
#[test]
fn late_stamped_frames_are_rejected_and_counted() {
    use roboads_core::obs::{RingBufferSink, Telemetry};
    use std::sync::Arc;
    let ring = Arc::new(RingBufferSink::new(256));
    let telemetry = Telemetry::new(ring.clone());
    let mut ingest = FleetIngest::new(&[2]);
    ingest.set_telemetry(telemetry.clone());
    let v = Vector::from_slice(&[1.0]);
    assert!(ingest.offer_stamped(0, 0, &v, 0).unwrap());
    ingest.swap();
    // Tick 0's window is gone; these frames are late.
    assert!(!ingest.offer_stamped(0, 1, &v, 0).unwrap());
    assert!(!ingest.offer_input_stamped(0, &v, 0).unwrap());
    assert_eq!(
        telemetry.metrics().counter_value("ingest.frames_rejected"),
        Some(2)
    );
    let rejections: Vec<_> = ring
        .events()
        .into_iter()
        .filter(|e| e.name == "ingest.frame_rejected")
        .collect();
    assert_eq!(rejections.len(), 2);
    // The late frame did not sneak into the new window's staging.
    ingest.offer_input_stamped(0, &v, 1).unwrap();
    ingest.offer_stamped(0, 0, &v, 1).unwrap();
    let summary = ingest.swap();
    assert_eq!(summary.missing, 1, "sensor 1 must still be missing");
}
