//! Dense linear algebra substrate for the RoboADS reproduction.
//!
//! The NUISE estimator at the heart of RoboADS (DSN 2018) manipulates small
//! dense matrices: state covariances, measurement Jacobians, and gain
//! matrices of dimension at most ~10×10. Beyond the usual solve/inverse
//! operations it specifically needs the **Moore–Penrose pseudo-inverse**,
//! the **pseudo-determinant** and the **rank** of (possibly singular)
//! innovation covariance matrices for its mode-likelihood computation
//! (Algorithm 2, lines 19–20 of the paper).
//!
//! This crate provides exactly that tool set, with no external numeric
//! dependencies:
//!
//! * [`Matrix`] / [`Vector`] — row-major dense storage with the standard
//!   operator overloads,
//! * [`Lu`] — LU decomposition with partial pivoting (solve, inverse,
//!   determinant),
//! * [`Cholesky`] — for symmetric positive-definite matrices (sampling,
//!   log-determinants),
//! * [`SymmetricEigen`] — cyclic Jacobi eigendecomposition of symmetric
//!   matrices, from which [`Matrix::pseudo_inverse`],
//!   [`Matrix::pseudo_determinant`] and [`Matrix::rank`] are derived.
//!
//! # Example
//!
//! ```
//! use roboads_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), roboads_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let x = a.lu()?.solve(&b)?;
//! let residual = (&a * &x - b).norm();
//! assert!(residual < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod eigen;
mod error;
pub mod health;
mod inplace;
mod lu;
mod matrix;
mod ops;
mod pseudo;
mod qr;
pub mod slab;
mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use inplace::{EigenWorkspace, LuWorkspace};
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use slab::{EigenSlabWorkspace, LuSlabWorkspace, MatrixSlab, VectorSlab};
pub use vector::Vector;

/// Crate-wide result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
