//! Hand-rolled JSON encoding and decoding.
//!
//! The observability layer exports JSONL records and summary documents
//! without any external serialization crate (the tier-1 build must
//! resolve offline). Only what the sinks and the incident-capsule
//! format need is implemented: object assembly, string escaping per
//! RFC 8259, `f64` formatting that maps non-finite values to `null`
//! (JSON has no NaN/Infinity), a lossless `f64` variant for records
//! that must round-trip bitwise ([`write_f64_lossless`]), and a small
//! recursive-descent parser ([`parse`]) for reading capsules back.

/// Escapes `s` into `buf` as a JSON string body (no surrounding quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Writes `v` into `buf` as a JSON number, or `null` if non-finite.
pub fn write_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps round-trip precision ("0.1", not "0.100000...")
        // and always includes a decimal point or exponent for floats.
        buf.push_str(&format!("{v:?}"));
    } else {
        buf.push_str("null");
    }
}

/// Writes `v` into `buf` so that parsing the output recovers `v`'s
/// exact bit pattern (modulo NaN payloads, which collapse to the
/// canonical quiet NaN).
///
/// Finite values — including `-0.0` and subnormals down to `5e-324` —
/// use the same shortest round-trip formatting as [`write_f64`]; the
/// non-finite values JSON cannot express as numbers are written as the
/// strings `"NaN"`, `"Infinity"` and `"-Infinity"`, which
/// [`JsonValue::as_lossless_f64`] maps back. Incident capsules depend
/// on this: a replayed detector must see bitwise-identical inputs.
pub fn write_f64_lossless(buf: &mut String, v: f64) {
    if v.is_finite() {
        buf.push_str(&format!("{v:?}"));
    } else if v.is_nan() {
        buf.push_str("\"NaN\"");
    } else if v > 0.0 {
        buf.push_str("\"Infinity\"");
    } else {
        buf.push_str("\"-Infinity\"");
    }
}

/// Incremental JSON object builder.
///
/// ```
/// use roboads_obs::json::JsonObject;
///
/// let mut o = JsonObject::new();
/// o.field_str("name", "engine.step");
/// o.field_u64("count", 3);
/// o.field_f64("p50", 0.5);
/// assert_eq!(o.finish(), r#"{"name":"engine.step","count":3,"p50":0.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, v: &str) {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, name: &str, v: f64) {
        self.key(name);
        write_f64(&mut self.buf, v);
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, name: &str, v: i64) {
        self.key(name);
        self.buf.push_str(&v.to_string());
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Adds a pre-encoded JSON value verbatim (nested object/array).
    pub fn field_raw(&mut self, name: &str, json: &str) {
        self.key(name);
        self.buf.push_str(json);
    }

    /// Closes the object and returns the encoded string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Encodes a sequence of pre-encoded JSON values as an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// A parsed JSON value.
///
/// Object fields keep their document order (no map type, no hashing) —
/// enough for the capsule reader, which looks fields up by name.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; `str::parse` is correctly
    /// rounded, so numbers written by [`write_f64`] round-trip exactly).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as written by [`write_f64_lossless`]: a number, or one
    /// of the non-finite marker strings.
    pub fn as_lossless_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The number as a `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64).then_some(v as u64)
    }

    /// The boolean value, `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, `None` for non-objects.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and a static reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document.
///
/// # Errors
///
/// [`JsonError`] on malformed input, including trailing non-whitespace.
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { s, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'s> {
    s: &'s str,
    i: usize,
}

impl<'s> Parser<'s> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError { at: self.i, reason }
    }

    fn peek(&self) -> Option<u8> {
        self.s.as_bytes().get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, lit: &str, reason: &'static str) -> Result<(), JsonError> {
        if self.s[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.eat("null", "expected null").map(|()| JsonValue::Null),
            b't' => self
                .eat("true", "expected true")
                .map(|()| JsonValue::Bool(true)),
            b'f' => self
                .eat("false", "expected false")
                .map(|()| JsonValue::Bool(false)),
            b'"' => self.string().map(JsonValue::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.i += 1;
        }
        self.s[start..self.i]
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat("\"", "expected string")?;
        let mut out = String::new();
        let bytes = self.s.as_bytes();
        loop {
            let chunk_start = self.i;
            // Copy the run of plain characters in one slice push.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.i += 1;
            }
            out.push_str(&self.s[chunk_start..self.i]);
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(_) => {
                    // Escape sequence.
                    self.i += 1;
                    let esc = bytes
                        .get(self.i)
                        .copied()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.eat("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .s
            .get(self.i..self.i + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        self.i += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("malformed \\u escape"))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat("[", "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat("{", "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":", "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_controls_and_unicode() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}π");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001π");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.field_f64("nan", f64::NAN);
        o.field_f64("inf", f64::INFINITY);
        o.field_f64("x", 1.5);
        assert_eq!(o.finish(), r#"{"nan":null,"inf":null,"x":1.5}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let inner = {
            let mut o = JsonObject::new();
            o.field_u64("k", 1);
            o.finish()
        };
        let mut outer = JsonObject::new();
        outer.field_raw("rows", &array_of([inner]));
        assert_eq!(outer.finish(), r#"{"rows":[{"k":1}]}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn escape_covers_every_control_character() {
        for c in 0u32..0x20 {
            let c = char::from_u32(c).unwrap();
            let mut s = String::new();
            escape_into(&mut s, &c.to_string());
            let parsed = parse(&format!("\"{s}\"")).unwrap();
            assert_eq!(parsed.as_str().unwrap(), c.to_string(), "control {c:?}");
        }
    }

    #[test]
    fn write_f64_round_trips_finite_extremes() {
        // Negative zero, subnormal min, f64::MAX, and a classic
        // non-representable decimal must all survive write -> parse bitwise.
        for v in [
            -0.0_f64,
            5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
            0.1,
            1.0 / 3.0,
            -1.7976931348623157e308,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v:?} via {s}");
        }
    }

    #[test]
    fn write_f64_lossless_round_trips_non_finite() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 5e-324] {
            let mut s = String::new();
            write_f64_lossless(&mut s, v);
            let back = parse(&s).unwrap().as_lossless_f64().unwrap();
            if v.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), v.to_bits(), "value {v:?} via {s}");
            }
        }
    }

    #[test]
    fn parser_handles_nesting_escapes_and_lookup() {
        let doc =
            r#" {"a": [1, -2.5e3, null, true], "s": "x\n\u00e9\ud83d\ude00", "o": {"k": false}} "#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2], JsonValue::Null);
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\u{e9}\u{1F600}"));
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "nul",
            "1 2",
            "{\"k\" 1}",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_round_trips_json_object_output() {
        let mut o = JsonObject::new();
        o.field_str("name", "robot \"3\"\n");
        o.field_f64("v", -0.0);
        o.field_bool("ok", true);
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("robot \"3\"\n"));
        assert_eq!(
            v.get("v").unwrap().as_f64().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }
}
