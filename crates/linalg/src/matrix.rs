use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{Cholesky, LinalgError, Lu, Result, SymmetricEigen, Vector};

/// A dense, row-major, `f64` matrix.
///
/// `Matrix` is the workhorse type of the RoboADS estimator: covariance
/// matrices, Jacobians and gains are all `Matrix` values. The type favors
/// explicit, checked constructors ([`Matrix::from_rows`]) and panicking
/// element access through `m[(i, j)]`, mirroring the standard library's
/// slice-indexing contract.
///
/// # Example
///
/// ```
/// use roboads_linalg::Matrix;
///
/// # fn main() -> Result<(), roboads_linalg::LinalgError> {
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// ```
    /// use roboads_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!((z.rows(), z.cols()), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// use roboads_linalg::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row set and
    /// [`LinalgError::DimensionMismatch`] if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (1, cols),
                    rhs: (1, rows[i].len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(i, j)` for every entry.
    ///
    /// ```
    /// use roboads_linalg::Matrix;
    /// let hilbert = Matrix::from_fn(3, 3, |i, j| 1.0 / (i + j + 1) as f64);
    /// assert_eq!(hilbert[(0, 0)], 1.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    ///
    /// ```
    /// use roboads_linalg::Matrix;
    /// let d = Matrix::from_diagonal(&[1.0, 2.0]);
    /// assert_eq!(d[(1, 1)], 2.0);
    /// assert_eq!(d[(0, 1)], 0.0);
    /// ```
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Creates a `1 × n` row matrix from a slice.
    pub fn row_from_slice(row: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    ///
    /// Rows are contiguous, so `&mut m.as_mut_slice()[r * cols..]` is a
    /// valid in-place view of row `r` — the allocation-free hot path
    /// writes Jacobian blocks through this.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Extracts the underlying row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Returns row `i` as a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> Vector {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        Vector::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Returns column `j` as a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vector {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Returns the main diagonal as a [`Vector`].
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Sum of the diagonal entries.
    ///
    /// ```
    /// use roboads_linalg::Matrix;
    /// assert_eq!(Matrix::identity(4).trace(), 4.0);
    /// ```
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Returns the sub-matrix of shape `(nrows, ncols)` starting at
    /// `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block extends past the matrix bounds.
    pub fn block(&self, row: usize, col: usize, nrows: usize, ncols: usize) -> Matrix {
        assert!(
            row + nrows <= self.rows && col + ncols <= self.cols,
            "block ({row},{col})+{nrows}x{ncols} out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        Matrix::from_fn(nrows, ncols, |i, j| self[(row + i, col + j)])
    }

    /// Writes the sub-matrix starting at `(row, col)` into `out`; the
    /// block shape is `out.shape()`. Bitwise identical to
    /// [`Matrix::block`] without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the requested block extends past the matrix bounds.
    pub fn block_into(&self, row: usize, col: usize, out: &mut Matrix) {
        let (nrows, ncols) = (out.rows, out.cols);
        assert!(
            row + nrows <= self.rows && col + ncols <= self.cols,
            "block ({row},{col})+{nrows}x{ncols} out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        for i in 0..nrows {
            for j in 0..ncols {
                out[(i, j)] = self[(row + i, col + j)];
            }
        }
    }

    /// Overwrites `self` with `src`, resizing as needed. Unlike
    /// [`Matrix::copy_from`] the shapes may differ; existing capacity
    /// is reused, so repeated assignment between same-or-smaller
    /// matrices performs no heap allocation after warm-up.
    pub fn assign(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Writes `other` into this matrix with its top-left corner at
    /// `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `other` does not fit.
    pub fn set_block(&mut self, row: usize, col: usize, other: &Matrix) {
        assert!(
            row + other.rows <= self.rows && col + other.cols <= self.cols,
            "block ({row},{col})+{}x{} out of bounds for {}x{}",
            other.rows,
            other.cols,
            self.rows,
            self.cols
        );
        for i in 0..other.rows {
            for j in 0..other.cols {
                self[(row + i, col + j)] = other[(i, j)];
            }
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Stacks a sequence of matrices vertically.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `blocks` is empty and
    /// [`LinalgError::DimensionMismatch`] when column counts differ.
    pub fn vstack_all<'a>(blocks: impl IntoIterator<Item = &'a Matrix>) -> Result<Matrix> {
        let mut iter = blocks.into_iter();
        let first = iter.next().ok_or(LinalgError::Empty)?.clone();
        iter.try_fold(first, |acc, b| acc.vstack(b))
    }

    /// Places `self` to the left of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut m = Matrix::zeros(self.rows, self.cols + other.cols);
        m.set_block(0, 0, self);
        m.set_block(0, self.cols, other);
        Ok(m)
    }

    /// Builds a block-diagonal matrix from the given square or rectangular
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `blocks` is empty.
    pub fn block_diagonal<'a>(blocks: impl IntoIterator<Item = &'a Matrix>) -> Result<Matrix> {
        let blocks: Vec<&Matrix> = blocks.into_iter().collect();
        if blocks.is_empty() {
            return Err(LinalgError::Empty);
        }
        let rows = blocks.iter().map(|b| b.rows).sum();
        let cols = blocks.iter().map(|b| b.cols).sum();
        let mut m = Matrix::zeros(rows, cols);
        let (mut r, mut c) = (0, 0);
        for b in blocks {
            m.set_block(r, c, b);
            r += b.rows;
            c += b.cols;
        }
        Ok(m)
    }

    /// Returns `(self + selfᵀ) / 2`, the symmetric part of the matrix.
    ///
    /// Covariance propagation accumulates tiny asymmetries in floating
    /// point; the NUISE implementation re-symmetrizes after every update.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn symmetrized(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        Ok(Matrix::from_fn(self.rows, self.cols, |i, j| {
            0.5 * (self[(i, j)] + self[(j, i)])
        }))
    }

    /// Whether all entries are finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Computes the LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn lu(&self) -> Result<Lu> {
        Lu::new(self)
    }

    /// Computes the Cholesky decomposition `A = L Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if the matrix is not
    /// numerically SPD, and [`LinalgError::NotSquare`] for non-square input.
    pub fn cholesky(&self) -> Result<Cholesky> {
        Cholesky::new(self)
    }

    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input or
    /// [`LinalgError::NoConvergence`] if Jacobi sweeps fail to converge.
    pub fn symmetric_eigen(&self) -> Result<SymmetricEigen> {
        SymmetricEigen::new(self)
    }

    /// Computes the inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the matrix is singular and
    /// [`LinalgError::NotSquare`] for non-square input.
    pub fn inverse(&self) -> Result<Matrix> {
        self.lu()?.inverse()
    }

    /// Determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn determinant(&self) -> Result<f64> {
        Ok(self.lu()?.determinant())
    }

    /// Computes `self * other * selfᵀ` — the congruence transform used in
    /// every covariance propagation step.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `other` is not square
    /// with side `self.cols()`.
    pub fn congruence(&self, other: &Matrix) -> Result<Matrix> {
        if other.rows != self.cols || other.cols != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "congruence",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self * &(other * &self.transpose()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn rows_columns_diagonal() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(m.column(0).as_slice(), &[1.0, 3.0]);
        assert_eq!(m.diagonal().as_slice(), &[1.0, 4.0]);
        assert_eq!(m.trace(), 5.0);
    }

    #[test]
    fn block_and_set_block() {
        let mut m = Matrix::zeros(3, 3);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        m.set_block(1, 1, &b);
        assert_eq!(m[(2, 2)], 4.0);
        assert_eq!(m.block(1, 1, 2, 2), b);
    }

    #[test]
    fn block_into_and_assign_match_allocating() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let mut out = Matrix::zeros(2, 3);
        m.block_into(1, 1, &mut out);
        assert_eq!(out, m.block(1, 1, 2, 3));

        let mut dst = Matrix::zeros(1, 1);
        dst.assign(&m);
        assert_eq!(dst, m);
        dst.assign(&out);
        assert_eq!(dst, out);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_into_out_of_bounds_panics() {
        let mut out = Matrix::zeros(2, 2);
        Matrix::zeros(2, 2).block_into(1, 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_out_of_bounds_panics() {
        Matrix::zeros(2, 2).block(1, 1, 2, 2);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v[(1, 0)], 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h[(0, 3)], 4.0);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn block_diagonal_assembles() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[5.0]]).unwrap();
        let d = Matrix::block_diagonal([&a, &b]).unwrap();
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d[(2, 2)], 5.0);
        assert_eq!(d[(2, 0)], 0.0);
    }

    #[test]
    fn symmetrized_fixes_asymmetry() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]).unwrap();
        let s = m.symmetrized().unwrap();
        assert_eq!(s[(0, 1)], 3.0);
        assert_eq!(s[(1, 0)], 3.0);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::identity(2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn congruence_matches_manual_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let p = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let c = a.congruence(&p).unwrap();
        let manual = &(&a * &p) * &a.transpose();
        assert_eq!(c, manual);
        assert!(a.congruence(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn serde_round_trip_shape_preserved() {
        // serde support is exercised via the serde_test-free route: the
        // Serialize/Deserialize derives compile and Clone/PartialEq hold.
        let m = Matrix::from_diagonal(&[1.0, 2.0]);
        let copy = m.clone();
        assert_eq!(m, copy);
    }
}
