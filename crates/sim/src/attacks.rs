//! Bus-level attack library: Table I's packet-injection surface as
//! composable monitor-seam attacks.
//!
//! The misbehavior injector ([`crate::Misbehavior`]) corrupts data
//! *inside* a sensing or actuation workflow; this module attacks the
//! [`Bus`] itself — the seam between workflow publish and monitor
//! decode, where the Jeep/Ford-style packet injections the paper cites
//! actually live. The taxonomy ports SV1DUR's MIL-STD-1553 attack
//! vectors onto the CAN-like frame bus:
//!
//! * [`MitmRewrite`] — in-place payload rewriting (AV1): ids, sources
//!   and stamps untouched, the forensic log looks authentic.
//! * [`FakeFrameInject`] — forged frames published under a sensing
//!   workflow's arbitration id (AV3): the consumer-cache "latest wins"
//!   rule makes the forgery displace the authentic reading.
//! * [`DataCorruption`] — payload trashing (AV4): words replaced with
//!   garbage of a parameterized scale, sprinkled with non-finite and
//!   extreme fixed-point values (the encode-saturation regression
//!   surface).
//! * [`CommandInvalidation`] — the planner's [`COMMAND_ID`] frame is
//!   rewritten (AV5), so the monitor's view of the planned command
//!   diverges from what the actuation workflow executed.
//! * [`FrameTrash`] — frames destroyed in flight (AV6): the fresh view
//!   for the target id goes empty and the consumer must fall back to
//!   its hold-last / missing policy.
//! * [`ReplayDesync`] — desynchronization by replay (AV2/AV8): the
//!   fresh frame is trashed and a recorded stale frame is re-delivered
//!   carrying its *original* tick stamp. (Pre-stamping a future tick —
//!   the other desync primitive — is dead: [`Bus::publish_stamped`]
//!   clamps future stamps and counts the attempt.)
//!
//! Every attack implements [`BusAttack`], is parameterized by
//! magnitude, onset and duration, and declares the workflow it
//! effectively corrupts ([`BusAttack::target`]) so campaign harnesses
//! ([`crate::campaign`]) can derive ground truth without knowing the
//! attack internals. Attacks compose: the builders apply them in
//! registration order on the same bus each tick.

use roboads_stats::{Rng, StdRng};

use crate::bus::{Bus, Frame, COMMAND_ID, SENSOR_ID_BASE};
use crate::misbehavior::Target;

/// Seed-stream separator for attacker randomness: the attack RNG must
/// not share a stream with the plant/sensor noise, or adding an attack
/// would perturb the clean trajectory it is compared against.
pub(crate) const ATTACK_STREAM: u64 = 0x4154_5441_434b_5eed;

/// When an attack is live: `[onset, onset + duration)` in control
/// iterations, unbounded when `duration` is `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackWindow {
    /// First attacked iteration (inclusive).
    pub onset: usize,
    /// Attacked iterations; `None` = until the end of the run.
    pub duration: Option<usize>,
}

impl AttackWindow {
    /// Creates a window starting at `onset` for `duration` iterations.
    pub fn new(onset: usize, duration: Option<usize>) -> Self {
        AttackWindow { onset, duration }
    }

    /// Whether the window covers iteration `k`.
    pub fn active(&self, k: usize) -> bool {
        k >= self.onset && self.duration.is_none_or(|d| k < self.onset + d)
    }

    /// End of the window (exclusive), if bounded.
    pub fn end(&self) -> Option<usize> {
        self.duration.map(|d| self.onset + d)
    }
}

/// A bus-level attack applied at the monitor seam: once per control
/// tick, after every workflow published its frames and before the
/// monitor decodes them.
///
/// `apply` is called on **every** tick, active or not, so stateful
/// attacks (replay recorders) can observe the bus while dormant; each
/// attack gates its own effect on its window.
pub trait BusAttack: Send {
    /// Short attack-type label, e.g. `"mitm-rewrite"`.
    fn name(&self) -> &'static str;

    /// The workflow this attack effectively corrupts, from the
    /// monitor's point of view — the campaign harness labels ground
    /// truth with it.
    fn target(&self) -> Target;

    /// The activation window.
    fn window(&self) -> AttackWindow;

    /// Perturbs the bus at iteration `k`. `rng` is the attacker's own
    /// seeded stream, distinct from every plant/sensor noise stream.
    fn apply(&mut self, k: usize, bus: &mut Bus, rng: &mut StdRng);
}

fn sensor_id(sensor: usize) -> u16 {
    SENSOR_ID_BASE + sensor as u16
}

/// Man-in-the-middle payload rewrite: every frame carrying the target
/// sensor's id has `magnitude` added to one reading component, in
/// place. The forensic log still shows the authentic source and stamps.
#[derive(Debug, Clone)]
pub struct MitmRewrite {
    sensor: usize,
    component: usize,
    magnitude: f64,
    window: AttackWindow,
}

impl MitmRewrite {
    /// Rewrites `sensor`'s frames, shifting `component` by `magnitude`.
    pub fn new(sensor: usize, component: usize, magnitude: f64, window: AttackWindow) -> Self {
        MitmRewrite {
            sensor,
            component,
            magnitude,
            window,
        }
    }
}

impl BusAttack for MitmRewrite {
    fn name(&self) -> &'static str {
        "mitm-rewrite"
    }

    fn target(&self) -> Target {
        Target::Sensor(self.sensor)
    }

    fn window(&self) -> AttackWindow {
        self.window
    }

    fn apply(&mut self, k: usize, bus: &mut Bus, _rng: &mut StdRng) {
        if !self.window.active(k) {
            return;
        }
        let id = sensor_id(self.sensor);
        for frame in bus.frames_mut() {
            if frame.id != id {
                continue;
            }
            let mut v = frame.decode();
            if self.component < v.len() {
                v[self.component] += self.magnitude;
            }
            frame.set_payload_from(&v);
        }
    }
}

/// Forged-frame injection: after the authentic reading is published, a
/// frame under the same arbitration id arrives from `"attacker"`
/// carrying the authentic value shifted by `magnitude` — and the
/// consumer-cache "latest wins" rule serves the forgery.
#[derive(Debug, Clone)]
pub struct FakeFrameInject {
    sensor: usize,
    component: usize,
    magnitude: f64,
    window: AttackWindow,
}

impl FakeFrameInject {
    /// Forges frames for `sensor`, shifting `component` by `magnitude`.
    pub fn new(sensor: usize, component: usize, magnitude: f64, window: AttackWindow) -> Self {
        FakeFrameInject {
            sensor,
            component,
            magnitude,
            window,
        }
    }
}

impl BusAttack for FakeFrameInject {
    fn name(&self) -> &'static str {
        "fake-frame-inject"
    }

    fn target(&self) -> Target {
        Target::Sensor(self.sensor)
    }

    fn window(&self) -> AttackWindow {
        self.window
    }

    fn apply(&mut self, k: usize, bus: &mut Bus, _rng: &mut StdRng) {
        if !self.window.active(k) {
            return;
        }
        let id = sensor_id(self.sensor);
        let Some(authentic) = bus.latest_fresh(id) else {
            return; // nothing published to base the forgery on
        };
        let mut v = authentic.decode();
        if self.component < v.len() {
            v[self.component] += self.magnitude;
        }
        bus.publish(Frame::encode(id, "attacker", &v));
    }
}

/// Data corruption: the target sensor's payload words are trashed with
/// uniform garbage of scale `magnitude` (units), one component per
/// frame occasionally replaced by a non-finite value that the encoder
/// saturates to an extreme fixed-point word — the regression surface of
/// the old `Frame::encode` panic.
#[derive(Debug, Clone)]
pub struct DataCorruption {
    sensor: usize,
    magnitude: f64,
    window: AttackWindow,
}

impl DataCorruption {
    /// Trashes `sensor`'s payloads with `magnitude`-scale garbage.
    pub fn new(sensor: usize, magnitude: f64, window: AttackWindow) -> Self {
        DataCorruption {
            sensor,
            magnitude,
            window,
        }
    }
}

impl BusAttack for DataCorruption {
    fn name(&self) -> &'static str {
        "data-corruption"
    }

    fn target(&self) -> Target {
        Target::Sensor(self.sensor)
    }

    fn window(&self) -> AttackWindow {
        self.window
    }

    fn apply(&mut self, k: usize, bus: &mut Bus, rng: &mut StdRng) {
        if !self.window.active(k) {
            return;
        }
        let id = sensor_id(self.sensor);
        for frame in bus.frames_mut() {
            if frame.id != id {
                continue;
            }
            let mut v = frame.decode();
            for i in 0..v.len() {
                let r = rng.random();
                v[i] = if r < 0.125 {
                    // A corrupted producer can emit anything, including
                    // the values JSON and fixed-point cannot express;
                    // the encoder must saturate, never panic.
                    f64::NAN
                } else if r < 0.25 {
                    f64::INFINITY * if rng.random() < 0.5 { 1.0 } else { -1.0 }
                } else {
                    v[i] + (2.0 * rng.random() - 1.0) * self.magnitude
                };
            }
            frame.set_payload_from(&v);
        }
    }
}

/// Command invalidation: the planner's [`COMMAND_ID`] frame is
/// rewritten with an alternating ±`magnitude` bias, so the command the
/// monitor conditions on is no longer the command the actuation
/// workflow executed — the Jeep-style spoof of the *control* traffic
/// rather than the sensor traffic.
#[derive(Debug, Clone)]
pub struct CommandInvalidation {
    magnitude: f64,
    window: AttackWindow,
}

impl CommandInvalidation {
    /// Rewrites command frames with an alternating ±`magnitude` bias.
    pub fn new(magnitude: f64, window: AttackWindow) -> Self {
        CommandInvalidation { magnitude, window }
    }
}

impl BusAttack for CommandInvalidation {
    fn name(&self) -> &'static str {
        "command-invalidation"
    }

    fn target(&self) -> Target {
        Target::Actuators
    }

    fn window(&self) -> AttackWindow {
        self.window
    }

    fn apply(&mut self, k: usize, bus: &mut Bus, _rng: &mut StdRng) {
        if !self.window.active(k) {
            return;
        }
        for frame in bus.frames_mut() {
            if frame.id != COMMAND_ID {
                continue;
            }
            let mut v = frame.decode();
            for i in 0..v.len() {
                v[i] += if i % 2 == 0 {
                    -self.magnitude
                } else {
                    self.magnitude
                };
            }
            frame.set_payload_from(&v);
        }
    }
}

/// What a [`FrameTrash`] / [`ReplayDesync`] attack destroys or replays:
/// one sensing workflow's frames, or the planner's command frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTarget {
    /// A sensing workflow, by sensor suite index.
    Sensor(usize),
    /// The planned-command frame.
    Command,
}

impl FrameTarget {
    fn id(&self) -> u16 {
        match self {
            FrameTarget::Sensor(s) => sensor_id(*s),
            FrameTarget::Command => COMMAND_ID,
        }
    }

    fn target(&self) -> Target {
        match self {
            FrameTarget::Sensor(s) => Target::Sensor(*s),
            FrameTarget::Command => Target::Actuators,
        }
    }
}

/// Frame trashing: every frame carrying the target id is destroyed in
/// flight, so the monitor's fresh view goes empty and its hold-last /
/// missing policy decides what the detector sees.
#[derive(Debug, Clone)]
pub struct FrameTrash {
    what: FrameTarget,
    window: AttackWindow,
}

impl FrameTrash {
    /// Destroys `what`'s frames while active.
    pub fn new(what: FrameTarget, window: AttackWindow) -> Self {
        FrameTrash { what, window }
    }
}

impl BusAttack for FrameTrash {
    fn name(&self) -> &'static str {
        "frame-trash"
    }

    fn target(&self) -> Target {
        self.what.target()
    }

    fn window(&self) -> AttackWindow {
        self.window
    }

    fn apply(&mut self, k: usize, bus: &mut Bus, _rng: &mut StdRng) {
        if !self.window.active(k) {
            return;
        }
        let id = self.what.id();
        bus.retain(|f| f.id != id);
    }
}

/// Desynchronization by replay: the attack records the target id's
/// authentic frame every tick; while active it trashes the fresh frame
/// and re-delivers the recording from `lag` ticks ago **with its
/// original tick stamp** — a stamp-checking consumer sees a stale
/// frame (and holds or misses), a stamp-blind consumer silently
/// consumes `lag`-tick-old data.
#[derive(Debug, Clone)]
pub struct ReplayDesync {
    what: FrameTarget,
    lag: usize,
    window: AttackWindow,
    /// Ring of the last `lag + 1` authentic frames for the target id.
    history: std::collections::VecDeque<Frame>,
}

impl ReplayDesync {
    /// Replays `what`'s frames from `lag` ticks ago (minimum 1).
    pub fn new(what: FrameTarget, lag: usize, window: AttackWindow) -> Self {
        ReplayDesync {
            what,
            lag: lag.max(1),
            window,
            history: std::collections::VecDeque::new(),
        }
    }
}

impl BusAttack for ReplayDesync {
    fn name(&self) -> &'static str {
        "replay-desync"
    }

    fn target(&self) -> Target {
        self.what.target()
    }

    fn window(&self) -> AttackWindow {
        self.window
    }

    fn apply(&mut self, k: usize, bus: &mut Bus, _rng: &mut StdRng) {
        let id = self.what.id();
        // Record the authentic frame first — even while dormant, and
        // from *before* this tick's trashing, so the recording is real.
        if let Some(fresh) = bus.latest_fresh(id) {
            self.history.push_back(fresh.clone());
            while self.history.len() > self.lag + 1 {
                self.history.pop_front();
            }
        }
        if !self.window.active(k) {
            return;
        }
        bus.retain(|f| f.id != id);
        // Re-deliver the oldest recording ≤ `lag` ticks old, original
        // stamp preserved (a future stamp would be clamped and counted
        // by the bus — that desync primitive is dead).
        if let Some(stale) = self.history.front() {
            let stamp = stale.tick;
            bus.publish_stamped(stale.clone(), stamp);
        }
    }
}

/// Which attack a campaign grid point instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// [`MitmRewrite`].
    MitmRewrite,
    /// [`FakeFrameInject`].
    FakeFrameInject,
    /// [`DataCorruption`].
    DataCorruption,
    /// [`CommandInvalidation`].
    CommandInvalidation,
    /// [`FrameTrash`].
    FrameTrash,
    /// [`ReplayDesync`].
    ReplayDesync,
}

impl AttackKind {
    /// All six attack types, in taxonomy order.
    pub const ALL: [AttackKind; 6] = [
        AttackKind::MitmRewrite,
        AttackKind::FakeFrameInject,
        AttackKind::DataCorruption,
        AttackKind::CommandInvalidation,
        AttackKind::FrameTrash,
        AttackKind::ReplayDesync,
    ];

    /// The attack-type label used in reports and `BENCH_detect.json`.
    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::MitmRewrite => "mitm-rewrite",
            AttackKind::FakeFrameInject => "fake-frame-inject",
            AttackKind::DataCorruption => "data-corruption",
            AttackKind::CommandInvalidation => "command-invalidation",
            AttackKind::FrameTrash => "frame-trash",
            AttackKind::ReplayDesync => "replay-desync",
        }
    }
}

/// A buildable attack description: the campaign grid's cell, and the
/// clonable form the simulation builders store (the [`BusAttack`]
/// instances themselves are stateful and built per run).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSpec {
    /// Which attack to instantiate.
    pub kind: AttackKind,
    /// Target sensing workflow (ignored by
    /// [`AttackKind::CommandInvalidation`]).
    pub sensor: usize,
    /// Reading component the shift-style attacks perturb.
    pub component: usize,
    /// Attack magnitude, in the target signal's units.
    /// [`AttackKind::ReplayDesync`] reads `magnitude.round().max(1)` as
    /// its replay lag in ticks; [`AttackKind::FrameTrash`] ignores it.
    pub magnitude: f64,
    /// First attacked iteration.
    pub onset: usize,
    /// Attacked iterations; `None` = until the end of the run.
    pub duration: Option<usize>,
}

impl AttackSpec {
    /// A spec with component 0 and the given shape.
    pub fn new(
        kind: AttackKind,
        sensor: usize,
        magnitude: f64,
        onset: usize,
        duration: Option<usize>,
    ) -> Self {
        AttackSpec {
            kind,
            sensor,
            component: 0,
            magnitude,
            onset,
            duration,
        }
    }

    /// The activation window.
    pub fn window(&self) -> AttackWindow {
        AttackWindow::new(self.onset, self.duration)
    }

    /// The workflow the built attack will corrupt (campaign ground
    /// truth).
    pub fn target(&self) -> Target {
        match self.kind {
            AttackKind::CommandInvalidation => Target::Actuators,
            _ => Target::Sensor(self.sensor),
        }
    }

    /// Instantiates the attack.
    pub fn build(&self) -> Box<dyn BusAttack> {
        let w = self.window();
        match self.kind {
            AttackKind::MitmRewrite => Box::new(MitmRewrite::new(
                self.sensor,
                self.component,
                self.magnitude,
                w,
            )),
            AttackKind::FakeFrameInject => Box::new(FakeFrameInject::new(
                self.sensor,
                self.component,
                self.magnitude,
                w,
            )),
            AttackKind::DataCorruption => {
                Box::new(DataCorruption::new(self.sensor, self.magnitude, w))
            }
            AttackKind::CommandInvalidation => {
                Box::new(CommandInvalidation::new(self.magnitude, w))
            }
            AttackKind::FrameTrash => {
                Box::new(FrameTrash::new(FrameTarget::Sensor(self.sensor), w))
            }
            AttackKind::ReplayDesync => Box::new(ReplayDesync::new(
                FrameTarget::Sensor(self.sensor),
                self.magnitude.round().max(1.0) as usize,
                w,
            )),
        }
    }
}

/// Builds the attack instances for one run plus the attacker's own
/// seeded RNG stream (separated from the plant/sensor streams so an
/// attack never perturbs the clean trajectory it is compared against).
pub(crate) fn build_attacks(specs: &[AttackSpec], seed: u64) -> (Vec<Box<dyn BusAttack>>, StdRng) {
    use roboads_stats::SeedableRng;
    (
        specs.iter().map(|s| s.build()).collect(),
        StdRng::seed_from_u64(seed ^ ATTACK_STREAM),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use roboads_linalg::Vector;
    use roboads_stats::SeedableRng;

    fn bus_with_frames() -> Bus {
        let mut bus = Bus::new();
        bus.begin_tick(5);
        bus.publish(Frame::encode(
            COMMAND_ID,
            "planner",
            &Vector::from_slice(&[0.06, 0.05]),
        ));
        bus.publish(Frame::encode(
            SENSOR_ID_BASE,
            "ips",
            &Vector::from_slice(&[1.0, 2.0, 0.3]),
        ));
        bus
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn window_semantics() {
        let w = AttackWindow::new(10, Some(5));
        assert!(!w.active(9));
        assert!(w.active(10));
        assert!(w.active(14));
        assert!(!w.active(15));
        assert_eq!(w.end(), Some(15));
        let open = AttackWindow::new(3, None);
        assert!(open.active(1_000_000));
        assert_eq!(open.end(), None);
    }

    #[test]
    fn mitm_rewrites_in_place_without_forensic_traces() {
        let mut bus = bus_with_frames();
        let mut a = MitmRewrite::new(0, 0, -0.1, AttackWindow::new(0, None));
        let before = bus.len();
        a.apply(5, &mut bus, &mut rng());
        assert_eq!(bus.len(), before, "no extra frames");
        let f = bus.latest_fresh(SENSOR_ID_BASE).unwrap();
        assert_eq!(f.source, "ips", "source untouched — that's the MITM");
        assert!((f.decode()[0] - 0.9).abs() < 1e-8);
        // Dormant: no effect.
        let mut bus2 = bus_with_frames();
        MitmRewrite::new(0, 0, -0.1, AttackWindow::new(9, None)).apply(5, &mut bus2, &mut rng());
        assert!((bus2.latest(SENSOR_ID_BASE).unwrap().decode()[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fake_frame_inject_displaces_the_authentic_reading() {
        let mut bus = bus_with_frames();
        let mut a = FakeFrameInject::new(0, 0, 0.07, AttackWindow::new(0, None));
        a.apply(5, &mut bus, &mut rng());
        let f = bus.latest_fresh(SENSOR_ID_BASE).unwrap();
        assert_eq!(f.source, "attacker");
        assert!((f.decode()[0] - 1.07).abs() < 1e-8);
        // The authentic frame is still in the forensic log.
        assert!(bus.log().iter().any(|f| f.source == "ips"));
    }

    #[test]
    fn data_corruption_survives_the_encoder() {
        let mut bus = bus_with_frames();
        let mut a = DataCorruption::new(0, 10.0, AttackWindow::new(0, None));
        // Many applications: the non-finite branches must all saturate,
        // never panic, and always decode finite.
        for k in 0..200 {
            a.apply(k, &mut bus, &mut rng());
            let v = bus.latest_fresh(SENSOR_ID_BASE).unwrap().decode();
            assert!(
                v.as_slice().iter().all(|x| x.is_finite()),
                "tick {k}: {v:?}"
            );
        }
    }

    #[test]
    fn command_invalidation_skews_only_the_command_frame() {
        let mut bus = bus_with_frames();
        let mut a = CommandInvalidation::new(0.02, AttackWindow::new(0, None));
        a.apply(5, &mut bus, &mut rng());
        let u = bus.latest_fresh(COMMAND_ID).unwrap().decode();
        assert!((u[0] - 0.04).abs() < 1e-8);
        assert!((u[1] - 0.07).abs() < 1e-8);
        let s = bus.latest_fresh(SENSOR_ID_BASE).unwrap().decode();
        assert!((s[0] - 1.0).abs() < 1e-8, "sensor traffic untouched");
        assert_eq!(a.target(), Target::Actuators);
    }

    #[test]
    fn frame_trash_empties_the_fresh_view() {
        let mut bus = bus_with_frames();
        let mut a = FrameTrash::new(FrameTarget::Sensor(0), AttackWindow::new(0, None));
        a.apply(5, &mut bus, &mut rng());
        assert!(bus.latest_fresh(SENSOR_ID_BASE).is_none());
        assert!(bus.latest(SENSOR_ID_BASE).is_none(), "destroyed, not aged");
        assert!(bus.latest_fresh(COMMAND_ID).is_some(), "other ids survive");
    }

    #[test]
    fn replay_desync_redelivers_stale_stamps() {
        let mut bus = Bus::new();
        let mut a = ReplayDesync::new(FrameTarget::Sensor(0), 2, AttackWindow::new(3, None));
        let mut r = rng();
        for k in 0..6u64 {
            bus.clear();
            bus.begin_tick(k);
            bus.publish(Frame::encode(
                SENSOR_ID_BASE,
                "ips",
                &Vector::from_slice(&[k as f64]),
            ));
            a.apply(k as usize, &mut bus, &mut r);
            if k < 3 {
                assert_eq!(
                    bus.latest_fresh(SENSOR_ID_BASE).unwrap().decode()[0],
                    k as f64
                );
            } else {
                // Fresh frame trashed; the replayed frame is 2 ticks
                // old and carries its original stamp.
                assert!(bus.latest_fresh(SENSOR_ID_BASE).is_none());
                let f = bus.latest(SENSOR_ID_BASE).unwrap();
                assert_eq!(f.tick, k - 2);
                assert_eq!(f.decode()[0], (k - 2) as f64);
                assert_eq!(bus.staleness(SENSOR_ID_BASE), Some(2));
            }
        }
        assert_eq!(
            bus.future_stamps_rejected(),
            0,
            "pure replay, no forged stamps"
        );
    }

    #[test]
    fn specs_build_every_kind_with_matching_labels_and_targets() {
        for kind in AttackKind::ALL {
            let spec = AttackSpec::new(kind, 1, 3.0, 10, Some(20));
            let attack = spec.build();
            assert_eq!(attack.name(), kind.label());
            assert_eq!(attack.target(), spec.target());
            assert_eq!(attack.window(), AttackWindow::new(10, Some(20)));
        }
        assert_eq!(
            AttackSpec::new(AttackKind::CommandInvalidation, 1, 3.0, 10, None).target(),
            Target::Actuators
        );
    }
}
