//! Proves the NUISE hot path is allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator with a
//! thread-local allocation counter; after one warm-up call populates
//! the [`NuiseWorkspace`] scratch memory, a further `nuise_step_into`
//! must perform **zero** heap allocations — the property the per-mode
//! workspaces exist to guarantee (and the reason the fan-out can run
//! at control-loop rates without allocator contention across workers).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use roboads_core::{nuise_step, nuise_step_into, NuiseInput, NuiseWorkspace, RoboAdsConfig};
use roboads_core::{Linearization, ModeSet};
use roboads_linalg::{Matrix, Vector};
use roboads_models::presets;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: defers all memory management to the system allocator; the
// added bookkeeping is a plain thread-local counter (`Cell<u64>` has a
// const initializer and no destructor, so bumping it cannot recurse
// into the allocator).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations performed on this thread while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn warmed_up_nuise_step_into_is_allocation_free() {
    let system = presets::khepera_system();
    let modes = ModeSet::complete(&system);
    let config = RoboAdsConfig::paper_defaults();
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let p0 = Matrix::identity(3) * config.initial_covariance;
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings: Vec<Vector> = (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(&x1))
        .collect();
    let linearization = Linearization::PerIteration;

    for (m, mode) in modes.modes().iter().enumerate() {
        let mut ws = NuiseWorkspace::new(&system, mode);
        let mut out = ws.new_output();
        let input = NuiseInput {
            system: &system,
            mode,
            x_prev: &x0,
            p_prev: &p0,
            u_prev: &u,
            readings: &readings,
            linearization: &linearization,
            compensate: config.compensate_actuator_anomalies,
        };

        // Sanity: the counter actually sees the allocating reference
        // implementation at work.
        let reference_allocs = allocations_during(|| {
            nuise_step(input).unwrap();
        });
        assert!(
            reference_allocs > 0,
            "counting allocator failed to observe the allocating path"
        );

        // Warm-up: first call may still fault in lazily-sized output
        // storage.
        nuise_step_into(input, &mut ws, &mut out).unwrap();

        // Steady state: zero heap traffic.
        let steady_allocs = allocations_during(|| {
            for _ in 0..3 {
                nuise_step_into(input, &mut ws, &mut out).unwrap();
            }
        });
        assert_eq!(
            steady_allocs, 0,
            "mode {m}: warmed-up nuise_step_into allocated {steady_allocs} times"
        );
    }
}
