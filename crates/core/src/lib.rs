//! # RoboADS core — the paper's contribution
//!
//! This crate implements the anomaly detection system of *"RoboADS:
//! Anomaly Detection against Sensor and Actuator Misbehaviors in Mobile
//! Robots"* (Guo et al., DSN 2018): a model-based detector that runs
//! inside the planner and, each control iteration, decides whether the
//! robot's sensing workflows or actuation workflows are misbehaving —
//! and which ones.
//!
//! ## Architecture (paper Figure 3 / Algorithm 1)
//!
//! * **Monitor** — the caller: each iteration it hands
//!   [`RoboAds::step`] the planned commands `u_{k−1}` and the received
//!   per-sensor readings `z_k`.
//! * **Multi-mode estimation engine** ([`MultiModeEngine`]) — one
//!   [`nuise_step`] (Algorithm 2) per *mode*, where a [`Mode`] is a
//!   hypothesis partitioning the sensor suite into clean *reference*
//!   sensors (used for estimation) and potentially-corrupted *testing*
//!   sensors (cross-validated against the estimate). Each NUISE run
//!   produces state estimates, actuator and sensor anomaly-vector
//!   estimates with covariances, and a mode likelihood.
//! * **Mode selector** ([`ModeSelector`]) — maintains the normalized
//!   mode probabilities `μ_m ← max(N_m·μ_m, ε)` and picks the most
//!   likely hypothesis.
//! * **Decision maker** ([`DecisionMaker`]) — χ² tests on the selected
//!   mode's normalized anomaly estimates, sliding-window confirmation
//!   (`c` positives in `w` iterations), and per-sensor splitting to
//!   identify the misbehaving workflow(s).
//!
//! The crate also ships the linearize-once baseline detector of §V-G
//! ([`baseline::LinearizedOnceDetector`]) used for the benchmark
//! comparison.
//!
//! ## Example
//!
//! ```
//! use roboads_core::{ModeSet, RoboAds, RoboAdsConfig};
//! use roboads_linalg::Vector;
//! use roboads_models::presets;
//!
//! # fn main() -> Result<(), roboads_core::CoreError> {
//! let system = presets::khepera_system();
//! let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
//! let mut ads = RoboAds::new(
//!     system.clone(),
//!     RoboAdsConfig::paper_defaults(),
//!     x0.clone(),
//!     ModeSet::one_reference_per_sensor(&system),
//! )?;
//!
//! // One clean control iteration: command straight ahead, readings
//! // exactly consistent with the resulting state.
//! let u = Vector::from_slice(&[0.05, 0.05]);
//! let x1 = system.dynamics().step(&x0, &u);
//! let readings: Vec<_> = (0..system.sensor_count())
//!     .map(|i| system.sensor(i).unwrap().measure(&x1))
//!     .collect();
//! let report = ads.step(&u, &readings)?;
//! assert!(!report.sensor_misbehavior_detected());
//! assert!(!report.actuator_alarm);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod ekf;
pub mod forensics;
pub mod recorder;

mod config;
mod decision;
mod detector;
mod engine;
mod fleet;
mod health;
mod ingest;
mod mode;
mod nuise;
mod nuise_slab;
mod report;
mod selector;
mod shard;
mod snapshot;

pub use config::{ActivationPolicy, Linearization, RoboAdsConfig, WindowConfig};
pub use decision::DecisionMaker;
pub use detector::RoboAds;
pub use engine::{EngineOutput, MultiModeEngine};
pub use fleet::{FleetEngine, RobotInput};
pub use health::{FleetHealth, RobotHealth};
pub use ingest::{DeadlinePolicy, FleetIngest, SlotState, SwapSummary};
pub use mode::{Mode, ModeSet};
pub use nuise::{nuise_step, nuise_step_into, NuiseInput, NuiseOutput, NuiseWorkspace};
pub use recorder::{
    replay_capsule, CapsuleIncident, DecisionDigest, FlightRecorder, IncidentCapsule, IncidentKind,
    RecorderConfig, ReplayOutcome, TickRecord, CAPSULE_VERSION,
};
pub use report::{AnomalyEstimate, DetectionReport, SensorAnomaly};
pub use selector::{ModeSelector, MODE_MIXING, SELECTION_HYSTERESIS};
pub use shard::{RobotFactory, ShardConfig, ShardStatus, ShardedFleet, StampedFrame};
pub use snapshot::{
    restore_detector, restore_fleet, snapshot_detector, snapshot_fleet, SNAPSHOT_VERSION,
};

/// Re-export of the observability layer the pipeline reports into, so
/// detector users can build a [`roboads_obs::Telemetry`] for
/// [`RoboAds::set_telemetry`] without naming the crate separately.
pub use roboads_obs as obs;

use std::error::Error;
use std::fmt;

/// Errors produced by detector construction and stepping.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was out of its valid domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted by the caller.
        value: String,
    },
    /// A mode's reference sensors cannot estimate the state or the
    /// actuator anomaly (observability / input-rank failure).
    DegenerateMode {
        /// Index of the offending mode.
        mode: usize,
        /// What failed.
        reason: String,
    },
    /// The caller supplied readings inconsistent with the sensor suite.
    BadReadings {
        /// What was wrong.
        reason: String,
    },
    /// A fleet robot had no complete input set at the tick boundary:
    /// its frames were late or dropped and the ingest policy was
    /// [`DeadlinePolicy::MarkMissing`] (or nothing was ever delivered).
    /// The robot's detector state is untouched — exactly as if the
    /// iteration had been skipped — and the paper's precursor
    /// (arXiv:1708.01834) treats the missing reading itself as the
    /// detectable misbehavior, so this error is a per-robot verdict,
    /// not a batch failure.
    MissedDeadline {
        /// Index of the robot whose inputs never completed.
        robot: usize,
    },
    /// An incident capsule could not be parsed or replayed (schema
    /// mismatch, corruption, or a replay-contract violation).
    Capsule {
        /// What was wrong.
        reason: String,
    },
    /// A state snapshot could not be decoded or did not match the twin
    /// detector it was restored onto (version, dimension, truncation or
    /// corruption).
    Snapshot {
        /// What was wrong.
        reason: String,
    },
    /// An underlying numeric operation failed.
    Numeric(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { name, value } => {
                write!(f, "invalid configuration {name} = {value}")
            }
            CoreError::DegenerateMode { mode, reason } => {
                write!(f, "mode {mode} is degenerate: {reason}")
            }
            CoreError::BadReadings { reason } => write!(f, "bad readings: {reason}"),
            CoreError::MissedDeadline { robot } => {
                write!(
                    f,
                    "robot {robot} missed the tick deadline: incomplete input set"
                )
            }
            CoreError::Capsule { reason } => write!(f, "incident capsule error: {reason}"),
            CoreError::Snapshot { reason } => write!(f, "snapshot error: {reason}"),
            CoreError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<roboads_linalg::LinalgError> for CoreError {
    fn from(e: roboads_linalg::LinalgError) -> Self {
        CoreError::Numeric(e.to_string())
    }
}

impl From<roboads_stats::StatsError> for CoreError {
    fn from(e: roboads_stats::StatsError) -> Self {
        CoreError::Numeric(e.to_string())
    }
}

impl From<roboads_obs::wire::ByteError> for CoreError {
    fn from(e: roboads_obs::wire::ByteError) -> Self {
        CoreError::Snapshot {
            reason: e.to_string(),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e: CoreError = roboads_linalg::LinalgError::Singular.into();
        assert!(e.to_string().contains("singular"));
        let e: CoreError = roboads_stats::StatsError::NoConvergence { routine: "x" }.into();
        assert!(e.to_string().contains("converge"));
    }
}
