//! Process-global numerical-health counters.
//!
//! The linear-algebra substrate sits below the telemetry layer (the
//! `roboads-obs` crate depends on nothing, and this crate must not
//! depend on it either), so breakdowns are tallied here in plain
//! process-global atomics and surfaced to the observability layer by
//! whoever owns a registry: the detection engine snapshots these
//! counters around each step and re-publishes the delta as a proper
//! metric.
//!
//! The counters are monotonic for the lifetime of the process and are
//! shared across threads; consumers that want per-run numbers must diff
//! a [`snapshot`] taken before the run against one taken after, rather
//! than read absolute values.

use std::sync::atomic::{AtomicU64, Ordering};

static CHOLESKY_FACTORIZATIONS: AtomicU64 = AtomicU64::new(0);
static CHOLESKY_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time copy of the health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// Cholesky factorizations attempted since process start.
    pub cholesky_factorizations: u64,
    /// Cholesky factorizations that failed (asymmetric input or a
    /// non-positive pivot — the classic covariance-breakdown signal).
    pub cholesky_failures: u64,
}

impl HealthSnapshot {
    /// Counter increments between `earlier` and `self`.
    ///
    /// Saturates at zero, so a stale "earlier" snapshot from a
    /// different process cannot produce bogus huge deltas.
    pub fn since(&self, earlier: &HealthSnapshot) -> HealthSnapshot {
        HealthSnapshot {
            cholesky_factorizations: self
                .cholesky_factorizations
                .saturating_sub(earlier.cholesky_factorizations),
            cholesky_failures: self
                .cholesky_failures
                .saturating_sub(earlier.cholesky_failures),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> HealthSnapshot {
    HealthSnapshot {
        cholesky_factorizations: CHOLESKY_FACTORIZATIONS.load(Ordering::Relaxed),
        cholesky_failures: CHOLESKY_FAILURES.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_cholesky_attempt() {
    CHOLESKY_FACTORIZATIONS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_cholesky_failure() {
    CHOLESKY_FAILURES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn cholesky_outcomes_are_tallied() {
        let before = snapshot();
        Matrix::from_diagonal(&[1.0, 2.0]).cholesky().unwrap();
        Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]])
            .unwrap()
            .cholesky()
            .unwrap_err();
        let delta = snapshot().since(&before);
        // Other tests may factorize concurrently, so lower bounds only.
        assert!(delta.cholesky_factorizations >= 2);
        assert!(delta.cholesky_failures >= 1);
    }

    #[test]
    fn since_saturates() {
        let big = HealthSnapshot {
            cholesky_factorizations: 10,
            cholesky_failures: 3,
        };
        let small = HealthSnapshot::default();
        assert_eq!(big.since(&small).cholesky_failures, 3);
        assert_eq!(small.since(&big).cholesky_failures, 0);
    }
}
