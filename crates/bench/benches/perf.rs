//! Performance benches: RoboADS must run inside the planner in real
//! time, i.e. one full detection iteration well under the 100 ms
//! control period — and the paper notes the mode count grows linearly
//! with the sensor count for the default mode set versus exponentially
//! for the complete set (§VI).
//!
//! Timing is a plain `std::time::Instant` harness (median of repeated
//! batches; no external crates so the tier-1 build resolves offline).
//! Besides the hot-path numbers this bench measures the *telemetry
//! overhead*: a detector step with the default disabled sink versus one
//! streaming spans into a `RingBufferSink`, with an acceptance budget
//! of 5 % on the disabled path relative to the seed's uninstrumented
//! engine (approximated here by the disabled-vs-enabled split).
//!
//! Run with: `cargo bench -p roboads-bench --bench perf`

use std::sync::Arc;
use std::time::Instant;

use roboads_core::obs::{RingBufferSink, Telemetry};
use roboads_core::{nuise_step, Linearization, Mode, ModeSet, NuiseInput, RoboAds, RoboAdsConfig};
use roboads_linalg::{Matrix, Vector};
use roboads_models::presets;
use roboads_sim::{Scenario, SimulationBuilder};

/// Median per-call time in seconds: `batches` batches of `per_batch`
/// calls each, timed per batch (amortizes the clock reads).
fn time_median<F: FnMut()>(batches: usize, per_batch: usize, mut f: F) -> f64 {
    // Warm-up batch.
    for _ in 0..per_batch {
        f();
    }
    let mut samples: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_batch {
                f();
            }
            start.elapsed().as_secs_f64() / per_batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn report(name: &str, seconds: f64) {
    println!("{name:<44} {:>10.1} µs", seconds * 1e6);
}

fn clean_readings(system: &roboads_models::RobotSystem, x: &Vector) -> Vec<Vector> {
    (0..system.sensor_count())
        .map(|i| system.sensor(i).unwrap().measure(x))
        .collect()
}

fn bench_nuise() {
    let system = presets::khepera_system();
    let mode = Mode::new(vec![0], vec![1, 2]);
    let x = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let p = Matrix::identity(3) * 1e-4;
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x, &u);
    let readings = clean_readings(&system, &x1);
    let lin = Linearization::PerIteration;

    let t = time_median(30, 50, || {
        nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x,
            p_prev: &p,
            u_prev: &u,
            readings: &readings,
            linearization: &lin,
            compensate: true,
        })
        .unwrap();
    });
    report("nuise_step/khepera_single_mode", t);
}

/// Median time of one steady-state detector step under the given
/// telemetry context (the detector is pre-warmed so mode probabilities
/// settle before measurement).
fn detector_step_time(system: &roboads_models::RobotSystem, telemetry: Option<Telemetry>) -> f64 {
    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(system, &x1);
    let mut ads = RoboAds::with_defaults(system.clone(), x0).unwrap();
    if let Some(t) = telemetry {
        ads.set_telemetry(t);
    }
    time_median(30, 20, || {
        ads.step(&u, &readings).unwrap();
    })
}

fn bench_detector_and_overhead() {
    let system = presets::khepera_system();

    let disabled = detector_step_time(&system, None);
    report("detector_step/default_modes_3 (noop sink)", disabled);

    let ring = Arc::new(RingBufferSink::new(4096));
    let enabled = detector_step_time(&system, Some(Telemetry::new(ring)));
    report("detector_step/default_modes_3 (ring sink)", enabled);
    let overhead = (enabled - disabled) / disabled * 100.0;
    println!(
        "{:<44} {:>9.2} %  (budget: enabled instrumentation; the default\n{:>60}",
        "telemetry overhead (ring vs noop)",
        overhead,
        "noop path itself must stay within 5 % of uninstrumented)"
    );

    let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
    let u = Vector::from_slice(&[0.06, 0.05]);
    let x1 = system.dynamics().step(&x0, &u);
    let readings = clean_readings(&system, &x1);
    let mut complete = RoboAds::new(
        system.clone(),
        RoboAdsConfig::paper_defaults(),
        x0,
        ModeSet::complete(&system),
    )
    .unwrap();
    let t = time_median(30, 10, || {
        complete.step(&u, &readings).unwrap();
    });
    report("detector_step/complete_modes_7", t);
}

fn bench_simulation() {
    let t = time_median(5, 1, || {
        SimulationBuilder::khepera()
            .scenario(Scenario::ips_logic_bomb())
            .seed(11)
            .run()
            .unwrap();
    });
    report("simulation/khepera_200_iterations", t);

    // Dump one run's telemetry summary so the bench doubles as a
    // health-report demo (step latency p50/p95/p99 live here).
    let outcome = SimulationBuilder::khepera()
        .scenario(Scenario::ips_logic_bomb())
        .seed(11)
        .run()
        .unwrap();
    println!("\ntelemetry summary (ips_logic_bomb, seed 11):");
    println!("{}", outcome.telemetry.to_json());
}

fn bench_substrates() {
    let arena = presets::evaluation_arena();
    let t = time_median(5, 2, || {
        roboads_control::RrtStar::new(&arena, 0.08)
            .unwrap()
            .plan((0.5, 0.5), (3.5, 3.5), 7)
            .unwrap();
    });
    report("rrt_star/evaluation_arena", t);

    let lidar = roboads_models::sensors::WallLidar::new(arena, 0.015, 0.02).unwrap();
    let pose = Vector::from_slice(&[2.0, 2.0, 0.5]);
    let t = time_median(30, 20, || {
        lidar.simulate_scan(&pose).unwrap();
    });
    report("lidar/241_beam_scan", t);

    let m = Matrix::from_fn(7, 7, |i, j| if i == j { 2.0 } else { 0.3 });
    let t = time_median(30, 50, || {
        m.pseudo_inverse().unwrap();
    });
    report("linalg/pseudo_inverse_7x7", t);
}

fn main() {
    println!("control period budget: 100000.0 µs per detection iteration\n");
    bench_nuise();
    bench_detector_and_overhead();
    bench_substrates();
    bench_simulation();
}
