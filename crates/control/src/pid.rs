use crate::{ControlError, Result};

/// A discrete PID regulator with output clamping and integral anti-windup.
///
/// Both path trackers in this crate close their heading loop through a
/// `Pid`; the paper's §V-A mission uses "PID closed-loop control to track
/// the planned path".
///
/// # Example
///
/// ```
/// use roboads_control::Pid;
///
/// # fn main() -> Result<(), roboads_control::ControlError> {
/// let mut pid = Pid::new(2.0, 0.1, 0.05, 0.1)?.with_output_limit(1.0);
/// let u = pid.update(0.5); // error of 0.5 rad
/// assert!(u > 0.0 && u <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pid {
    kp: f64,
    ki: f64,
    kd: f64,
    dt: f64,
    output_limit: f64,
    integral: f64,
    previous_error: Option<f64>,
}

impl Pid {
    /// Creates a PID with proportional/integral/derivative gains and the
    /// sample period `dt` (seconds). The output is unlimited until
    /// [`Pid::with_output_limit`] is applied.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidParameter`] for negative gains,
    /// non-finite gains, or non-positive `dt`.
    pub fn new(kp: f64, ki: f64, kd: f64, dt: f64) -> Result<Self> {
        for (name, v) in [("kp", kp), ("ki", ki), ("kd", kd)] {
            if !v.is_finite() || v < 0.0 {
                return Err(ControlError::InvalidParameter {
                    name,
                    value: format!("{v}"),
                });
            }
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ControlError::InvalidParameter {
                name: "dt",
                value: format!("{dt}"),
            });
        }
        Ok(Pid {
            kp,
            ki,
            kd,
            dt,
            output_limit: f64::INFINITY,
            integral: 0.0,
            previous_error: None,
        })
    }

    /// Sets a symmetric output clamp `±limit`; the integrator freezes
    /// while the output saturates (anti-windup).
    pub fn with_output_limit(mut self, limit: f64) -> Self {
        self.output_limit = limit.abs();
        self
    }

    /// Advances the controller by one period with the given error and
    /// returns the (clamped) control output.
    pub fn update(&mut self, error: f64) -> f64 {
        let derivative = match self.previous_error {
            Some(prev) => (error - prev) / self.dt,
            None => 0.0,
        };
        self.previous_error = Some(error);

        let candidate_integral = self.integral + error * self.dt;
        let unclamped = self.kp * error + self.ki * candidate_integral + self.kd * derivative;
        let output = unclamped.clamp(-self.output_limit, self.output_limit);
        // Anti-windup: only accumulate the integral when not saturated.
        if output == unclamped {
            self.integral = candidate_integral;
        }
        output
    }

    /// Clears the integrator and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.previous_error = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_proportional_response() {
        let mut pid = Pid::new(3.0, 0.0, 0.0, 0.1).unwrap();
        assert!((pid.update(0.5) - 1.5).abs() < 1e-12);
        assert!((pid.update(-0.2) + 0.6).abs() < 1e-12);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, 0.5).unwrap();
        assert_eq!(pid.update(1.0), 0.5);
        assert_eq!(pid.update(1.0), 1.0);
        assert_eq!(pid.update(1.0), 1.5);
    }

    #[test]
    fn derivative_reacts_to_error_change() {
        let mut pid = Pid::new(0.0, 0.0, 1.0, 0.1).unwrap();
        assert_eq!(pid.update(0.0), 0.0); // no previous error yet
        assert_eq!(pid.update(0.5), 5.0); // (0.5 - 0.0) / 0.1
        assert_eq!(pid.update(0.5), 0.0); // steady error → zero derivative
    }

    #[test]
    fn output_clamp_and_antiwindup() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, 1.0).unwrap().with_output_limit(2.0);
        // Saturate for many steps.
        for _ in 0..50 {
            assert!(pid.update(10.0) <= 2.0);
        }
        // On reversal the output recovers immediately instead of paying
        // back a huge accumulated integral.
        let recovered = pid.update(-10.0);
        assert!(recovered < 2.0, "windup not prevented: {recovered}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(1.0, 1.0, 1.0, 0.1).unwrap();
        pid.update(1.0);
        pid.update(2.0);
        pid.reset();
        // After reset behaves like a fresh controller.
        let mut fresh = Pid::new(1.0, 1.0, 1.0, 0.1).unwrap();
        assert_eq!(pid.update(0.7), fresh.update(0.7));
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: x' = u; PID drives x to the setpoint 1.0.
        let dt = 0.05;
        let mut pid = Pid::new(2.0, 0.4, 0.0, dt).unwrap().with_output_limit(5.0);
        let mut x = 0.0;
        for _ in 0..400 {
            let u = pid.update(1.0 - x);
            x += u * dt;
        }
        assert!((x - 1.0).abs() < 0.01, "x = {x}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Pid::new(-1.0, 0.0, 0.0, 0.1).is_err());
        assert!(Pid::new(1.0, 0.0, 0.0, 0.0).is_err());
        assert!(Pid::new(1.0, f64::NAN, 0.0, 0.1).is_err());
    }
}
