//! Fleet-as-a-service integration (`DESIGN.md` §18): the 64-robot
//! fleet snapshot/restore contract, killed-shard recovery from the last
//! snapshot plus stamped-frame replay, bitwise equality of the
//! wire-fed multi-process path with the in-process sync path, and the
//! shard dimension of the health exposition.
//!
//! As in `tests/snapshot_restore.rs`, the end-state oracle is
//! [`snapshot_detector`] byte equality — every mutable `f64` of every
//! robot, compared bit-for-bit.

use std::sync::{Arc, OnceLock};

use roboads::control::Mission;
use roboads::core::{
    restore_fleet, snapshot_detector, snapshot_fleet, FleetEngine, FleetHealth, FleetIngest,
    RoboAds, RobotFactory, ShardConfig, ShardedFleet,
};
use roboads::linalg::Vector;
use roboads::models::presets;
use roboads::sim::{serve_traces_uds, Scenario, SimulationBuilder, Trace};

const TICKS: usize = 48;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::clean(),
        Scenario::wheel_logic_bomb(),
        Scenario::wheel_jamming(),
        Scenario::ips_logic_bomb(),
        Scenario::ips_spoofing(),
        Scenario::encoder_logic_bomb(),
        Scenario::lidar_dos(),
        Scenario::lidar_blocking(),
        Scenario::wheel_and_ips_logic_bomb(),
        Scenario::lidar_dos_and_encoder_logic_bomb(),
        Scenario::ips_spoofing_and_lidar_dos(),
        Scenario::ips_and_encoder_logic_bomb(),
    ]
}

/// One recorded trace per Table II scenario, shared by every test in
/// this binary (the simulations dominate the setup cost).
fn traces() -> &'static [Trace] {
    static TRACES: OnceLock<Vec<Trace>> = OnceLock::new();
    TRACES.get_or_init(|| {
        scenarios()
            .into_iter()
            .map(|sc| {
                SimulationBuilder::khepera()
                    .scenario(sc)
                    .seed(11)
                    .duration(TICKS)
                    .run()
                    .unwrap()
                    .trace
            })
            .collect()
    })
}

/// The trace feeding robot `index` — scenarios round-robin over the
/// fleet so every Table II scenario is live in the 64-robot runs.
fn trace_of(index: usize) -> &'static Trace {
    let tr = traces();
    &tr[index % tr.len()]
}

/// The evaluation runner's initial state (same construction as
/// `evaluation_detector`).
fn evaluation_x0() -> Vector {
    let arena = presets::evaluation_arena();
    let path = Mission::evaluation_default().plan(&arena, 0.08).unwrap();
    let (sx, sy) = path.waypoints()[0];
    let (lx, ly) = path.lookahead_point(sx, sy, 0.25);
    let theta0 = (ly - sy).atan2(lx - sx);
    Vector::from_slice(&[sx, sy, theta0])
}

/// A deterministic factory capturing ONE shared system: every detector
/// it builds — including recovery twins — carries the same
/// `ModelSignature`, so the whole fleet stays a single slab group.
fn shared_factory() -> RobotFactory {
    let system = presets::khepera_system();
    let x0 = evaluation_x0();
    Arc::new(move |_id| RoboAds::with_defaults(system.clone(), x0.clone()))
}

/// Offers tick `k`'s recorded frames for every robot and steps the
/// sharded fleet. `ids[i]` replays `trace_of(i)`.
fn sharded_tick(fleet: &mut ShardedFleet, ids: &[u64], k: usize) {
    for (i, &id) in ids.iter().enumerate() {
        let r = &trace_of(i).records()[k];
        assert!(fleet.offer_input(id, &r.planned_command, k as u64).unwrap());
        for (s, reading) in r.readings.iter().enumerate() {
            assert!(fleet.offer(id, s, reading, k as u64).unwrap());
        }
    }
    fleet.step().unwrap();
}

/// Asserts every robot of both fleets carries bitwise-identical state.
fn assert_fleets_bitwise(a: &ShardedFleet, b: &ShardedFleet, ids: &[u64], context: &str) {
    for &id in ids {
        assert_eq!(
            snapshot_detector(a.detector(id).unwrap()),
            snapshot_detector(b.detector(id).unwrap()),
            "{context}: robot {id} diverged"
        );
    }
}

#[test]
fn sixty_four_robot_fleet_snapshot_restore_continue_is_bitwise() {
    // All 12 Table II scenarios live simultaneously, round-robin over
    // 64 robots; the cut lands mid-run with attacks in flight.
    let factory = shared_factory();
    let build = || {
        let detectors: Vec<RoboAds> = (0..64).map(|i| factory(i).unwrap()).collect();
        let engine = FleetEngine::new(detectors, 1);
        let ingest = FleetIngest::for_fleet(&engine);
        (engine, ingest)
    };
    let tick = |engine: &mut FleetEngine, ingest: &mut FleetIngest, k: usize| {
        for robot in 0..engine.len() {
            let r = &trace_of(robot).records()[k];
            ingest
                .offer_input_stamped(robot, &r.planned_command, k as u64)
                .unwrap();
            for (s, reading) in r.readings.iter().enumerate() {
                ingest.offer_stamped(robot, s, reading, k as u64).unwrap();
            }
        }
        ingest.step(engine).unwrap();
    };

    let (mut ref_engine, mut ref_ingest) = build();
    for k in 0..TICKS {
        tick(&mut ref_engine, &mut ref_ingest, k);
    }
    let end = snapshot_fleet(&ref_engine, &ref_ingest);

    let cut = TICKS / 2;
    let (mut live_engine, mut live_ingest) = build();
    for k in 0..cut {
        tick(&mut live_engine, &mut live_ingest, k);
    }
    let snap = snapshot_fleet(&live_engine, &live_ingest);

    let (mut engine, mut ingest) = build();
    restore_fleet(&mut engine, &mut ingest, &snap).unwrap();
    assert_eq!(snapshot_fleet(&engine, &ingest), snap, "roundtrip identity");
    for k in cut..TICKS {
        tick(&mut engine, &mut ingest, k);
    }
    assert_eq!(
        snapshot_fleet(&engine, &ingest),
        end,
        "64-robot end state diverged after restore"
    );
    for robot in 0..64 {
        assert_eq!(
            engine.report(robot),
            ref_engine.report(robot),
            "robot {robot} report"
        );
    }
}

#[test]
fn killed_shards_recover_bitwise_from_snapshot_and_journal_replay() {
    let ids: Vec<u64> = (0..64).collect();
    let config = ShardConfig {
        shards: 4,
        threads_per_shard: 1,
        snapshot_period: 16,
        steal_margin: 0,
    };
    let mut reference = ShardedFleet::new(&ids, shared_factory(), config.clone()).unwrap();
    let mut victim = ShardedFleet::new(&ids, shared_factory(), config).unwrap();

    // Crash before the first periodic snapshot: recovery is a pure
    // journal replay from detector birth.
    for k in 0..8 {
        sharded_tick(&mut reference, &ids, k);
        sharded_tick(&mut victim, &ids, k);
    }
    victim.recover_shard(2).unwrap();
    assert_fleets_bitwise(&reference, &victim, &ids, "early crash (journal only)");

    // Crash mid-run: recovery is the tick-32 snapshot plus the 8-tick
    // journal backlog.
    for k in 8..40 {
        sharded_tick(&mut reference, &ids, k);
        sharded_tick(&mut victim, &ids, k);
    }
    let before = victim.status();
    assert_eq!(before[1].snapshot_tick, Some(32));
    assert!(before[1].journal_frames > 0, "a backlog must exist");
    victim.recover_shard(1).unwrap();
    assert_fleets_bitwise(
        &reference,
        &victim,
        &ids,
        "mid-run crash (snapshot + journal)",
    );

    // Both fleets keep marching in lockstep after the recovery.
    for k in 40..TICKS {
        sharded_tick(&mut reference, &ids, k);
        sharded_tick(&mut victim, &ids, k);
    }
    assert_fleets_bitwise(&reference, &victim, &ids, "post-recovery continuation");
    assert_eq!(victim.tick(), TICKS as u64);
    assert_eq!(reference.tick(), TICKS as u64);
}

#[test]
fn wire_fed_service_is_bitwise_equal_to_the_in_process_sync_path() {
    // Scattered 64-bit ids exercise the hash partition; the producer
    // thread feeds the service over a real Unix socket through the
    // binary codec, while the twin fleet takes the same frames through
    // direct in-process offers.
    let ids: [u64; 8] = [3, 11, 42, 77, 255, 9000, 1 << 33, u64::MAX - 5];
    let config = ShardConfig {
        shards: 3,
        threads_per_shard: 1,
        snapshot_period: 32,
        steal_margin: 0,
    };
    let mut served = ShardedFleet::new(&ids, shared_factory(), config.clone()).unwrap();
    let mut synced = ShardedFleet::new(&ids, shared_factory(), config).unwrap();

    let robots: Vec<(u64, Trace)> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, trace_of(i).clone()))
        .collect();
    let socket =
        std::env::temp_dir().join(format!("roboads-shard-svc-{}.sock", std::process::id()));
    let summary = serve_traces_uds(&socket, &robots, &mut served).unwrap();

    let sensors = trace_of(0).records()[0].readings.len();
    assert!(summary.clean_shutdown, "producer must close with Bye");
    assert_eq!(summary.ticks, TICKS as u64);
    assert_eq!(summary.rejected, 0);
    assert_eq!(summary.accepted, (TICKS * ids.len() * (1 + sensors)) as u64);

    for k in 0..TICKS {
        sharded_tick(&mut synced, &ids, k);
    }
    assert_eq!(served.tick(), synced.tick());
    assert_fleets_bitwise(&served, &synced, &ids, "wire vs in-process");
}

#[test]
fn health_exposition_carries_the_shard_dimension() {
    let ids: Vec<u64> = (0..4).collect();
    let config = ShardConfig {
        shards: 2,
        threads_per_shard: 1,
        snapshot_period: 4,
        steal_margin: 0,
    };
    let mut fleet = ShardedFleet::new(&ids, shared_factory(), config).unwrap();

    // Before any tick: no snapshots yet — ages must render as -1.
    let mut health = FleetHealth::new(ids.len());
    health.observe_shards(&fleet);
    let prom = health.to_prometheus();
    assert!(
        prom.contains("roboads_shard_snapshot_age{shard=\"0\"} -1"),
        "{prom}"
    );
    assert!(
        prom.contains("roboads_shard_snapshot_age{shard=\"1\"} -1"),
        "{prom}"
    );
    let json = health.to_json();
    assert!(json.contains("\"snapshot_tick\":null"), "{json}");

    // Past the snapshot period: ages, ticks and backlogs are live.
    for k in 0..6 {
        sharded_tick(&mut fleet, &ids, k);
    }
    health.observe_shards(&fleet);
    let json = health.to_json();
    assert!(json.contains("\"steals\":0"), "{json}");
    assert!(json.contains("\"shards\":[{\"shard\":0,"), "{json}");
    assert!(json.contains("\"snapshot_tick\":4"), "{json}");
    let prom = health.to_prometheus();
    assert!(prom.contains("roboads_fleet_steals 0"), "{prom}");
    assert!(prom.contains("roboads_shard_tick{shard=\"0\"} 6"), "{prom}");
    assert!(prom.contains("roboads_shard_tick{shard=\"1\"} 6"), "{prom}");
    assert!(
        prom.contains("roboads_shard_snapshot_age{shard=\"0\"} 2"),
        "{prom}"
    );
    for shard in 0..2 {
        assert!(
            prom.contains(&format!("roboads_shard_robots{{shard=\"{shard}\"}}")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!(
                "roboads_shard_journal_frames{{shard=\"{shard}\"}}"
            )),
            "{prom}"
        );
    }

    // A whole-group steal shows up in both expositions. With one
    // signature the balancer only moves a group when it would not just
    // swap the imbalance; a 3-vs-1 split steals nothing, so force the
    // asymmetric case by checking the counter plumbing directly.
    let moved = fleet.rebalance();
    health.observe_shards(&fleet);
    assert_eq!(fleet.steals() as usize, usize::from(moved > 0));
    assert!(
        health
            .to_json()
            .contains(&format!("\"steals\":{}", fleet.steals())),
        "steal counter must flow into the exposition"
    );
}
