//! End-to-end flight-recorder integration: Table II missions with a
//! recorder attached must seal incident capsules that replay **bitwise**
//! through a freshly constructed detector — including after a JSONL
//! round-trip — and a fleet run with monitor-side frame faults must do
//! the same while the live health board accounts for every robot.

use roboads::core::{
    replay_capsule, DeadlinePolicy, IncidentCapsule, IncidentKind, RecorderConfig, RoboAdsConfig,
};
use roboads::sim::{
    evaluation_detector, FleetSimulationBuilder, FrameFault, RobotKind, Scenario, SimulationBuilder,
};

/// A recorder whose ring reaches back to detector birth for any
/// evaluation-length mission — the replay contract's anchor requirement.
fn full_run_recorder() -> RecorderConfig {
    RecorderConfig {
        capacity: 512,
        pre: 512,
        post: 8,
        dt: 0.1,
    }
}

#[test]
fn table2_sensor_and_actuator_capsules_replay_bitwise() {
    // One sensor scenario (S1: IPS spoofing) and one actuator scenario
    // (A1: wheel logic bomb) — both alarm kinds exercise the full
    // record → seal → serialize → parse → replay loop.
    for (scenario, kind) in [
        (Scenario::ips_spoofing(), IncidentKind::Sensor),
        (Scenario::wheel_logic_bomb(), IncidentKind::Actuator),
    ] {
        let name = scenario.name().to_string();
        let outcome = SimulationBuilder::khepera()
            .scenario(scenario)
            .seed(7)
            .recorder(full_run_recorder())
            .run()
            .unwrap();
        assert!(
            !outcome.capsules.is_empty(),
            "{name}: a confirmed alarm must seal a capsule"
        );
        let capsule = &outcome.capsules[0];
        assert_eq!(capsule.kind, kind, "{name}");
        assert!(capsule.anchored_at_birth(), "{name}");
        // Stamps are the bus ticks (0-based k), one behind the 1-based
        // detector iterations.
        for r in &capsule.records {
            assert_eq!(r.stamp, r.seq - 1, "{name}: stamp/seq alignment");
        }
        let incident = capsule.incident.as_ref().expect("forensics enrichment");
        assert!(!incident.label.is_empty());

        // The round-tripped capsule replays bitwise on a twin detector
        // built exactly as the runner built the recorded one.
        let parsed = IncidentCapsule::from_jsonl(&capsule.to_jsonl()).unwrap();
        let mut twin =
            evaluation_detector(RobotKind::Khepera, &RoboAdsConfig::paper_defaults()).unwrap();
        let replay = replay_capsule(&parsed, &mut twin).unwrap();
        assert_eq!(replay.ticks, capsule.records.len());
        assert!(
            replay.is_bitwise(),
            "{name}: replay diverged at seqs {:?}",
            replay.mismatched_seqs
        );
    }
}

#[test]
fn frame_faulted_fleet_seals_replayable_capsules_and_health_accounts_for_it() {
    const ROBOTS: usize = 3;
    const FAULTED: usize = 1;
    let outcome = FleetSimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .robots(ROBOTS)
        .phase(5)
        .seed(11)
        .duration(80)
        .ingest(DeadlinePolicy::MarkMissing)
        .frame_fault(FAULTED, 30..34, FrameFault::Drop)
        .recorder(full_run_recorder())
        .health(true)
        .run()
        .unwrap();

    // Every robot's shifted attack confirms and seals a capsule carrying
    // its robot index.
    assert_eq!(outcome.capsules.len(), ROBOTS);
    for (i, capsule) in outcome.capsules.iter().enumerate() {
        assert_eq!(capsule.robot, i as u32);
        assert_eq!(capsule.kind, IncidentKind::Sensor);
        assert!(capsule.anchored_at_birth(), "robot {i}");
        // The fleet pins intra-step parallelism to sequential; the twin
        // must be configured identically for a bitwise pairing.
        let mut config = RoboAdsConfig::paper_defaults();
        config.threads = Some(1);
        let mut twin = evaluation_detector(RobotKind::Khepera, &config).unwrap();
        let parsed = IncidentCapsule::from_jsonl(&capsule.to_jsonl()).unwrap();
        let replay = replay_capsule(&parsed, &mut twin).unwrap();
        assert!(
            replay.is_bitwise(),
            "robot {i}: replay diverged at seqs {:?}",
            replay.mismatched_seqs
        );
    }

    // The faulted robot's capsule simply has no records for its dropped
    // window: the detector froze, iterations stayed consecutive, and the
    // stamp timeline jumps over the monitor-side outage.
    let faulted = &outcome.capsules[FAULTED];
    let stamps: Vec<u64> = faulted.records.iter().map(|r| r.stamp).collect();
    for k in 30..34 {
        assert!(
            !stamps.contains(&k),
            "dropped tick {k} must not be recorded"
        );
    }
    for w in faulted.records.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1, "iterations stay consecutive");
    }

    // The health board saw every tick and the fault.
    let health = outcome
        .health
        .as_ref()
        .expect("health(true) builds the board");
    assert_eq!(health.ticks(), 80);
    assert_eq!(health.robots().len(), ROBOTS);
    assert_eq!(health.robots()[FAULTED].missed_deadlines, 4);
    assert_eq!(health.robots()[FAULTED].missing, 4);
    assert_eq!(health.missed_deadlines(), 4);
    assert!(health.alarmed() >= 1, "spoofed robots end the run alarmed");
    assert_eq!(health.capsules(), ROBOTS as u64);
    for (i, r) in health.robots().iter().enumerate() {
        let expected_fresh = if i == FAULTED { 80 - 4 } else { 80 };
        assert_eq!(r.fresh, expected_fresh, "robot {i}");
        assert_eq!(r.staleness, 0, "all robots end the run live");
    }

    // Both expositions render the same story.
    let json = health.to_json();
    assert!(json.contains("\"ticks\":80"), "{json}");
    assert!(json.contains("\"missed_deadlines\":4"), "{json}");
    let prom = health.to_prometheus();
    assert!(prom.contains("roboads_fleet_ticks 80"), "{prom}");
    assert!(
        prom.contains(&format!(
            "roboads_robot_missed_deadlines{{robot=\"{FAULTED}\"}} 4"
        )),
        "{prom}"
    );
    assert!(
        prom.contains(&format!("roboads_fleet_capsules {ROBOTS}")),
        "{prom}"
    );
}

#[test]
fn fleet_and_standalone_runs_record_identical_capsules() {
    // Robot 0 of a fleet replays the base scenario from the base seed —
    // its capsule must be byte-for-byte the standalone runner's, recorder
    // included (same stamps, same digests, same serialized form).
    let fleet = FleetSimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .robots(2)
        .phase(7)
        .seed(11)
        .duration(70)
        .recorder(full_run_recorder())
        .run()
        .unwrap();
    let solo = SimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .seed(11)
        .duration(70)
        .recorder(full_run_recorder())
        .run()
        .unwrap();
    let fleet_capsule = fleet
        .capsules
        .iter()
        .find(|c| c.robot == 0)
        .expect("robot 0 sealed a capsule");
    assert_eq!(solo.capsules.len(), 1);
    let solo_capsule = &solo.capsules[0];
    // Everything deterministic matches bitwise; only the telemetry
    // histogram enrichment differs (the standalone runner times its own
    // steps, the bare fleet run has no telemetry attached).
    assert_eq!(fleet_capsule.kind, solo_capsule.kind);
    assert_eq!(fleet_capsule.trigger_seq, solo_capsule.trigger_seq);
    assert_eq!(fleet_capsule.trigger_stamp, solo_capsule.trigger_stamp);
    assert_eq!(fleet_capsule.incident, solo_capsule.incident);
    assert_eq!(fleet_capsule.records, solo_capsule.records);
}
