//! # roboads-obs — zero-dependency observability for the RoboADS pipeline
//!
//! The paper's whole evaluation is about *observable* detector behavior
//! — mode probabilities, anomaly statistics, detection delay — yet a
//! deployed estimator bank is easy to run as a black box. This crate is
//! the workspace's telemetry substrate: spans (timed pipeline stages),
//! structured events (alarms, re-anchors), and a metrics registry
//! (counters, gauges, log-linear histograms with p50/p95/p99), all in
//! plain `std` so the tier-1 build resolves with no registry access.
//!
//! Three layers:
//!
//! * [`MetricsRegistry`] / [`Counter`] / [`Gauge`] / [`Histogram`] —
//!   always-on numeric instruments with a lock-free, allocation-free
//!   record path (see `metrics` module docs for the invariant),
//! * [`Sink`] — where spans and events go: [`NoopSink`] (default,
//!   disabled, near-zero cost), [`RingBufferSink`] (flight recorder),
//!   [`WriterSink`] (JSONL to any `io::Write`),
//! * [`Telemetry`] — the cheap-to-clone context the detection pipeline
//!   threads through engine, decision maker and simulation runner.
//!
//! ```
//! use roboads_obs::{RingBufferSink, Telemetry};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingBufferSink::new(1024));
//! let telemetry = Telemetry::new(ring.clone());
//!
//! let step_latency = telemetry.metrics().histogram("sim.step_latency_s");
//! {
//!     let _span = telemetry.span("engine.step");
//!     step_latency.record(0.0004);
//! }
//! assert_eq!(ring.spans()[0].name, "engine.step");
//! assert_eq!(step_latency.count(), 1);
//! ```

pub mod expose;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod telemetry;
pub mod wire;

pub use expose::{render_snapshot, PrometheusText};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use recorder::SlotRing;
pub use sink::{
    EventRecord, Field, NoopSink, RingBufferSink, Sink, SpanRecord, TelemetryRecord, Value,
    WriterSink,
};
pub use telemetry::{
    current_robot, current_worker, robot_scope, set_robot, set_worker, OwnedSpan, RobotScope, Span,
    Telemetry,
};
