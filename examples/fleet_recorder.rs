//! Fleet flight-data recorder walkthrough: run a 64-robot fleet through
//! the IPS-spoofing mission behind the async ingest monitor, inject a
//! monitor-side frame fault on one robot, then
//!
//! 1. dump every sealed incident capsule as self-contained JSONL,
//! 2. replay each capsule through a freshly constructed detector and
//!    verify the reproduction is **bitwise**,
//! 3. print the live fleet health board — once as JSON, once as
//!    Prometheus-style text.
//!
//! ```text
//! cargo run --release --example fleet_recorder
//! ```

use roboads::core::{
    replay_capsule, DeadlinePolicy, IncidentCapsule, RecorderConfig, RoboAdsConfig,
};
use roboads::sim::{evaluation_detector, FleetSimulationBuilder, FrameFault, RobotKind, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const ROBOTS: usize = 64;
    const FAULTED: usize = 3;
    const DURATION: usize = 80;

    // A ring reaching back to detector birth keeps every capsule
    // replayable; pre covers the whole run, post captures the aftermath.
    let recorder = RecorderConfig {
        capacity: 512,
        pre: 512,
        post: 8,
        dt: 0.1,
    };

    println!("running {ROBOTS} robots for {DURATION} ticks (IPS spoofing, frame fault on robot {FAULTED})...");
    let outcome = FleetSimulationBuilder::khepera()
        .scenario(Scenario::ips_spoofing())
        .robots(ROBOTS)
        .seed(7)
        .threads(4)
        .duration(DURATION)
        .ingest(DeadlinePolicy::MarkMissing)
        .frame_fault(FAULTED, 20..24, FrameFault::Drop)
        .recorder(recorder)
        .health(true)
        .run()?;

    // --- 1. Dump the capsules. ---
    let dir = std::env::temp_dir().join("roboads_capsules");
    std::fs::create_dir_all(&dir)?;
    println!(
        "\nsealed {} incident capsules -> {}",
        outcome.capsules.len(),
        dir.display()
    );
    for capsule in &outcome.capsules {
        let path = dir.join(format!(
            "robot{:02}_seq{:04}.jsonl",
            capsule.robot, capsule.trigger_seq
        ));
        std::fs::write(&path, capsule.to_jsonl())?;
    }
    for capsule in outcome.capsules.iter().take(4) {
        let label = capsule
            .incident
            .as_ref()
            .map(|i| i.label.clone())
            .unwrap_or_else(|| "?".into());
        println!(
            "  robot {:2}  {:?}  trigger seq {:3} (stamp {:3})  {} ticks  condition {}",
            capsule.robot,
            capsule.kind,
            capsule.trigger_seq,
            capsule.trigger_stamp,
            capsule.records.len(),
            label,
        );
    }
    if outcome.capsules.len() > 4 {
        println!("  ... and {} more", outcome.capsules.len() - 4);
    }

    // --- 2. Replay every capsule bitwise from its serialized form. ---
    let mut config = RoboAdsConfig::paper_defaults();
    config.threads = Some(1); // the fleet pins intra-step parallelism
    let mut replayed = 0usize;
    for capsule in &outcome.capsules {
        let path = dir.join(format!(
            "robot{:02}_seq{:04}.jsonl",
            capsule.robot, capsule.trigger_seq
        ));
        let parsed = IncidentCapsule::from_jsonl(&std::fs::read_to_string(&path)?)?;
        let mut twin = evaluation_detector(RobotKind::Khepera, &config)?;
        let replay = replay_capsule(&parsed, &mut twin)?;
        assert!(
            replay.is_bitwise(),
            "robot {}: replay diverged at seqs {:?}",
            capsule.robot,
            replay.mismatched_seqs
        );
        replayed += replay.ticks;
    }
    println!(
        "\nreplayed {} capsules ({replayed} ticks) through fresh detectors: all bitwise-identical",
        outcome.capsules.len()
    );

    // --- 3. The live health board. ---
    let health = outcome.health.as_ref().expect("health(true)");
    println!(
        "\nfleet health after tick {}: {} robots, {} alarmed, {} missed deadlines, {} capsules",
        health.ticks(),
        health.robots().len(),
        health.alarmed(),
        health.missed_deadlines(),
        health.capsules(),
    );
    let faulted = &health.robots()[FAULTED];
    println!(
        "robot {FAULTED}: {} missed deadlines, {} fresh / {} held / {} missing ticks",
        faulted.missed_deadlines, faulted.fresh, faulted.held, faulted.missing
    );

    let json = health.to_json();
    println!("\nhealth board JSON ({} bytes), first 200:", json.len());
    println!("  {}...", &json[..200.min(json.len())]);

    let prom = health.to_prometheus();
    println!(
        "\nPrometheus exposition ({} lines), fleet series:",
        prom.lines().count()
    );
    for line in prom.lines().filter(|l| l.starts_with("roboads_fleet_")) {
        println!("  {line}");
    }
    Ok(())
}
