use std::sync::Arc;

use roboads_linalg::{EigenWorkspace, Matrix, Vector};
use roboads_models::{RobotSystem, SensorSlice};
use roboads_obs::wire;
use roboads_obs::{Counter, Gauge, Histogram, Telemetry, Value};
use roboads_pool::Pool;

use crate::config::{ActivationPolicy, Linearization, RoboAdsConfig};
use crate::mode::ModeSet;
use crate::nuise::{nuise_step_into, NuiseInput, NuiseOutput, NuiseWorkspace};
use crate::selector::ModeSelector;
use crate::{CoreError, Result};

/// One iteration's output from the multi-mode estimation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// Per-mode NUISE outputs, in mode-set order.
    pub modes: Vec<NuiseOutput>,
    /// Normalized mode probabilities after this iteration.
    pub probabilities: Vec<f64>,
    /// Index of the selected (most likely) mode `M_k`.
    pub selected: usize,
    /// Per-mode activation flags (DESIGN.md §17): `false` marks a mode
    /// the lazy [`ActivationPolicy::TopK`] schedule parked this
    /// iteration, so its slot in `modes` is **stale** — the decision
    /// maker must treat it as *dormant* (no information), not as
    /// *inconsistent*. Always all-`true` under
    /// [`ActivationPolicy::AlwaysFull`].
    pub active: Vec<bool>,
}

impl EngineOutput {
    /// The selected mode's NUISE output.
    pub fn selected_output(&self) -> &NuiseOutput {
        &self.modes[self.selected]
    }

    /// Whether mode `m` advanced this iteration (its output is live).
    pub fn is_active(&self, m: usize) -> bool {
        self.active.get(m).copied().unwrap_or(true)
    }

    /// Number of modes that advanced this iteration.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }
}

/// Verdict of [`MultiModeEngine::commit_slab_step`]: whether the
/// lane-batched iteration could be committed, or must be replayed on
/// the scalar path because a sleeping bank tripped a wake trigger and
/// its dormant modes have to run within the same iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlabCommit {
    /// The iteration was committed; engine state advanced.
    Committed,
    /// Nothing was committed; the caller must re-run the iteration via
    /// the scalar [`MultiModeEngine::step_in_place`] path, which wakes
    /// the bank mid-step and produces bitwise-identical results for
    /// the modes the slab had already evaluated.
    NeedsScalar,
}

/// The multi-mode estimation engine (Algorithm 1 lines 4–9): a bank of
/// NUISE estimators, one per sensor-condition hypothesis, sharing a
/// single state estimate that is refreshed from the selected mode each
/// iteration.
///
/// The per-mode NUISE runs are independent, so the engine fans them out
/// over a persistent worker pool when [`RoboAdsConfig::threads`]
/// resolves to more than one worker. Results are written into
/// pre-assigned per-mode slots and consumed in mode order, so the
/// parallel output is bitwise identical to the sequential path (see
/// `DESIGN.md`, threading model).
///
/// # Example
///
/// ```
/// use roboads_core::{Linearization, ModeSet, MultiModeEngine};
/// use roboads_linalg::Vector;
/// use roboads_models::presets;
///
/// # fn main() -> Result<(), roboads_core::CoreError> {
/// let system = presets::khepera_system();
/// let modes = ModeSet::one_reference_per_sensor(&system);
/// let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
/// let mut engine = MultiModeEngine::new(
///     system.clone(), modes, x0.clone(),
///     &roboads_core::RoboAdsConfig::paper_defaults(),
/// )?;
///
/// let u = Vector::from_slice(&[0.05, 0.05]);
/// let x1 = system.dynamics().step(&x0, &u);
/// let readings: Vec<_> = (0..3)
///     .map(|i| system.sensor(i).unwrap().measure(&x1))
///     .collect();
/// let out = engine.step(&u, &readings)?;
/// assert_eq!(out.modes.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiModeEngine {
    system: RobotSystem,
    modes: ModeSet,
    selector: ModeSelector,
    linearization: Linearization,
    parsimony_rho: f64,
    compensate: bool,
    state_estimate: Vector,
    state_covariance: Matrix,
    /// Per-mode filter states `(x̂_m, P_m)`. Algorithm 1 line 9 shares a
    /// single estimate across the bank; strict sharing has a *hijack*
    /// failure mode (a mode whose reference is being spoofed can capture
    /// the shared prior, after which every rival hypothesis looks
    /// inconsistent against the poisoned prior — self-reinforcing). Each
    /// mode therefore evolves its own state; hypotheses whose
    /// probability collapses to the floor are re-anchored to the
    /// selected mode's estimate so they recover quickly once their
    /// reference is clean again (see `REANCHOR_FRACTION`).
    mode_states: Vec<(Vector, Matrix)>,
    /// Per-mode NUISE scratch memory, reused every iteration so the
    /// warmed-up hot path performs no heap allocation (see
    /// [`NuiseWorkspace`]).
    workspaces: Vec<NuiseWorkspace>,
    /// Per-mode scratch for the parsimony significance checks,
    /// index-aligned with `workspaces`.
    parsimony_scratch: Vec<ParsimonyScratch>,
    /// χ² critical value for the actuator parsimony check, at the
    /// system's input dimension (computed once at construction).
    actuator_threshold: f64,
    /// Per-mode χ² critical values for the per-testing-sensor parsimony
    /// checks, aligned with each workspace's `testing_slices()`.
    testing_thresholds: Vec<Vec<f64>>,
    /// Worker pool for the per-mode fan-out; `None` runs the exact
    /// sequential path. Shared by clones of the engine (the pool is a
    /// stateless job queue, so sharing is safe).
    pool: Option<Arc<Pool>>,
    telemetry: Telemetry,
    instruments: EngineInstruments,
    /// The last step's output, written in place every iteration:
    /// per-mode NUISE slots, probabilities and selection all reuse this
    /// storage, so a warmed-up sequential engine steps with zero heap
    /// allocations. [`MultiModeEngine::step`] clones it;
    /// [`MultiModeEngine::step_in_place`] hands out a reference.
    output: EngineOutput,
    /// Persistent per-step intermediates (implied-anomaly counts,
    /// parsimony weights, pool result slots), cleared and refilled in
    /// place each iteration.
    counts: Vec<usize>,
    weights: Vec<f64>,
    pool_results: Vec<Result<usize>>,
    /// Resolved fleet slab lane width from
    /// [`RoboAdsConfig::slab_lanes`]: the K of the lane-batched NUISE
    /// path a [`crate::FleetEngine`] may run this engine's bank through
    /// (`1` disables it). Unused by single-robot stepping.
    slab_lanes: usize,
    /// Mode-bank activation schedule (DESIGN.md §17).
    activation: ActivationPolicy,
    /// Per-mode activation flags: `false` parks a hypothesis (its filter
    /// does not advance and its stale output carries no weight). All
    /// `true` while the bank is awake.
    active: Vec<bool>,
    /// Modes advanced *this* iteration: the active set plus, on audit
    /// ticks, one round-robin dormant mode probing for a regime change.
    run_mask: Vec<bool>,
    /// Whether the full bank is running. The bank starts awake and only
    /// [`ActivationPolicy::TopK`] ever puts it to sleep.
    awake: bool,
    /// Latch: [`MultiModeEngine::plan_step`] ran for the current
    /// iteration and the commit has not consumed it yet. Makes planning
    /// idempotent so the fleet slab path's scalar fallback re-runs the
    /// same schedule instead of advancing the audit twice.
    planned: bool,
    /// `true` for modes whose filter state missed the previous
    /// iteration: they must be re-anchored to the shared estimate
    /// before running again (wake or audit).
    mode_stale: Vec<bool>,
    /// Round-robin cursor over dormant modes for the audit schedule.
    audit_cursor: usize,
    /// Quiescent ticks since the last dormant audit.
    audit_countdown: usize,
    /// The dormant mode audited this iteration, if any.
    audit_mode: Option<usize>,
    /// Consecutive quiescent iterations observed while awake.
    quiescent_streak: usize,
    /// Decision-layer feedback: the χ² sliding windows held a positive
    /// after the last iteration (reported by the detector; standalone
    /// engines self-govern on consistency alone).
    external_activity: bool,
    /// Wake scheduled for the next plan, with its reason label.
    pending_wake: Option<&'static str>,
    /// Cached count of `true` flags in `active`.
    active_count: usize,
    /// Committed iterations, used to sample the per-mode histogram
    /// instruments at 1-in-[`HIST_SAMPLE_PERIOD`].
    commits: u64,
}

/// Pre-registered metric handles for the engine hot path.
///
/// Looked up once (registration locks the registry and may allocate);
/// every `step` then records through these handles with nothing but
/// atomic operations, preserving the crate-wide no-alloc record-path
/// invariant documented in `roboads_obs::metrics`.
#[derive(Debug, Clone)]
struct EngineInstruments {
    /// `engine.steps` — successful iterations.
    steps: Counter,
    /// `engine.reanchor.count` — collapsed hypotheses re-anchored.
    reanchors: Counter,
    /// `engine.numeric_failures` — iterations lost to
    /// [`CoreError::Numeric`].
    numeric_failures: Counter,
    /// `engine.all_modes_floored` — iterations in which *every* mode's
    /// parsimony-weighted likelihood sanitized to zero, so the selector
    /// floored the whole bank. Without this counter a fleet-wide filter
    /// blow-up renormalizes to near-uniform probabilities and reads as
    /// healthy uncertainty.
    all_modes_floored: Counter,
    /// `engine.cholesky_failures` — factorization breakdowns observed in
    /// the linalg substrate while this engine was stepping (process-wide
    /// attribution; see `roboads_linalg::health`).
    cholesky_failures: Counter,
    /// `engine.selected_mode` — index of the winning hypothesis.
    selected_mode: Gauge,
    /// `engine.active_modes` — modes advanced per iteration (the full
    /// bank size when awake, `k` + audits when dormant scheduling is
    /// engaged).
    active_modes: Gauge,
    /// `engine.bank_wake.count` — full-bank re-activations.
    bank_wakes: Counter,
    /// `engine.bank_sleep.count` — transitions into lazy scheduling.
    bank_sleeps: Counter,
    /// `engine.mode{m}.probability` — posterior per mode.
    mode_probability: Vec<Histogram>,
    /// `engine.mode{m}.consistency` — innovation-consistency p-value per
    /// mode (the numerical-health signal: a healthy clean run keeps
    /// these well above the re-anchor floor).
    mode_consistency: Vec<Histogram>,
}

impl EngineInstruments {
    fn new(telemetry: &Telemetry, mode_count: usize) -> Self {
        let m = telemetry.metrics();
        EngineInstruments {
            steps: m.counter("engine.steps"),
            reanchors: m.counter("engine.reanchor.count"),
            numeric_failures: m.counter("engine.numeric_failures"),
            all_modes_floored: m.counter("engine.all_modes_floored"),
            cholesky_failures: m.counter("engine.cholesky_failures"),
            selected_mode: m.gauge("engine.selected_mode"),
            active_modes: m.gauge("engine.active_modes"),
            bank_wakes: m.counter("engine.bank_wake.count"),
            bank_sleeps: m.counter("engine.bank_sleep.count"),
            mode_probability: (0..mode_count)
                .map(|i| m.histogram(&format!("engine.mode{i}.probability")))
                .collect(),
            mode_consistency: (0..mode_count)
                .map(|i| m.histogram(&format!("engine.mode{i}.consistency")))
                .collect(),
        }
    }
}

/// Significance level at which an anomaly estimate counts as "implied"
/// for the parsimony prior.
const PARSIMONY_ALPHA: f64 = 0.01;

/// A mode whose probability falls below this fraction of the uniform
/// share has its filter state re-anchored to the selected mode's.
const REANCHOR_FRACTION: f64 = 0.25;

/// Innovation-consistency p-value below which an improbable mode is
/// considered lost (its own reference no longer explains its filter
/// state) and re-anchored.
const REANCHOR_CONSISTENCY: f64 = 1e-4;

/// Consecutive quiescent iterations (χ² windows idle, selected-mode
/// consistency healthy) before a [`ActivationPolicy::TopK`] bank parks
/// its dormant modes. Longer than both decision windows, so the bank
/// never sleeps while a window could still confirm an alarm.
const SLEEP_AFTER_QUIESCENT: usize = 12;

/// Active-mode consistency p-value below which the lazy bank wakes
/// mid-step ("residual growth"): a calibrated filter's p-values are
/// roughly uniform on clean data, so a false wake costs ~0.1 % per
/// active mode per tick, while any Table II attack magnitude drives the
/// affected mode's consistency many orders of magnitude below this in
/// its first anomalous iteration.
const WAKE_CONSISTENCY: f64 = 1e-3;

/// Per-mode probability/consistency histograms are recorded once every
/// this many commits. Recording them every step (2 CAS-loop f64
/// histogram ops × modes) dominated the live-sink telemetry overhead
/// (~10.6 % of a detector step in PR 7's `BENCH_perf.json` against the
/// ~4 % measured when the instruments were introduced); sampling keeps
/// the distributions while restoring the advertised budget.
const HIST_SAMPLE_PERIOD: u64 = 16;

/// χ² critical value for the parsimony significance checks. Evaluated
/// only at construction — the engine caches the results per mode
/// (`actuator_threshold`, `testing_thresholds`) so the quantile search
/// stays out of the per-iteration hot path.
fn parsimony_threshold(dof: usize) -> Result<f64> {
    roboads_stats::ChiSquared::new(dof)
        .and_then(|chi| chi.critical_value(PARSIMONY_ALPHA))
        .map_err(|e| CoreError::Numeric(e.to_string()))
}

/// Per-mode scratch buffers for the parsimony significance checks, so
/// [`implied_anomaly_count`] runs without heap allocation. Sized once at
/// construction from the mode's `testing_slices()`.
#[derive(Debug, Clone)]
pub(crate) struct ParsimonyScratch {
    /// Pseudo-inverse buffers for the actuator anomaly covariance
    /// (input dimension).
    actuator_eig: EigenWorkspace,
    actuator_pinv: Matrix,
    /// Per-testing-slice buffers, index-aligned with `testing_slices()`.
    slices: Vec<SliceScratch>,
}

#[derive(Debug, Clone)]
struct SliceScratch {
    eig: EigenWorkspace,
    pinv: Matrix,
    d: Vector,
    cov: Matrix,
}

impl ParsimonyScratch {
    pub(crate) fn new(input_dim: usize, testing_slices: &[SensorSlice]) -> Self {
        ParsimonyScratch {
            actuator_eig: EigenWorkspace::new(input_dim),
            actuator_pinv: Matrix::zeros(input_dim, input_dim),
            slices: testing_slices
                .iter()
                .map(|s| SliceScratch {
                    eig: EigenWorkspace::new(s.len),
                    pinv: Matrix::zeros(s.len, s.len),
                    d: Vector::zeros(s.len),
                    cov: Matrix::zeros(s.len, s.len),
                })
                .collect(),
        }
    }
}

/// Number of active misbehaviors a mode's explanation of this
/// iteration implies: one per testing sensor whose anomaly estimate
/// is significant at the [`PARSIMONY_ALPHA`] level, plus one when
/// the mode's own actuator anomaly estimate is — a hypothesis that
/// needs a phantom input to absorb a sensor corruption must pay for
/// it. (The *visibility* of a real actuator attack varies with
/// reference quality, which would bias this weight toward blind
/// modes; the decision maker compensates by sourcing the actuator
/// test from the most precise innovation-consistent mode rather
/// than the selected one.)
///
/// Runs entirely in `scratch` (workspace pseudo-inverses and in-place
/// segment/block extraction), producing statistics bitwise identical to
/// the allocating `segment`/`block`/`pseudo_inverse` formulation.
pub(crate) fn implied_anomaly_count(
    out: &NuiseOutput,
    actuator_threshold: f64,
    testing_slices: &[SensorSlice],
    testing_thresholds: &[f64],
    scratch: &mut ParsimonyScratch,
) -> Result<usize> {
    let mut count = 0;
    // Own-actuator significance.
    out.actuator_covariance
        .pseudo_inverse_into(&mut scratch.actuator_eig, &mut scratch.actuator_pinv)?;
    let a_stat = out
        .actuator_anomaly
        .quadratic_form(&scratch.actuator_pinv)
        .map_err(|e| CoreError::Numeric(e.to_string()))?;
    if a_stat > actuator_threshold {
        count += 1;
    }
    // Per-testing-sensor significance.
    for ((slice, &threshold), s) in testing_slices
        .iter()
        .zip(testing_thresholds)
        .zip(&mut scratch.slices)
    {
        out.sensor_anomaly.segment_into(slice.offset, &mut s.d);
        out.sensor_covariance
            .block_into(slice.offset, slice.offset, &mut s.cov);
        s.cov.pseudo_inverse_into(&mut s.eig, &mut s.pinv)?;
        let stat =
            s.d.quadratic_form(&s.pinv)
                .map_err(|e| CoreError::Numeric(e.to_string()))?;
        if stat > threshold {
            count += 1;
        }
    }
    Ok(count)
}

/// Per-step work proxy below which `threads: None` resolves to the
/// sequential intra-step path: pool dispatch costs tens of microseconds
/// per step, so a small bank (every built-in mode set on the evaluation
/// robots) loses by fanning modes out. The proxy sums `(n + m₂)³` over
/// the bank — the cube of each mode's dominant matrix side.
const INTRA_STEP_WORK_THRESHOLD: f64 = 50_000.0;

/// Default fleet slab lane width when [`RoboAdsConfig::slab_lanes`] is
/// `None`: wide enough for full AVX-512 `f64` lanes and two AVX2
/// vectors per slab element, and the width the fleet benchmarks are
/// tuned at.
pub(crate) const DEFAULT_SLAB_LANES: usize = 8;

/// Estimated per-step floating-point work of a mode bank, in
/// cubed-matrix-side units (see [`INTRA_STEP_WORK_THRESHOLD`]).
fn intra_step_work(system: &RobotSystem, modes: &ModeSet) -> f64 {
    let n = system.state_dim();
    modes
        .modes()
        .iter()
        .map(|m| {
            let m2 = system.subset_dim(m.testing());
            ((n + m2) as f64).powi(3)
        })
        .sum()
}

impl MultiModeEngine {
    /// Creates an engine from a validated mode set.
    ///
    /// The mode set is validated at `(x0, u ≈ 0.1·𝟙)` — a gentle forward
    /// operating point at which all built-in robots have full input
    /// rank — so degenerate hypotheses fail fast at construction rather
    /// than mid-mission.
    ///
    /// Construction also resolves the NUISE fan-out width from
    /// [`RoboAdsConfig::threads`] (never more workers than modes) and,
    /// when it exceeds one, spawns the persistent worker pool.
    ///
    /// # Errors
    ///
    /// Returns configuration and degenerate-mode errors; see
    /// [`ModeSet::validate`].
    pub fn new(
        system: RobotSystem,
        modes: ModeSet,
        initial_state: Vector,
        config: &RoboAdsConfig,
    ) -> Result<Self> {
        config.validate()?;
        let initial_covariance = config.initial_covariance;
        let mode_floor = config.mode_floor;
        let linearization = config.linearization.clone();
        if initial_state.len() != system.state_dim() {
            return Err(CoreError::InvalidConfig {
                name: "initial_state",
                value: format!(
                    "length {} for state dimension {}",
                    initial_state.len(),
                    system.state_dim()
                ),
            });
        }
        if !(initial_covariance.is_finite() && initial_covariance > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "initial_covariance",
                value: format!("{initial_covariance}"),
            });
        }
        let nominal_u = Vector::from_fn(system.input_dim(), |_| 0.1);
        modes.validate(&system, &initial_state, &nominal_u)?;
        let selector =
            ModeSelector::uniform(modes.len(), mode_floor)?.with_mixing(config.mode_mixing);
        let n = system.state_dim();
        let p0 = Matrix::identity(n) * initial_covariance;
        let mode_states = vec![(initial_state.clone(), p0.clone()); modes.len()];
        let workspaces: Vec<NuiseWorkspace> = modes
            .modes()
            .iter()
            .map(|mode| NuiseWorkspace::new(&system, mode))
            .collect();
        let actuator_threshold = parsimony_threshold(system.input_dim().max(1))?;
        let mut testing_thresholds = Vec::with_capacity(workspaces.len());
        for ws in &workspaces {
            let per_slice: Result<Vec<f64>> = ws
                .testing_slices()
                .iter()
                .map(|slice| parsimony_threshold(slice.len))
                .collect();
            testing_thresholds.push(per_slice?);
        }
        // `threads: None` is a request for the engine's judgment, not
        // for maximum width: below the dispatch-cost threshold the
        // sequential path wins outright (PR-measured pool dispatch is
        // ~20 µs/step against ~2 µs per warm mode), so small banks run
        // sequential and only genuinely heavy banks fan out.
        let configured = config.threads.unwrap_or_else(|| {
            if intra_step_work(&system, &modes) < INTRA_STEP_WORK_THRESHOLD {
                1
            } else {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            }
        });
        let threads = configured.min(modes.len()).max(1);
        let pool = (threads > 1).then(|| {
            Arc::new(Pool::with_thread_setup(threads, |i| {
                roboads_obs::set_worker(i as u32 + 1)
            }))
        });
        let telemetry = Telemetry::disabled();
        let instruments = EngineInstruments::new(&telemetry, modes.len());
        let parsimony_scratch: Vec<ParsimonyScratch> = workspaces
            .iter()
            .map(|ws| ParsimonyScratch::new(system.input_dim(), ws.testing_slices()))
            .collect();
        let output = EngineOutput {
            modes: workspaces.iter().map(NuiseWorkspace::new_output).collect(),
            probabilities: vec![0.0; modes.len()],
            selected: 0,
            active: vec![true; modes.len()],
        };
        let mode_count = modes.len();
        Ok(MultiModeEngine {
            system,
            modes,
            selector,
            linearization,
            parsimony_rho: config.parsimony_rho,
            compensate: config.compensate_actuator_anomalies,
            state_estimate: initial_state,
            state_covariance: p0,
            mode_states,
            workspaces,
            parsimony_scratch,
            actuator_threshold,
            testing_thresholds,
            pool,
            telemetry,
            instruments,
            output,
            counts: Vec::with_capacity(mode_count),
            weights: Vec::with_capacity(mode_count),
            pool_results: (0..mode_count).map(|_| Ok(0)).collect(),
            slab_lanes: config.slab_lanes.unwrap_or(DEFAULT_SLAB_LANES),
            activation: config.activation,
            active: vec![true; mode_count],
            run_mask: vec![true; mode_count],
            awake: true,
            planned: false,
            mode_stale: vec![false; mode_count],
            audit_cursor: 0,
            audit_countdown: 0,
            audit_mode: None,
            quiescent_streak: 0,
            external_activity: false,
            pending_wake: None,
            active_count: mode_count,
            commits: 0,
        })
    }

    /// Replaces the telemetry context (default: disabled sink with a
    /// private registry) and re-registers the engine's instruments in
    /// the new registry. Call before the first [`MultiModeEngine::step`]
    /// so no samples land in the discarded registry.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.instruments = EngineInstruments::new(&telemetry, self.modes.len());
        self.telemetry = telemetry;
    }

    /// The telemetry context in use.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The system description.
    pub fn system(&self) -> &RobotSystem {
        &self.system
    }

    /// The mode set.
    pub fn modes(&self) -> &ModeSet {
        &self.modes
    }

    /// Effective NUISE fan-out width: the number of pool workers, or `1`
    /// on the sequential path.
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// Current shared state estimate `x̂_{k|k}`.
    pub fn state_estimate(&self) -> &Vector {
        &self.state_estimate
    }

    /// Current shared state covariance `P^x_k`.
    pub fn state_covariance(&self) -> &Matrix {
        &self.state_covariance
    }

    /// Current normalized mode probabilities.
    pub fn probabilities(&self) -> &[f64] {
        self.selector.probabilities()
    }

    /// Mode `m`'s own filter state `(x̂_m, P_m)` (diagnostics; see the
    /// `mode_states` field docs for why each hypothesis keeps one).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn mode_state(&self, m: usize) -> (&Vector, &Matrix) {
        let (x, p) = &self.mode_states[m];
        (x, p)
    }

    /// Number of currently active (non-dormant) modes. Equals the bank
    /// size under [`ActivationPolicy::AlwaysFull`] or while the lazy
    /// bank is awake.
    pub fn active_modes(&self) -> usize {
        self.active_count
    }

    /// Whether the full bank is running (`true` until a
    /// [`ActivationPolicy::TopK`] schedule observes enough quiescence
    /// to park its dormant modes).
    pub fn bank_awake(&self) -> bool {
        self.awake
    }

    /// The configured activation policy.
    pub fn activation(&self) -> ActivationPolicy {
        self.activation
    }

    /// Per-mode activation flags (index-aligned with the mode set).
    pub(crate) fn active_mask(&self) -> &[bool] {
        &self.active
    }

    /// Whether mode `m` advances this iteration (fleet slab lane
    /// masking; valid after [`MultiModeEngine::plan_step`]).
    pub(crate) fn runs_mode(&self, m: usize) -> bool {
        self.run_mask[m]
    }

    /// Decision-layer feedback closing the χ²-window wake trigger: the
    /// detector reports after each verdict whether either sliding
    /// window currently holds a positive. Any activity vetoes
    /// quiescence immediately and schedules a full-bank wake for the
    /// next iteration if the bank is asleep. Standalone engines that
    /// never call this self-govern on consistency alone.
    pub(crate) fn note_decision_activity(&mut self, windows_active: bool) {
        self.external_activity = windows_active;
        if windows_active {
            self.quiescent_streak = 0;
            if !self.awake && self.pending_wake.is_none() {
                self.pending_wake = Some("chi2_window");
            }
        }
    }

    /// Decides which modes advance this iteration (DESIGN.md §17).
    /// Idempotent until the iteration commits, so the fleet may call it
    /// before loading slab lanes and the scalar fallback re-runs the
    /// identical schedule. While the bank is asleep this (a) consumes a
    /// pending χ²-window wake, or (b) advances the audit countdown and,
    /// on audit ticks, re-anchors the next dormant mode (round-robin)
    /// to the shared estimate so it can probe the current readings from
    /// a live prior.
    pub(crate) fn plan_step(&mut self) {
        if self.planned {
            return;
        }
        self.planned = true;
        self.audit_mode = None;
        if self.awake {
            return;
        }
        if let Some(reason) = self.pending_wake.take() {
            self.wake(reason);
            self.run_mask.fill(true);
            return;
        }
        for (r, &a) in self.run_mask.iter_mut().zip(&self.active) {
            *r = a;
        }
        let ActivationPolicy::TopK { audit_period, .. } = self.activation else {
            return;
        };
        self.audit_countdown += 1;
        if self.audit_countdown < audit_period {
            return;
        }
        self.audit_countdown = 0;
        // Round-robin over dormant modes, starting after the last
        // audited index so every hypothesis gets its turn.
        let n = self.modes.len();
        for offset in 1..=n {
            let m = (self.audit_cursor + offset) % n;
            if self.active[m] {
                continue;
            }
            self.audit_cursor = m;
            self.audit_mode = Some(m);
            self.run_mask[m] = true;
            if self.mode_stale[m] {
                // Re-sync: the dormant filter last ran ticks ago; audit
                // from the selected mode's current estimate instead.
                self.mode_states[m].0.copy_from(&self.state_estimate);
                self.mode_states[m].1.copy_from(&self.state_covariance);
                self.mode_stale[m] = false;
            }
            break;
        }
    }

    /// Re-activates the full bank: every dormant mode whose filter
    /// state went stale is re-anchored to the shared (selected-mode)
    /// estimate — the same machinery floor-collapsed hypotheses use —
    /// and its probability stays at the selector floor until its first
    /// live update. Does not touch `run_mask`; callers decide whether
    /// the newly woken modes still run within the current iteration.
    fn wake(&mut self, reason: &'static str) {
        for m in 0..self.active.len() {
            if !self.active[m] {
                self.active[m] = true;
                if self.mode_stale[m] {
                    self.mode_states[m].0.copy_from(&self.state_estimate);
                    self.mode_states[m].1.copy_from(&self.state_covariance);
                    self.mode_stale[m] = false;
                }
            }
        }
        self.awake = true;
        self.active_count = self.active.len();
        self.quiescent_streak = 0;
        self.audit_countdown = 0;
        self.instruments.bank_wakes.incr();
        self.instruments.active_modes.set(self.active_count as f64);
        self.telemetry.event("engine.bank_wake", || {
            vec![("reason", Value::Text(reason.to_string()))]
        });
    }

    /// Parks every hypothesis outside the retained set: the top-`k`
    /// most probable modes, the selected mode, and the most precise
    /// actuator source (smallest actuator-anomaly covariance trace) —
    /// the mode the decision maker would source the actuator test from,
    /// kept live so that test is identical to the full bank's while
    /// quiescent.
    fn sleep(&mut self) {
        let ActivationPolicy::TopK { k, .. } = self.activation else {
            return;
        };
        let n = self.modes.len();
        if k >= n {
            return;
        }
        self.active.fill(false);
        self.active[self.output.selected] = true;
        let precise = self
            .output
            .modes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let ta = a.actuator_covariance.trace();
                let tb = b.actuator_covariance.trace();
                ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(m, _)| m)
            .unwrap_or(self.output.selected);
        self.active[precise] = true;
        let mut count = self.active.iter().filter(|&&a| a).count();
        while count < k {
            let next = self
                .output
                .probabilities
                .iter()
                .enumerate()
                .filter(|(m, _)| !self.active[*m])
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(m, _)| m);
            match next {
                Some(m) => self.active[m] = true,
                None => break,
            }
            count += 1;
        }
        self.awake = false;
        self.active_count = count;
        self.quiescent_streak = 0;
        self.audit_countdown = 0;
        self.instruments.bank_sleeps.incr();
        self.instruments.active_modes.set(count as f64);
        let active_count = count as u64;
        self.telemetry.event("engine.bank_sleep", || {
            vec![
                ("reason", Value::Text("quiescent".to_string())),
                ("active", Value::U64(active_count)),
            ]
        });
    }

    /// Edge-triggered wake conditions evaluated on the current
    /// iteration's live outputs (weights already computed): residual
    /// growth on any active mode, or an audited dormant mode beating
    /// the selected mode's parsimony weight by the configured margin.
    fn lazy_wake_reason(&self) -> Option<&'static str> {
        let ActivationPolicy::TopK { wake_margin, .. } = self.activation else {
            return None;
        };
        for (m, out) in self.output.modes.iter().enumerate() {
            if self.active[m] && out.consistency < WAKE_CONSISTENCY {
                return Some("consistency");
            }
        }
        if let Some(a) = self.audit_mode {
            if self.weights[a] > wake_margin * self.weights[self.selector.selected()] {
                return Some("audit");
            }
        }
        None
    }

    /// Parsimony weighting of the modes that ran this iteration
    /// (dormant modes weigh zero; the selector pins them at the floor).
    fn compute_weights(&mut self) {
        self.weights.clear();
        let _parsimony_span = self.telemetry.span("engine.parsimony");
        for (m, (out, count)) in self.output.modes.iter().zip(&self.counts).enumerate() {
            let w = if self.run_mask[m] {
                out.consistency * self.parsimony_rho.powi(*count as i32)
            } else {
                0.0
            };
            self.weights.push(w);
        }
    }

    /// Activation bookkeeping after a successful commit: consume the
    /// plan, mark skipped filters stale, and fold this iteration into
    /// the quiescence streak (sleeping once it is long enough). Pooled
    /// engines never sleep — the fan-out already assumes a heavy bank
    /// where every mode is in contention.
    fn update_activation_after_commit(&mut self) {
        self.planned = false;
        if matches!(self.activation, ActivationPolicy::AlwaysFull) || self.pool.is_some() {
            return;
        }
        for (stale, &ran) in self.mode_stale.iter_mut().zip(&self.run_mask) {
            *stale = !ran;
        }
        if !self.awake {
            return;
        }
        let quiescent = !self.external_activity
            && !self.selector.all_floored()
            && self.output.modes[self.output.selected].consistency >= WAKE_CONSISTENCY;
        if quiescent {
            self.quiescent_streak += 1;
            if self.quiescent_streak >= SLEEP_AFTER_QUIESCENT {
                self.sleep();
            }
        } else {
            self.quiescent_streak = 0;
        }
    }

    /// Runs one control iteration: NUISE under every mode from its own
    /// filter state, parsimony-weighted mode selection, reporting-state
    /// refresh from the winner, and floor-triggered re-anchoring of
    /// collapsed hypotheses (Algorithm 1 lines 4–9 with the per-mode
    /// state refinement documented on `mode_states`).
    ///
    /// # Errors
    ///
    /// Propagates NUISE errors ([`CoreError::BadReadings`],
    /// [`CoreError::Numeric`]). On error the shared state is left
    /// unchanged, so a transiently bad iteration (e.g. NaN readings) can
    /// simply be skipped by the caller.
    pub fn step(&mut self, u_prev: &Vector, readings: &[Vector]) -> Result<EngineOutput> {
        self.step_in_place(u_prev, readings)?;
        Ok(self.output.clone())
    }

    /// Like [`MultiModeEngine::step`] but hands back a reference to the
    /// engine-owned output instead of cloning it. A warmed-up engine on
    /// the sequential path performs zero heap allocations per call (the
    /// pool path still allocates its per-scope job boxes — a
    /// mode-count-independent constant). The reference is valid until
    /// the next step.
    ///
    /// # Errors
    ///
    /// As [`MultiModeEngine::step`]: the shared filter state is left
    /// unchanged, but the engine-owned output buffer may hold partial
    /// results from the failed iteration.
    pub fn step_in_place(&mut self, u_prev: &Vector, readings: &[Vector]) -> Result<&EngineOutput> {
        let _step_span = self.telemetry.owned_span("engine.step");
        let health_before = roboads_linalg::health::snapshot();
        let result = self.step_inner(u_prev, readings);
        let breakdowns = roboads_linalg::health::snapshot()
            .since(&health_before)
            .cholesky_failures;
        if breakdowns > 0 {
            self.instruments.cholesky_failures.add(breakdowns);
        }
        match &result {
            Ok(()) => self.instruments.steps.incr(),
            Err(CoreError::Numeric(msg)) => {
                self.instruments.numeric_failures.incr();
                let msg = msg.clone();
                self.telemetry.event("engine.numeric_failure", || {
                    vec![("error", Value::Text(msg))]
                });
            }
            Err(_) => {}
        }
        result?;
        Ok(&self.output)
    }

    /// The output of the last successful step — the same storage
    /// [`MultiModeEngine::step_in_place`] returns. Unspecified before
    /// the first successful step or after a failed one.
    pub fn last_output(&self) -> &EngineOutput {
        &self.output
    }

    fn step_inner(&mut self, u_prev: &Vector, readings: &[Vector]) -> Result<()> {
        let mode_count = self.modes.len();
        self.plan_step();

        // NUISE fan-out. Each mode writes into its own pre-assigned
        // workspace and output slot (persistent across steps), so the
        // parallel path touches no shared mutable state and the results
        // — consumed strictly in mode order below — are bitwise
        // identical to the sequential path's.
        {
            let system = &self.system;
            let modes = self.modes.modes();
            let mode_states = &self.mode_states;
            let linearization = &self.linearization;
            let compensate = self.compensate;
            let telemetry = &self.telemetry;
            let actuator_threshold = self.actuator_threshold;
            let testing_thresholds = &self.testing_thresholds;
            let workspaces = &mut self.workspaces;
            let scratches = &mut self.parsimony_scratch;
            let outputs = &mut self.output.modes;
            let counts = &mut self.counts;

            let run_mode = |m: usize,
                            ws: &mut NuiseWorkspace,
                            scratch: &mut ParsimonyScratch,
                            out: &mut NuiseOutput| {
                {
                    let _mode_span = telemetry.span("engine.nuise_mode");
                    let (x_m, p_m) = &mode_states[m];
                    nuise_step_into(
                        NuiseInput {
                            system,
                            mode: &modes[m],
                            x_prev: x_m,
                            p_prev: p_m,
                            u_prev,
                            readings,
                            linearization,
                            compensate,
                        },
                        ws,
                        out,
                    )?;
                }
                implied_anomaly_count(
                    out,
                    actuator_threshold,
                    ws.testing_slices(),
                    &testing_thresholds[m],
                    scratch,
                )
            };

            counts.clear();
            match &self.pool {
                None => {
                    // Sequential path: iterate in mode order with the
                    // seed's short-circuit on the first failure. Modes
                    // the activation schedule parked are skipped (their
                    // count slot is a placeholder the zero weight makes
                    // irrelevant); under `AlwaysFull` every mode runs.
                    let run_mask = &self.run_mask;
                    for (m, ((ws, scratch), out)) in workspaces
                        .iter_mut()
                        .zip(scratches.iter_mut())
                        .zip(outputs.iter_mut())
                        .enumerate()
                    {
                        if run_mask[m] {
                            counts.push(run_mode(m, ws, scratch, out)?);
                        } else {
                            counts.push(0);
                        }
                    }
                }
                Some(pool) => {
                    let results = &mut self.pool_results;
                    for r in results.iter_mut() {
                        *r = Ok(0);
                    }
                    // One contiguous chunk of modes per worker: a NUISE
                    // step is microseconds of work, so per-mode jobs
                    // would drown in queue wakeups. Chunking keeps the
                    // dispatch overhead at one job per worker while each
                    // mode still writes only its own pre-assigned slots.
                    let chunk = mode_count.div_ceil(pool.threads());
                    pool.scoped(|scope| {
                        for (chunk_idx, (((ws_chunk, sc_chunk), out_chunk), res_chunk)) in
                            workspaces
                                .chunks_mut(chunk)
                                .zip(scratches.chunks_mut(chunk))
                                .zip(outputs.chunks_mut(chunk))
                                .zip(results.chunks_mut(chunk))
                                .enumerate()
                        {
                            let run_mode = &run_mode;
                            let base = chunk_idx * chunk;
                            scope.execute(move || {
                                for (j, (((ws, scratch), out), slot)) in ws_chunk
                                    .iter_mut()
                                    .zip(sc_chunk.iter_mut())
                                    .zip(out_chunk.iter_mut())
                                    .zip(res_chunk.iter_mut())
                                    .enumerate()
                                {
                                    *slot = run_mode(base + j, ws, scratch, out);
                                }
                            });
                        }
                    });
                    // Every job ran, but the reported failure is the
                    // first in mode order — the same error the
                    // sequential path would have returned.
                    for r in results.iter_mut() {
                        counts.push(std::mem::replace(r, Ok(0))?);
                    }
                }
            }
        };

        self.compute_weights();
        if !self.awake {
            if let Some(reason) = self.lazy_wake_reason() {
                // Wake *within* this iteration: the dormant modes
                // re-anchor to the shared estimate from the previous
                // tick — still pre-anomaly — and run against the same
                // readings, so the full bank weighs in on the very
                // iteration that triggered the wake.
                self.wake(reason);
                for m in 0..mode_count {
                    if self.run_mask[m] {
                        continue;
                    }
                    self.run_mask[m] = true;
                    let (x_m, p_m) = &self.mode_states[m];
                    let out = &mut self.output.modes[m];
                    {
                        let _mode_span = self.telemetry.span("engine.nuise_mode");
                        nuise_step_into(
                            NuiseInput {
                                system: &self.system,
                                mode: &self.modes.modes()[m],
                                x_prev: x_m,
                                p_prev: p_m,
                                u_prev,
                                readings,
                                linearization: &self.linearization,
                                compensate: self.compensate,
                            },
                            &mut self.workspaces[m],
                            out,
                        )?;
                    }
                    self.counts[m] = implied_anomaly_count(
                        out,
                        self.actuator_threshold,
                        self.workspaces[m].testing_slices(),
                        &self.testing_thresholds[m],
                        &mut self.parsimony_scratch[m],
                    )?;
                }
                self.compute_weights();
            }
        }
        self.select_and_commit()
    }

    /// The tail of a control iteration, shared by the per-robot path
    /// ([`MultiModeEngine::step_inner`]) and the fleet's lane-batched
    /// slab path ([`MultiModeEngine::commit_slab_step`]): mode
    /// selection from the parsimony weights
    /// ([`MultiModeEngine::compute_weights`] must have run) over the
    /// per-mode outputs already sitting in `self.output.modes`,
    /// reporting-state refresh, and re-anchoring. Both producers
    /// deliver bitwise-identical outputs and counts, so everything
    /// downstream of here is producer-independent.
    ///
    /// Mode probabilities are updated with the dimension-free
    /// consistency p-values, not the raw densities: densities of
    /// innovations with different dimensionality are not comparable
    /// and would permanently lock the selector onto whichever mode
    /// has the largest density constant (see `nuise::mode_likelihood`).
    ///
    /// Each consistency is further weighted by a *parsimony prior*
    /// ρ^(implied anomaly count). A sensor corruption lying in
    /// range(C₂·G) of its own reference mode is absorbed by NUISE
    /// step 1 as a phantom actuator anomaly, leaving that mode's
    /// innovation clean — the classic sensor/actuator ambiguity. But
    /// such a mode *implies more active misbehaviors* (the dragged
    /// state estimate makes every clean testing sensor look corrupted
    /// too, plus the phantom input), and the paper's threat model
    /// (§II-B) holds coordinated multi-workflow attacks to be hard.
    /// Weighting each hypothesis by ρ per implied anomaly encodes that
    /// prior; a genuine actuator attack costs every mode the same ρ¹,
    /// leaving their ranking untouched.
    fn select_and_commit(&mut self) -> Result<()> {
        let selected = {
            let _select_span = self.telemetry.span("engine.select");
            if self.awake {
                self.selector.update(&self.weights)?
            } else {
                // Dormant modes carry no information this iteration:
                // the partial update pins them at the floor instead of
                // letting the mixing prior leak mass back into
                // hypotheses nobody evaluated.
                self.selector.update_partial(&self.weights, &self.active)?
            }
        };
        if self.selector.all_floored() {
            // No hypothesis explains this iteration at all (every
            // parsimony-weighted consistency underflowed to zero). The
            // selector's floor keeps the bank recoverable, but the
            // near-uniform output must not pass as healthy uncertainty.
            self.instruments.all_modes_floored.incr();
            let selected_consistency = self.output.modes[selected].consistency;
            self.telemetry.event("engine.all_modes_floored", || {
                vec![
                    ("selected", Value::U64(selected as u64)),
                    ("consistency", Value::F64(selected_consistency)),
                ]
            });
        }

        self.state_estimate
            .copy_from(&self.output.modes[selected].state_estimate);
        self.state_covariance
            .copy_from(&self.output.modes[selected].state_covariance);
        // Advance each mode's own filter; re-anchor collapsed hypotheses
        // to the winner so they can re-converge once clean.
        let reanchor_below = REANCHOR_FRACTION / self.modes.len() as f64;
        self.output.probabilities.clear();
        self.output
            .probabilities
            .extend_from_slice(self.selector.probabilities());
        self.output.active.clear();
        self.output.active.extend_from_slice(&self.active);
        self.output.selected = selected;
        let _reanchor_span = self.telemetry.span("engine.reanchor");
        for (m, state) in self.mode_states.iter_mut().enumerate() {
            // Re-anchor hypotheses that are both improbable *and*
            // innovation-inconsistent: their own filter no longer
            // explains their reference readings (e.g. the reference was
            // being spoofed), so they restart from the winner. A
            // consistent-but-disfavored mode keeps its own (typically
            // tighter) filter state. Modes the activation schedule
            // skipped this iteration have stale outputs and parked
            // filters: they are left untouched (dormant ≠ inconsistent)
            // and re-sync through the wake/audit re-anchor instead.
            if !self.run_mask[m] {
                continue;
            }
            let probability = self.output.probabilities[m];
            let consistency = self.output.modes[m].consistency;
            if m != selected && probability < reanchor_below && consistency < REANCHOR_CONSISTENCY {
                state.0.copy_from(&self.state_estimate);
                state.1.copy_from(&self.state_covariance);
                self.instruments.reanchors.incr();
                self.telemetry.event("engine.mode_reanchored", || {
                    vec![
                        ("mode", Value::U64(m as u64)),
                        ("probability", Value::F64(probability)),
                        ("consistency", Value::F64(consistency)),
                    ]
                });
            } else {
                state.0.copy_from(&self.output.modes[m].state_estimate);
                state.1.copy_from(&self.output.modes[m].state_covariance);
            }
        }
        drop(_reanchor_span);

        self.instruments.selected_mode.set(selected as f64);
        // Per-mode distribution instruments are *sampled*: recording 2
        // histogram values per mode per step was the dominant term in
        // the live-sink telemetry overhead (see `HIST_SAMPLE_PERIOD`).
        // Gauges and counters (plain atomic stores) stay per-step. The
        // phase puts a sample on the *first* commit, so any stepped
        // engine's histograms are non-empty (an all-NaN empty summary
        // would poison incident-capsule equality).
        self.commits = self.commits.wrapping_add(1);
        if self.commits % HIST_SAMPLE_PERIOD == 1 {
            for (m, out) in self.output.modes.iter().enumerate() {
                if !self.run_mask[m] {
                    continue;
                }
                self.instruments.mode_probability[m].record(self.output.probabilities[m]);
                self.instruments.mode_consistency[m].record(out.consistency);
            }
        }
        self.update_activation_after_commit();

        Ok(())
    }

    /// Completes a control iteration whose per-mode NUISE outputs were
    /// produced *externally* — by the fleet's lane-batched slab path
    /// scattering into [`MultiModeEngine::mode_output_mut`] — with the
    /// matching implied-anomaly `counts` (one per mode, in mode order).
    /// Runs the same selection/commit tail and instrument accounting as
    /// [`MultiModeEngine::step_in_place`], so the resulting engine state
    /// is indistinguishable from a scalar step that produced the same
    /// outputs. The per-mode NUISE spans are absent on this path (the
    /// batched kernels cross robot boundaries); the `engine.step` span
    /// and all counters are preserved.
    ///
    /// A sleeping engine whose fresh active-mode results trip a wake
    /// trigger cannot be completed here: the dormant modes must run
    /// *this* iteration (the scalar path's mid-step wake), and the slab
    /// has already consumed the inputs. In that case nothing is
    /// committed — the filter states, selector, and activation state
    /// are exactly as they were before the call — and
    /// [`SlabCommit::NeedsScalar`] tells the fleet to re-run the whole
    /// iteration through [`MultiModeEngine::step_in_place`]. Because
    /// the slab kernels are bitwise-pinned to the scalar kernels, the
    /// re-run reproduces the active modes' outputs exactly and then
    /// wakes the rest of the bank, so the committed state matches a
    /// robot that was never batched.
    pub(crate) fn commit_slab_step<I: IntoIterator<Item = usize>>(
        &mut self,
        counts: I,
    ) -> Result<SlabCommit> {
        let _step_span = self.telemetry.owned_span("engine.step");
        let health_before = roboads_linalg::health::snapshot();
        self.counts.clear();
        self.counts.extend(counts);
        debug_assert_eq!(self.counts.len(), self.modes.len());
        self.compute_weights();
        if !self.awake && self.lazy_wake_reason().is_some() {
            // Abort before mutating anything: the scalar fallback
            // replays the full iteration from the pre-step state.
            return Ok(SlabCommit::NeedsScalar);
        }
        let result = self.select_and_commit();
        let breakdowns = roboads_linalg::health::snapshot()
            .since(&health_before)
            .cholesky_failures;
        if breakdowns > 0 {
            self.instruments.cholesky_failures.add(breakdowns);
        }
        match &result {
            Ok(()) => self.instruments.steps.incr(),
            Err(CoreError::Numeric(msg)) => {
                self.instruments.numeric_failures.incr();
                let msg = msg.clone();
                self.telemetry.event("engine.numeric_failure", || {
                    vec![("error", Value::Text(msg))]
                });
            }
            Err(_) => {}
        }
        result.map(|()| SlabCommit::Committed)
    }

    /// Whether NUISE step 2 compensates the predicted state with the
    /// estimated actuator anomaly (fleet slab path input).
    pub(crate) fn compensate(&self) -> bool {
        self.compensate
    }

    /// The configured linearization strategy (the fleet slab path only
    /// engages for [`Linearization::PerIteration`]).
    pub(crate) fn linearization(&self) -> &Linearization {
        &self.linearization
    }

    /// χ² critical value for the actuator parsimony check.
    pub(crate) fn actuator_threshold(&self) -> f64 {
        self.actuator_threshold
    }

    /// Mode `m`'s per-testing-slice χ² critical values.
    pub(crate) fn testing_thresholds(&self, m: usize) -> &[f64] {
        &self.testing_thresholds[m]
    }

    /// Mode `m`'s filter state and output slot, for the fleet slab path
    /// to read lane inputs from and scatter results into before
    /// [`MultiModeEngine::commit_slab_step`].
    pub(crate) fn mode_output_mut(&mut self, m: usize) -> &mut NuiseOutput {
        &mut self.output.modes[m]
    }

    /// Resolved fleet slab lane width (see the field docs).
    pub(crate) fn slab_lanes(&self) -> usize {
        self.slab_lanes
    }

    /// Appends the engine's complete mutable state to a snapshot buffer
    /// (DESIGN.md §18): selector, shared and per-mode filter states, the
    /// last committed output (the sleep scheduler and wake triggers read
    /// stale slots from it), and every activation-schedule field.
    /// Workspaces, parsimony scratch/thresholds and the pool are
    /// construction-derived and belong to the restore twin.
    pub(crate) fn snap_write(&self, out: &mut Vec<u8>) {
        self.selector.snap_write(out);
        crate::snapshot::put_vector(out, &self.state_estimate);
        crate::snapshot::put_matrix(out, &self.state_covariance);
        wire::put_u32(out, self.mode_states.len() as u32);
        for (x, p) in &self.mode_states {
            crate::snapshot::put_vector(out, x);
            crate::snapshot::put_matrix(out, p);
        }
        for m in &self.output.modes {
            crate::snapshot::put_nuise_output(out, m);
        }
        wire::put_f64_slice(out, &self.output.probabilities);
        wire::put_u64(out, self.output.selected as u64);
        wire::put_bool_slice(out, &self.output.active);
        wire::put_bool_slice(out, &self.active);
        wire::put_bool_slice(out, &self.run_mask);
        wire::put_bool(out, self.awake);
        wire::put_bool(out, self.planned);
        wire::put_bool_slice(out, &self.mode_stale);
        wire::put_u64(out, self.audit_cursor as u64);
        wire::put_u64(out, self.audit_countdown as u64);
        match self.audit_mode {
            None => wire::put_bool(out, false),
            Some(m) => {
                wire::put_bool(out, true);
                wire::put_u64(out, m as u64);
            }
        }
        wire::put_u64(out, self.quiescent_streak as u64);
        wire::put_bool(out, self.external_activity);
        wire::put_u8(out, crate::snapshot::wake_reason_tag(self.pending_wake));
        wire::put_u64(out, self.active_count as u64);
        wire::put_u64(out, self.commits);
    }

    /// Restores the engine's mutable state from a snapshot buffer onto
    /// an identically-constructed twin. Dimensions are validated against
    /// the twin's; a mismatched snapshot returns
    /// [`CoreError::Snapshot`] with the engine partially overwritten
    /// (discard it).
    pub(crate) fn snap_read(&mut self, rd: &mut wire::ByteReader<'_>) -> Result<()> {
        self.selector.snap_read(rd)?;
        crate::snapshot::read_vector(rd, &mut self.state_estimate)?;
        crate::snapshot::read_matrix(rd, &mut self.state_covariance)?;
        let mode_count = rd.u32()? as usize;
        if mode_count != self.mode_states.len() {
            return Err(CoreError::Snapshot {
                reason: format!(
                    "snapshot has {mode_count} modes, twin has {}",
                    self.mode_states.len()
                ),
            });
        }
        for (x, p) in &mut self.mode_states {
            crate::snapshot::read_vector(rd, x)?;
            crate::snapshot::read_matrix(rd, p)?;
        }
        for m in &mut self.output.modes {
            crate::snapshot::read_nuise_output(rd, m)?;
        }
        rd.f64_into(&mut self.output.probabilities)?;
        let selected = rd.u64()? as usize;
        if selected >= mode_count {
            return Err(CoreError::Snapshot {
                reason: format!("selected mode {selected} out of range"),
            });
        }
        self.output.selected = selected;
        crate::snapshot::read_bools(rd, &mut self.output.active, mode_count)?;
        crate::snapshot::read_bools(rd, &mut self.active, mode_count)?;
        crate::snapshot::read_bools(rd, &mut self.run_mask, mode_count)?;
        self.awake = rd.bool()?;
        self.planned = rd.bool()?;
        crate::snapshot::read_bools(rd, &mut self.mode_stale, mode_count)?;
        self.audit_cursor = rd.u64()? as usize;
        self.audit_countdown = rd.u64()? as usize;
        self.audit_mode = if rd.bool()? {
            Some(rd.u64()? as usize)
        } else {
            None
        };
        self.quiescent_streak = rd.u64()? as usize;
        self.external_activity = rd.bool()?;
        self.pending_wake = crate::snapshot::wake_reason_from_tag(rd.u8()?)?;
        self.active_count = rd.u64()? as usize;
        self.commits = rd.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Mode;
    use roboads_models::presets;

    fn engine() -> (RobotSystem, MultiModeEngine, Vector) {
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let engine = MultiModeEngine::new(
            system.clone(),
            modes,
            x0.clone(),
            &RoboAdsConfig::paper_defaults(),
        )
        .unwrap();
        (system, engine, x0)
    }

    fn clean_readings(system: &RobotSystem, x: &Vector) -> Vec<Vector> {
        (0..system.sensor_count())
            .map(|i| system.sensor(i).unwrap().measure(x))
            .collect()
    }

    #[test]
    fn clean_run_tracks_state_with_near_uniform_probabilities() {
        let (system, mut engine, x0) = engine();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for _ in 0..30 {
            x_true = system.dynamics().step(&x_true, &u);
            let out = engine.step(&u, &clean_readings(&system, &x_true)).unwrap();
            assert_eq!(out.modes.len(), 3);
        }
        assert!((engine.state_estimate() - &x_true).max_abs() < 1e-6);
        // Mode probabilities stay a proper distribution. (Note: on clean
        // data the *selection* is arbitrary — densities of modes with
        // different innovation dimensionality are not commensurable, as
        // in the paper — but no decision test fires, so it is harmless.)
        let p = engine.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn corrupted_sensor_drives_mode_selection_without_majority_voting() {
        let (system, mut engine, x0) = engine();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        // Corrupt BOTH the IPS (0) and the LiDAR (2): only the encoder
        // remains clean — a 2-of-3 majority is corrupted, which defeats
        // voting schemes but not the likelihood selection (§IV-B).
        for _ in 0..10 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            readings[0][0] += 0.08;
            readings[2][1] += 0.09;
            engine.step(&u, &readings).unwrap();
        }
        // The encoder-reference mode (index 1) must win.
        let p = engine.probabilities();
        assert_eq!(
            p.iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
                .unwrap()
                .0,
            1,
            "probabilities {p:?}"
        );
    }

    #[test]
    fn selected_mode_estimates_flow_into_shared_state() {
        let (system, mut engine, x0) = engine();
        let u = Vector::from_slice(&[0.05, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let out = engine.step(&u, &clean_readings(&system, &x1)).unwrap();
        assert_eq!(
            engine.state_estimate(),
            &out.selected_output().state_estimate
        );
    }

    #[test]
    fn error_leaves_state_unchanged() {
        let (_, mut engine, _) = engine();
        let before = engine.state_estimate().clone();
        let u = Vector::from_slice(&[0.05, 0.05]);
        let bad = vec![Vector::zeros(3); 2]; // wrong reading count
        assert!(engine.step(&u, &bad).is_err());
        assert_eq!(engine.state_estimate(), &before);
    }

    #[test]
    fn degenerate_mode_set_rejected_at_construction() {
        let system = presets::khepera_system();
        let modes = ModeSet::from_reference_groups(&system, &[vec![0]]);
        // Tamper: build a mode set whose only mode has an empty reference.
        let broken = ModeSet::from_reference_groups(&system, &[vec![]]);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        assert!(MultiModeEngine::new(
            system.clone(),
            broken,
            x0.clone(),
            &RoboAdsConfig::paper_defaults()
        )
        .is_err());
        assert!(MultiModeEngine::new(system, modes, x0, &RoboAdsConfig::paper_defaults()).is_ok());
    }

    #[test]
    fn consistent_but_spoofed_mode_keeps_its_own_filter() {
        // A constant-bias spoof is *self-consistent* with its reference:
        // the spoofed mode's own filter tracks truth + bias and, by
        // design, is NOT re-anchored — only its probability collapses
        // (the parsimony prior sees its phantom claims).
        let (system, mut engine, x0) = engine();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for _ in 0..30 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            readings[0][0] += 0.25; // large constant IPS spoof
            engine.step(&u, &readings).unwrap();
        }
        let (x_ips_mode, _) = engine.mode_state(0);
        assert!(
            (x_ips_mode[0] - (x_true[0] + 0.25)).abs() < 0.05,
            "spoofed mode should track truth + bias, got {:?}",
            x_ips_mode
        );
        assert!(engine.probabilities()[0] < 0.1);
        // The winner's state (and the reported estimate) track the truth.
        assert!((engine.state_estimate() - &x_true).max_abs() < 0.05);
    }

    #[test]
    fn inconsistent_lost_modes_are_reanchored_to_the_winner() {
        // A DoS'd LiDAR freezes at zeros while the robot moves: the
        // LiDAR-reference mode's own filter cannot explain its reference
        // (improbable AND inconsistent) and must be re-anchored to the
        // winner instead of diverging toward the zeros.
        let (system, mut engine, x0) = engine();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for _ in 0..30 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            readings[2] = Vector::zeros(4); // LiDAR DoS
            engine.step(&u, &readings).unwrap();
        }
        let (x_lidar_mode, _) = engine.mode_state(2);
        assert!(
            (x_lidar_mode - &x_true).max_abs() < 0.1,
            "DoS'd mode should be re-anchored near the truth, got {:?} vs {:?}",
            x_lidar_mode,
            x_true
        );
        assert!(engine.probabilities()[2] < 0.1);
    }

    #[test]
    fn initial_state_dimension_checked() {
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let r = MultiModeEngine::new(
            system,
            modes,
            Vector::zeros(2),
            &RoboAdsConfig::paper_defaults(),
        );
        assert!(matches!(r, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn single_custom_mode_engine_works() {
        let system = presets::khepera_system();
        let modes = ModeSet::from_reference_groups(&system, &[vec![0, 1, 2]]);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.0]);
        let mut e = MultiModeEngine::new(
            system.clone(),
            modes,
            x0.clone(),
            &RoboAdsConfig::paper_defaults(),
        )
        .unwrap();
        // A single-mode engine never spawns workers, whatever the
        // machine's parallelism.
        assert_eq!(e.threads(), 1);
        let u = Vector::from_slice(&[0.05, 0.05]);
        let x1 = system.dynamics().step(&x0, &u);
        let out = e.step(&u, &clean_readings(&system, &x1)).unwrap();
        assert_eq!(out.selected, 0);
        assert!(out.selected_output().sensor_anomaly.is_empty());
        let _ = Mode::new(vec![0], vec![1]); // silence unused-import lint in some cfgs
    }

    #[test]
    fn auto_threads_stay_sequential_for_small_banks() {
        // `threads: None` must not pay the ~20 µs/step pool dispatch for
        // banks whose whole NUISE sweep is a few microseconds: every
        // built-in evaluation bank sits far below the work threshold.
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        assert!(intra_step_work(&system, &modes) < INTRA_STEP_WORK_THRESHOLD);
        let complete = ModeSet::complete(&system);
        assert!(intra_step_work(&system, &complete) < INTRA_STEP_WORK_THRESHOLD);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let config = RoboAdsConfig::paper_defaults();
        assert!(config.threads.is_none());
        let e = MultiModeEngine::new(system.clone(), modes, x0.clone(), &config).unwrap();
        assert_eq!(e.threads(), 1, "small bank must default to sequential");
        // An explicit width is always honored (capped by the mode count).
        let e = MultiModeEngine::new(
            system,
            ModeSet::complete(&presets::khepera_system()),
            x0,
            &config.with_threads(2),
        )
        .unwrap();
        assert_eq!(e.threads(), 2);
    }

    #[test]
    fn thread_width_never_exceeds_mode_count() {
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let config = RoboAdsConfig::paper_defaults().with_threads(16);
        let e = MultiModeEngine::new(system, modes, x0, &config).unwrap();
        assert_eq!(e.threads(), 3);
    }

    #[test]
    fn parallel_steps_match_sequential_bitwise() {
        // The engine-level contract behind `tests/determinism.rs`: same
        // inputs, same outputs, bit for bit, regardless of fan-out.
        let system = presets::khepera_system();
        let modes = ModeSet::one_reference_per_sensor(&system);
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let mut seq = MultiModeEngine::new(
            system.clone(),
            modes.clone(),
            x0.clone(),
            &RoboAdsConfig::paper_defaults().with_threads(1),
        )
        .unwrap();
        let mut par = MultiModeEngine::new(
            system.clone(),
            modes,
            x0.clone(),
            &RoboAdsConfig::paper_defaults().with_threads(3),
        )
        .unwrap();
        assert_eq!(seq.threads(), 1);
        assert_eq!(par.threads(), 3);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..20 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k > 8 {
                readings[0][0] += 0.08; // mid-run IPS corruption
            }
            let a = seq.step(&u, &readings).unwrap();
            let b = par.step(&u, &readings).unwrap();
            assert_eq!(a, b, "divergence at step {k}");
        }
        assert_eq!(seq.state_estimate(), par.state_estimate());
        assert_eq!(seq.probabilities(), par.probabilities());
    }

    /// A lazy-activation engine over either the paper's 3-mode
    /// one-reference-per-sensor set or the complete 7-mode bank.
    fn lazy_engine(complete: bool) -> (RobotSystem, MultiModeEngine, Vector) {
        let system = presets::khepera_system();
        let modes = if complete {
            ModeSet::complete(&system)
        } else {
            ModeSet::one_reference_per_sensor(&system)
        };
        let x0 = Vector::from_slice(&[0.5, 0.5, 0.2]);
        let engine = MultiModeEngine::new(
            system.clone(),
            modes,
            x0.clone(),
            &RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::lazy_defaults()),
        )
        .unwrap();
        (system, engine, x0)
    }

    /// Drives `engine` with clean readings until the bank sleeps,
    /// returning the true state at the end. Panics if it never sleeps.
    fn drive_to_sleep(
        system: &RobotSystem,
        engine: &mut MultiModeEngine,
        x0: &Vector,
        u: &Vector,
    ) -> Vector {
        let mut x_true = x0.clone();
        for _ in 0..40 {
            x_true = system.dynamics().step(&x_true, u);
            engine.step(u, &clean_readings(system, &x_true)).unwrap();
            if !engine.bank_awake() {
                return x_true;
            }
        }
        panic!("bank never slept under sustained quiescence");
    }

    #[test]
    fn lazy_bank_sleeps_after_sustained_quiescence() {
        let (system, mut engine, x0) = lazy_engine(false);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = drive_to_sleep(&system, &mut engine, &x0, &u);
        assert_eq!(engine.active_modes(), 2, "TopK{{k:2}} keeps two modes");
        // Dormancy is visible in the output and the estimate stays live.
        x_true = system.dynamics().step(&x_true, &u);
        let out = engine
            .step(&u, &clean_readings(&system, &x_true))
            .unwrap()
            .clone();
        assert_eq!(out.active_count(), 2, "active flags: {:?}", out.active);
        assert!(out.active[out.selected], "selected mode must stay active");
        assert!((engine.state_estimate() - &x_true).max_abs() < 1e-6);
    }

    #[test]
    fn lazy_bank_wakes_when_decision_windows_go_active() {
        let (system, mut engine, x0) = lazy_engine(false);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = drive_to_sleep(&system, &mut engine, &x0, &u);
        // Decision feedback (a χ² window holding a positive) schedules a
        // full-bank wake consumed by the next iteration's plan.
        engine.note_decision_activity(true);
        x_true = system.dynamics().step(&x_true, &u);
        let out = engine
            .step(&u, &clean_readings(&system, &x_true))
            .unwrap()
            .clone();
        assert!(engine.bank_awake());
        assert_eq!(out.active_count(), 3, "full bank on the wake tick");
        assert!(out.modes.iter().all(|m| m.consistency > 0.0));
    }

    #[test]
    fn lazy_bank_wakes_same_tick_on_consistency_collapse() {
        let (system, mut engine, x0) = lazy_engine(false);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = drive_to_sleep(&system, &mut engine, &x0, &u);
        // Mutually inconsistent corruption on every sensor: no state
        // explains the readings, so every active mode's consistency
        // collapses and the bank must re-activate the dormant
        // hypotheses *within the same iteration* — detection latency is
        // unchanged versus the always-full bank.
        for k in 0..3 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            readings[0][0] += 0.6;
            readings[1][0] -= 0.5;
            readings[2][0] += 0.4;
            let out = engine.step(&u, &readings).unwrap();
            if engine.bank_awake() {
                assert_eq!(
                    out.active_count(),
                    3,
                    "dormant modes must run on the wake tick itself (tick {k})"
                );
                return;
            }
        }
        panic!("bank never woke on inconsistent readings");
    }

    #[test]
    fn lazy_audit_round_robins_over_every_dormant_mode() {
        let (system, mut engine, x0) = lazy_engine(true);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = drive_to_sleep(&system, &mut engine, &x0, &u);
        let dormant: Vec<usize> = (0..engine.modes.len())
            .filter(|&m| !engine.active[m])
            .collect();
        assert_eq!(dormant.len(), engine.modes.len() - 2);
        // One dormant mode is probed every `audit_period` ticks,
        // round-robin, so the whole complement is covered in
        // `audit_period * dormant` ticks (with slack for wake flaps).
        let mut audited = std::collections::BTreeSet::new();
        for _ in 0..4 * dormant.len() + 8 {
            x_true = system.dynamics().step(&x_true, &u);
            engine.step(&u, &clean_readings(&system, &x_true)).unwrap();
            if let Some(m) = engine.audit_mode {
                audited.insert(m);
            }
        }
        for m in &dormant {
            assert!(audited.contains(m), "mode {m} never audited: {audited:?}");
        }
    }

    #[test]
    fn dormant_modes_hold_the_floor_without_flooring_the_bank() {
        // Satellite regression: with k=2 of 7 modes dormant hypotheses
        // are pinned at the selector floor ε — they neither absorb
        // probability mass nor trip the all-modes-floored fallback.
        let (system, mut engine, x0) = lazy_engine(true);
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = drive_to_sleep(&system, &mut engine, &x0, &u);
        // The sleep tick itself still committed a full-bank update;
        // partial selection starts on the next iteration.
        for _ in 0..2 {
            x_true = system.dynamics().step(&x_true, &u);
            engine.step(&u, &clean_readings(&system, &x_true)).unwrap();
        }
        assert!(!engine.bank_awake(), "clean data must not wake the bank");
        assert_eq!(engine.active_modes(), 2);
        let floor = RoboAdsConfig::paper_defaults().mode_floor;
        let p = engine.probabilities();
        let mut active_mass = 0.0;
        for (m, &prob) in p.iter().enumerate() {
            if engine.active[m] {
                active_mass += prob;
            } else {
                assert_eq!(prob, floor, "dormant mode {m} off the floor");
            }
        }
        let dormant = p.len() - engine.active_modes();
        assert!((active_mass - (1.0 - dormant as f64 * floor)).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(!engine.selector.all_floored(), "dormancy is not flooring");
        assert!(p[engine.output.selected] > floor);
    }

    #[test]
    fn always_full_policy_matches_the_default_engine_bitwise() {
        let (system, mut default_engine, x0) = engine();
        let mut explicit = MultiModeEngine::new(
            system.clone(),
            ModeSet::one_reference_per_sensor(&system),
            x0.clone(),
            &RoboAdsConfig::paper_defaults().with_activation(ActivationPolicy::AlwaysFull),
        )
        .unwrap();
        let u = Vector::from_slice(&[0.06, 0.05]);
        let mut x_true = x0;
        for k in 0..25 {
            x_true = system.dynamics().step(&x_true, &u);
            let mut readings = clean_readings(&system, &x_true);
            if k > 10 {
                readings[0][0] += 0.08;
            }
            let a = default_engine.step(&u, &readings).unwrap().clone();
            let b = explicit.step(&u, &readings).unwrap().clone();
            assert_eq!(a, b, "divergence at step {k}");
            assert_eq!(a.active_count(), 3, "AlwaysFull never parks a mode");
        }
        assert!(default_engine.bank_awake() && explicit.bank_awake());
    }
}
