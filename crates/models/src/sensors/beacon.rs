use roboads_linalg::{Matrix, Vector};

use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// Range-beacon sensor: distances to fixed anchors (UWB/acoustic
/// beacon positioning).
///
/// This is the suite's genuinely *nonlinear* measurement model —
/// `h_i(x) = ‖(x, y) − b_i‖` with state-dependent Jacobian rows
/// `[(x−bᵢₓ)/dᵢ, (y−bᵢᵧ)/dᵢ, 0]` — exercising the nonlinearity RoboADS
/// claims to handle in `h(·)`, where the built-in IPS/encoder/LiDAR
/// workflows are affine in the state. Three non-collinear beacons make
/// the position observable; the heading needs motion or a companion
/// sensor (§VI grouping).
///
/// # Example
///
/// ```
/// use roboads_linalg::Vector;
/// use roboads_models::sensors::BeaconRange;
/// use roboads_models::SensorModel;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let beacons = BeaconRange::new(vec![(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)], 0.02)?;
/// let z = beacons.measure(&Vector::from_slice(&[3.0, 4.0, 0.7]));
/// assert!((z[0] - 5.0).abs() < 1e-12); // 3-4-5 triangle to the origin
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeaconRange {
    beacons: Vec<(f64, f64)>,
    range_std: f64,
}

/// Minimum robot–beacon distance used in the Jacobian to avoid the
/// singularity at a beacon's exact position.
const MIN_RANGE: f64 = 1e-6;

impl BeaconRange {
    /// Creates the sensor from anchor positions (m) and the per-range
    /// noise standard deviation (m).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for an empty anchor
    /// list, non-finite anchors, or non-positive noise.
    pub fn new(beacons: Vec<(f64, f64)>, range_std: f64) -> Result<Self> {
        if beacons.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "beacons",
                value: "empty anchor list".into(),
            });
        }
        if beacons
            .iter()
            .any(|(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(ModelError::InvalidParameter {
                name: "beacons",
                value: "non-finite anchor".into(),
            });
        }
        if !(range_std.is_finite() && range_std > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "range_std",
                value: format!("{range_std}"),
            });
        }
        Ok(BeaconRange { beacons, range_std })
    }

    /// The anchor positions.
    pub fn beacons(&self) -> &[(f64, f64)] {
        &self.beacons
    }

    /// Range noise standard deviation (m).
    pub fn range_std(&self) -> f64 {
        self.range_std
    }
}

impl SensorModel for BeaconRange {
    fn dim(&self) -> usize {
        self.beacons.len()
    }

    fn name(&self) -> &str {
        "beacon-range"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 2, "beacon range expects a planar state");
        Vector::from_fn(self.beacons.len(), |i| {
            let (bx, by) = self.beacons[i];
            ((x[0] - bx).powi(2) + (x[1] - by).powi(2)).sqrt()
        })
    }

    fn jacobian(&self, x: &Vector) -> Matrix {
        Matrix::from_fn(self.beacons.len(), x.len(), |i, j| {
            let (bx, by) = self.beacons[i];
            let d = (((x[0] - bx).powi(2) + (x[1] - by).powi(2)).sqrt()).max(MIN_RANGE);
            match j {
                0 => (x[0] - bx) / d,
                1 => (x[1] - by) / d,
                _ => 0.0,
            }
        })
    }

    fn noise_covariance(&self) -> Matrix {
        let v = self.range_std * self.range_std;
        Matrix::from_diagonal(&vec![v; self.beacons.len()])
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 2, "beacon range expects a planar state");
        for (i, &(bx, by)) in self.beacons.iter().enumerate() {
            out[i] = ((x[0] - bx).powi(2) + (x[1] - by).powi(2)).sqrt();
        }
    }

    fn jacobian_into(&self, x: &Vector, out: &mut Matrix, row_offset: usize) {
        for (i, &(bx, by)) in self.beacons.iter().enumerate() {
            let d = (((x[0] - bx).powi(2) + (x[1] - by).powi(2)).sqrt()).max(MIN_RANGE);
            for j in 0..x.len() {
                out[(row_offset + i, j)] = match j {
                    0 => (x[0] - bx) / d,
                    1 => (x[1] - by) / d,
                    _ => 0.0,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        assert_sensor_into_variants_match(&triangle(), &Vector::from_slice(&[0.4, 0.3, 0.1]));
    }

    fn triangle() -> BeaconRange {
        BeaconRange::new(vec![(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)], 0.02).unwrap()
    }

    #[test]
    fn ranges_are_euclidean_distances() {
        let b = triangle();
        let z = b.measure(&Vector::from_slice(&[2.0, 0.0, 1.0]));
        assert!((z[0] - 2.0).abs() < 1e-12);
        assert!((z[1] - 2.0).abs() < 1e-12);
        assert!((z[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn nonlinear_jacobian_matches_numeric_everywhere() {
        let b = triangle();
        for &(x, y, theta) in &[(1.0, 1.0, 0.0), (3.5, 0.5, 1.2), (0.3, 3.9, -2.0)] {
            assert_sensor_jacobian_matches(&b, &Vector::from_slice(&[x, y, theta]), 1e-5);
        }
        assert_noise_covariance_valid(&b);
    }

    #[test]
    fn jacobian_rows_are_unit_direction_vectors() {
        let b = triangle();
        let x = Vector::from_slice(&[1.7, 2.3, 0.4]);
        let c = b.jacobian(&x);
        for i in 0..3 {
            let norm = (c[(i, 0)].powi(2) + c[(i, 1)].powi(2)).sqrt();
            assert!((norm - 1.0).abs() < 1e-12, "row {i} norm {norm}");
            assert_eq!(c[(i, 2)], 0.0, "heading column must be zero");
        }
    }

    #[test]
    fn jacobian_survives_standing_on_a_beacon() {
        let b = triangle();
        let c = b.jacobian(&Vector::from_slice(&[0.0, 0.0, 0.0]));
        assert!(c.is_finite());
    }

    #[test]
    fn validation() {
        assert!(BeaconRange::new(vec![], 0.02).is_err());
        assert!(BeaconRange::new(vec![(0.0, f64::NAN)], 0.02).is_err());
        assert!(BeaconRange::new(vec![(0.0, 0.0)], 0.0).is_err());
        let single = BeaconRange::new(vec![(1.0, 1.0)], 0.02).unwrap();
        assert_eq!(single.dim(), 1);
        assert_eq!(single.name(), "beacon-range");
        assert_eq!(single.beacons().len(), 1);
        assert_eq!(single.range_std(), 0.02);
    }
}
