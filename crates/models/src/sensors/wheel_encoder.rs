use roboads_linalg::{Matrix, Vector};

use crate::sensors::SensorModel;
use crate::{ModelError, Result};

/// Wheel-encoder odometry workflow: per-wheel tick counters integrated by
/// a utility process into a pose estimate `(x, y, θ)`.
///
/// The Khepera III's encoder workflow counts motor shaft ticks; the
/// paper's utility process dead-reckons those into pose space — its Figure
/// 6 shows wheel-encoder *sensor anomaly components on x, y and θ*, i.e.
/// the planner-visible reading is a pose. We model the workflow output as
/// a pose measurement with odometry-grade noise (larger than IPS), and
/// expose the tick geometry so the simulation can inject the paper's
/// tick-level attack ("increment 100 steps on left wheel encoder",
/// scenario #5) at the exact point in the workflow where it acts.
///
/// The substitution from drifting dead-reckoning to a bounded-noise pose
/// measurement is documented in `DESIGN.md`: the physical Khepera
/// re-anchors odometry against the planner state each control iteration,
/// which bounds the drift to per-iteration noise.
///
/// # Example
///
/// ```
/// use roboads_models::sensors::WheelEncoderOdometry;
///
/// # fn main() -> Result<(), roboads_models::ModelError> {
/// let enc = WheelEncoderOdometry::khepera()?;
/// // Scenario #5's 100-tick increment is worth about 3.7 cm of travel.
/// let meters = enc.ticks_to_meters(100.0);
/// assert!(meters > 0.03 && meters < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WheelEncoderOdometry {
    position_std: f64,
    heading_std: f64,
    /// Encoder ticks per wheel revolution.
    ticks_per_rev: f64,
    /// Wheel radius in meters.
    wheel_radius: f64,
    /// Wheel base in meters (needed to map tick deltas to heading).
    wheel_base: f64,
}

impl WheelEncoderOdometry {
    /// Creates an encoder-odometry workflow model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive values.
    pub fn new(
        position_std: f64,
        heading_std: f64,
        ticks_per_rev: f64,
        wheel_radius: f64,
        wheel_base: f64,
    ) -> Result<Self> {
        for (name, v) in [
            ("position_std", position_std),
            ("heading_std", heading_std),
            ("ticks_per_rev", ticks_per_rev),
            ("wheel_radius", wheel_radius),
            ("wheel_base", wheel_base),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: format!("{v}"),
                });
            }
        }
        Ok(WheelEncoderOdometry {
            position_std,
            heading_std,
            ticks_per_rev,
            wheel_radius,
            wheel_base,
        })
    }

    /// The Khepera encoder geometry used throughout the evaluation:
    /// 360 quadrature-decoded ticks per wheel revolution, 21 mm wheels,
    /// 88.5 mm wheel base, with odometry-grade pose noise.
    ///
    /// With this resolution the paper's scenario-#5 attack ("increment
    /// 100 steps on left wheel encoder") is worth ≈ 3.7 cm of phantom
    /// wheel travel — the same order as the paper's IPS shift attacks,
    /// matching its sub-second detection of the scenario.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`WheelEncoderOdometry::new`].
    pub fn khepera() -> Result<Self> {
        WheelEncoderOdometry::new(0.005, 0.008, 360.0, 0.021, 0.0885)
    }

    /// Linear wheel travel represented by a tick count.
    pub fn ticks_to_meters(&self, ticks: f64) -> f64 {
        ticks / self.ticks_per_rev * 2.0 * std::f64::consts::PI * self.wheel_radius
    }

    /// Pose-space corruption produced by a constant per-reading tick bias
    /// on the two wheels, at heading `theta`.
    ///
    /// A tick bias `(Δn_L, Δn_R)` shifts the integrated odometry by
    /// `Δs = (Δs_L + Δs_R)/2` along the heading and by
    /// `Δθ = (Δs_R − Δs_L)/b`, which is how scenario #5's attack enters
    /// the planner-visible reading.
    pub fn tick_bias_to_pose_bias(&self, left_ticks: f64, right_ticks: f64, theta: f64) -> Vector {
        let dl = self.ticks_to_meters(left_ticks);
        let dr = self.ticks_to_meters(right_ticks);
        let ds = 0.5 * (dl + dr);
        let dtheta = (dr - dl) / self.wheel_base;
        Vector::from_slice(&[ds * theta.cos(), ds * theta.sin(), dtheta])
    }

    /// Position noise standard deviation (m).
    pub fn position_std(&self) -> f64 {
        self.position_std
    }

    /// A copy with every noise standard deviation scaled by `factor`
    /// (§V-E quality sweep).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for non-positive factors.
    pub fn with_quality_factor(&self, factor: f64) -> Result<Self> {
        WheelEncoderOdometry::new(
            self.position_std * factor,
            self.heading_std * factor,
            self.ticks_per_rev,
            self.wheel_radius,
            self.wheel_base,
        )
    }
}

impl SensorModel for WheelEncoderOdometry {
    fn dim(&self) -> usize {
        3
    }

    fn name(&self) -> &str {
        "wheel-encoder"
    }

    fn measure(&self, x: &Vector) -> Vector {
        assert!(x.len() >= 3, "wheel encoder expects a pose state");
        Vector::from_slice(&[x[0], x[1], x[2]])
    }

    fn jacobian(&self, _x: &Vector) -> Matrix {
        Matrix::identity(3)
    }

    fn noise_covariance(&self) -> Matrix {
        Matrix::from_diagonal(&[
            self.position_std * self.position_std,
            self.position_std * self.position_std,
            self.heading_std * self.heading_std,
        ])
    }

    fn angular_components(&self) -> &[usize] {
        &[2]
    }

    fn measure_into(&self, x: &Vector, out: &mut [f64]) {
        assert!(x.len() >= 3, "wheel encoder expects a pose state");
        out[0] = x[0];
        out[1] = x[1];
        out[2] = x[2];
    }

    fn jacobian_into(&self, _x: &Vector, out: &mut Matrix, row_offset: usize) {
        for i in 0..3 {
            for j in 0..3 {
                out[(row_offset + i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::test_support::{
        assert_noise_covariance_valid, assert_sensor_into_variants_match,
        assert_sensor_jacobian_matches,
    };

    #[test]
    fn into_variants_match() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        assert_sensor_into_variants_match(&enc, &Vector::from_slice(&[1.0, 1.0, 0.3]));
    }

    #[test]
    fn khepera_geometry_is_valid() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        assert_eq!(enc.dim(), 3);
        assert_eq!(enc.name(), "wheel-encoder");
        assert_noise_covariance_valid(&enc);
        assert_sensor_jacobian_matches(&enc, &Vector::from_slice(&[1.0, 1.0, 0.3]), 1e-6);
    }

    #[test]
    fn tick_conversion_scales_with_geometry() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        let one_rev = enc.ticks_to_meters(360.0);
        assert!((one_rev - 2.0 * std::f64::consts::PI * 0.021).abs() < 1e-12);
    }

    #[test]
    fn symmetric_tick_bias_moves_along_heading() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        let bias = enc.tick_bias_to_pose_bias(100.0, 100.0, 0.0);
        assert!(bias[0] > 0.0);
        assert_eq!(bias[1], 0.0);
        assert_eq!(bias[2], 0.0);
    }

    #[test]
    fn asymmetric_tick_bias_rotates() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        let bias = enc.tick_bias_to_pose_bias(100.0, 0.0, 0.0);
        // Left wheel over-counts → odometry thinks it turned clockwise.
        assert!(bias[2] < 0.0);
        // And reports some forward travel.
        assert!(bias[0] > 0.0);
    }

    #[test]
    fn quality_factor() {
        let enc = WheelEncoderOdometry::khepera().unwrap();
        let better = enc.with_quality_factor(0.5).unwrap();
        assert!(better.position_std() < enc.position_std());
        assert!(enc.with_quality_factor(-1.0).is_err());
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(WheelEncoderOdometry::new(0.01, 0.01, 0.0, 0.02, 0.09).is_err());
        assert!(WheelEncoderOdometry::new(0.01, 0.01, 100.0, -0.02, 0.09).is_err());
    }
}
