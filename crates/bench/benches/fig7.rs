//! Figure 7 — decision-parameter selection.
//!
//! * (a) ROC of sensor misbehavior detection sweeping the confidence
//!   level α for window settings c/w ∈ {1/1, 3/3, 6/6},
//! * (b) the same for actuator misbehavior detection,
//! * (c) sensor-detection F1 versus decision criteria c for window
//!   sizes w = 1..6 at α = 0.005,
//! * (d) actuator-detection F1 versus c for w = 1..7 at α = 0.05.
//!
//! The paper's findings to reproduce: detection is already good at
//! α = 0.05 (actuator) / 0.005 (sensor); for a fixed window size the F1
//! rises then falls in c, with 2/2 (sensor) and 3/6 (actuator) the
//! chosen operating points.
//!
//! Run with: `cargo bench -p roboads-bench --bench fig7`

use roboads_bench::{parallel_map, run_khepera, sweep_threads};
use roboads_core::RoboAdsConfig;
use roboads_sim::Scenario;
use roboads_stats::ConfusionCounts;

const SEEDS: [u64; 2] = [11, 23];

/// Bump cadence/magnitude for the transient-fault background the paper's
/// window sweep trades against (§IV-D "uneven ground or bumps"): a 5σ-ish
/// one-iteration pose glitch every ~1.7 s, cycling through the workflows.
const BUMP_PERIOD: usize = 17;
const BUMP_MAGNITUDE: f64 = 0.05;

fn sensor_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::ips_logic_bomb().with_transient_bumps(BUMP_PERIOD, BUMP_MAGNITUDE),
        Scenario::encoder_logic_bomb().with_transient_bumps(BUMP_PERIOD, BUMP_MAGNITUDE),
        Scenario::lidar_blocking().with_transient_bumps(BUMP_PERIOD, BUMP_MAGNITUDE),
    ]
}

fn actuator_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::wheel_logic_bomb().with_transient_bumps(BUMP_PERIOD, BUMP_MAGNITUDE),
        Scenario::wheel_jamming().with_transient_bumps(BUMP_PERIOD, BUMP_MAGNITUDE),
    ]
}

/// Runs a scenario batch under one configuration and returns merged
/// (sensor, actuator) confusion counts.
fn batch(config: &RoboAdsConfig, scenarios: &[Scenario]) -> (ConfusionCounts, ConfusionCounts) {
    let mut sensor = ConfusionCounts::default();
    let mut actuator = ConfusionCounts::default();
    for scenario in scenarios {
        for &seed in &SEEDS {
            let outcome = run_khepera(scenario, config, seed);
            sensor.merge(&outcome.eval.sensor_counts);
            actuator.merge(&outcome.eval.actuator_counts);
        }
    }
    (sensor, actuator)
}

fn main() {
    let alphas = [0.0005, 0.005, 0.02, 0.05, 0.2, 0.5, 0.8, 0.95, 0.995];
    let windows = [(1usize, 1usize), (3, 3), (6, 6)];

    // --- Panels (a) and (b): ROC sweeps. ---
    let mut jobs = Vec::new();
    for &(c, w) in &windows {
        for &alpha in &alphas {
            jobs.push((c, w, alpha));
        }
    }
    let sensor_scen = sensor_scenarios();
    let actuator_scen = actuator_scenarios();
    let results = parallel_map(jobs.clone(), sweep_threads(), |(c, w, alpha)| {
        let config = RoboAdsConfig::paper_defaults()
            .with_sensor_alpha(alpha)
            .with_actuator_alpha(alpha)
            .with_sensor_window(c, w)
            .with_actuator_window(c, w);
        let (s, _) = batch(&config, &sensor_scen);
        let (_, a) = batch(&config, &actuator_scen);
        (s, a)
    });

    println!("Fig. 7(a) — sensor ROC (rows: c/w, alpha, FPR, TPR)");
    for ((c, w, alpha), (s, _)) in jobs.iter().zip(&results) {
        println!(
            "{c}/{w}, {alpha:>7}, {:.4}, {:.4}",
            s.false_positive_rate(),
            s.true_positive_rate()
        );
    }
    println!("\nFig. 7(b) — actuator ROC (rows: c/w, alpha, FPR, TPR)");
    for ((c, w, alpha), (_, a)) in jobs.iter().zip(&results) {
        println!(
            "{c}/{w}, {alpha:>7}, {:.4}, {:.4}",
            a.false_positive_rate(),
            a.true_positive_rate()
        );
    }

    // --- Panel (c): sensor F1 vs c for w = 1..6 at α = 0.005. ---
    let mut f1_jobs = Vec::new();
    for w in 1..=6usize {
        for c in 1..=w {
            f1_jobs.push((c, w));
        }
    }
    let sensor_f1 = parallel_map(f1_jobs.clone(), sweep_threads(), |(c, w)| {
        let config = RoboAdsConfig::paper_defaults().with_sensor_window(c, w);
        let (s, _) = batch(&config, &sensor_scen);
        s.f1_score()
    });
    println!("\nFig. 7(c) — sensor F1 at α = 0.005 (rows: w, c, F1; paper optimum c/w = 2/2)");
    let mut best_sensor = (0.0f64, (0usize, 0usize));
    for (&(c, w), &f1) in f1_jobs.iter().zip(&sensor_f1) {
        println!("{w}, {c}, {f1:.4}");
        if f1 > best_sensor.0 {
            best_sensor = (f1, (c, w));
        }
    }

    // --- Panel (d): actuator F1 vs c for w = 1..7 at α = 0.05. ---
    let mut f1a_jobs = Vec::new();
    for w in 1..=7usize {
        for c in 1..=w {
            f1a_jobs.push((c, w));
        }
    }
    let actuator_f1 = parallel_map(f1a_jobs.clone(), sweep_threads(), |(c, w)| {
        let config = RoboAdsConfig::paper_defaults().with_actuator_window(c, w);
        let (_, a) = batch(&config, &actuator_scen);
        a.f1_score()
    });
    println!("\nFig. 7(d) — actuator F1 at α = 0.05 (rows: w, c, F1; paper optimum c/w = 3/6)");
    let mut best_actuator = (0.0f64, (0usize, 0usize));
    for (&(c, w), &f1) in f1a_jobs.iter().zip(&actuator_f1) {
        println!("{w}, {c}, {f1:.4}");
        if f1 > best_actuator.0 {
            best_actuator = (f1, (c, w));
        }
    }

    println!(
        "\nbest sensor operating point: c/w = {}/{} (F1 = {:.4}); paper picks 2/2",
        best_sensor.1 .0, best_sensor.1 .1, best_sensor.0
    );
    println!(
        "best actuator operating point: c/w = {}/{} (F1 = {:.4}); paper picks 3/6",
        best_actuator.1 .0, best_actuator.1 .1, best_actuator.0
    );
}
