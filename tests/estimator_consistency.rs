//! Monte-Carlo consistency of the NUISE estimator (DESIGN.md §2a): the
//! anomaly estimates must be *unbiased* and their reported covariances
//! *calibrated* — the normalized estimation error squared (NEES) of
//! `d̂ − d` under the reported `P` must average its degrees of freedom.
//! Mis-signed cross-covariance terms (the paper's printed inconsistency)
//! would show up here as NEES inflation.

use roboads::stats::{SeedableRng, StdRng};

use roboads::core::{nuise_step, Linearization, Mode, NuiseInput};
use roboads::linalg::{Matrix, Vector};
use roboads::models::presets;
use roboads::stats::{mean, MultivariateNormal};

struct Trial {
    actuator_error_nees: f64,
    actuator_error: Vector,
    sensor_error_nees: f64,
    state_error_nees: f64,
}

/// One noisy closed-loop run of `steps` iterations under a constant
/// actuator bias and a constant encoder corruption; returns the last
/// iteration's normalized errors (by then the filter is in steady
/// state).
fn run_trial(seed: u64, steps: usize) -> Trial {
    let system = presets::khepera_system();
    let mode = Mode::new(vec![0], vec![1, 2]);
    let u = Vector::from_slice(&[0.07, 0.05]);
    let actuator_bias = Vector::from_slice(&[0.015, -0.01]);
    let encoder_bias = 0.04; // on x

    let mut rng = StdRng::seed_from_u64(seed);
    let process = MultivariateNormal::zero_mean(system.process_noise().clone()).unwrap();
    let sensor_noise: Vec<MultivariateNormal> = (0..3)
        .map(|i| {
            MultivariateNormal::zero_mean(system.sensor(i).unwrap().noise_covariance()).unwrap()
        })
        .collect();

    let mut x_true = Vector::from_slice(&[1.0, 1.0, 0.3]);
    let mut x_est = x_true.clone();
    let mut p = Matrix::identity(3) * 1e-4;
    let mut last = None;
    for _ in 0..steps {
        x_true =
            &system.dynamics().step(&x_true, &(&u + &actuator_bias)) + &process.sample(&mut rng);
        let mut readings: Vec<Vector> = (0..3)
            .map(|i| {
                &system.sensor(i).unwrap().measure(&x_true) + &sensor_noise[i].sample(&mut rng)
            })
            .collect();
        readings[1][0] += encoder_bias;

        let out = nuise_step(NuiseInput {
            system: &system,
            mode: &mode,
            x_prev: &x_est,
            p_prev: &p,
            u_prev: &u,
            readings: &readings,
            linearization: &Linearization::PerIteration,
            compensate: true,
        })
        .unwrap();
        x_est = out.state_estimate.clone();
        p = out.state_covariance.clone();

        let a_err = &out.actuator_anomaly - &actuator_bias;
        let a_nees = a_err
            .quadratic_form(&out.actuator_covariance.pseudo_inverse().unwrap())
            .unwrap();
        let mut s_err = out.sensor_anomaly.clone();
        s_err[0] -= encoder_bias; // stacked testing: encoder first
        let s_nees = s_err
            .quadratic_form(&out.sensor_covariance.pseudo_inverse().unwrap())
            .unwrap();
        let x_err = &x_est - &x_true;
        let x_nees = x_err.quadratic_form(&p.pseudo_inverse().unwrap()).unwrap();
        last = Some(Trial {
            actuator_error_nees: a_nees,
            actuator_error: a_err,
            sensor_error_nees: s_nees,
            state_error_nees: x_nees,
        });
    }
    last.expect("at least one step")
}

#[test]
fn anomaly_estimates_are_unbiased_and_covariance_calibrated() {
    let trials: Vec<Trial> = (0..300).map(|s| run_trial(s, 12)).collect();

    // Unbiasedness: the mean estimation error is statistically zero on
    // both channels (within 3 standard errors of its own spread — an
    // EKF-class filter carries only O(second-order) bias, far below the
    // per-trial standard deviation).
    for channel in 0..2 {
        let errors: Vec<f64> = trials.iter().map(|t| t.actuator_error[channel]).collect();
        let m = mean(&errors);
        let se = roboads::stats::sample_std_dev(&errors) / (errors.len() as f64).sqrt();
        assert!(
            m.abs() < 3.0 * se + 1e-4,
            "channel {channel} bias {m} vs standard error {se}"
        );
    }

    // Covariance calibration: E[NEES] equals the dof. A 30 % band is
    // generous for 300 trials of a nonlinear filter; the paper's printed
    // sign inconsistency would inflate these by far more.
    let a_nees = mean(
        &trials
            .iter()
            .map(|t| t.actuator_error_nees)
            .collect::<Vec<_>>(),
    );
    assert!(
        (1.4..=2.6).contains(&a_nees),
        "actuator NEES {a_nees}, expected ≈ 2"
    );
    let s_nees = mean(
        &trials
            .iter()
            .map(|t| t.sensor_error_nees)
            .collect::<Vec<_>>(),
    );
    assert!(
        (4.9..=9.1).contains(&s_nees),
        "sensor NEES {s_nees}, expected ≈ 7"
    );
    let x_nees = mean(
        &trials
            .iter()
            .map(|t| t.state_error_nees)
            .collect::<Vec<_>>(),
    );
    assert!(
        (2.1..=3.9).contains(&x_nees),
        "state NEES {x_nees}, expected ≈ 3"
    );
}

#[test]
fn miscalibration_is_detectable_by_this_harness() {
    // Sanity check on the check: deliberately shrink the reported
    // covariance and confirm the NEES harness would flag it — i.e. the
    // consistency test above has teeth.
    let trials: Vec<f64> = (0..100)
        .map(|s| {
            let t = run_trial(s, 12);
            t.actuator_error_nees * 4.0 // covariance understated 4×
        })
        .collect();
    let nees = mean(&trials);
    assert!(nees > 2.6, "inflated NEES should exceed the band: {nees}");
}
