//! Detection-quality metrics: confusion counts, precision/recall/F1 and
//! ROC curves.
//!
//! The RoboADS evaluation (§V) defines a **true positive** as an alarm
//! with the *correct* sensor/actuator condition identified; any other
//! positive is a **false positive**; a silent detector during a
//! misbehavior is a **false negative**; silence during clean operation is
//! a **true negative**. Figure 7 sweeps the decision parameters and plots
//! ROC curves and F1 scores built from these counts.

/// Confusion-matrix counts accumulated over detector iterations or runs.
///
/// # Example
///
/// ```
/// use roboads_stats::ConfusionCounts;
///
/// let mut c = ConfusionCounts::default();
/// c.record(true, true);   // attack present, correctly flagged
/// c.record(false, false); // clean, silent
/// c.record(false, true);  // clean, false alarm
/// assert_eq!(c.true_positives, 1);
/// assert!((c.false_positive_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConfusionCounts {
    /// Alarms raised with the correct condition identified.
    pub true_positives: u64,
    /// Alarms raised when clean, or with the wrong condition identified.
    pub false_positives: u64,
    /// Misbehaving iterations with no (or wrong-silent) alarm.
    pub false_negatives: u64,
    /// Clean iterations with no alarm.
    pub true_negatives: u64,
}

impl ConfusionCounts {
    /// Records one binary outcome: whether an anomaly was truly present
    /// and whether the detector flagged (correctly) at that instant.
    ///
    /// For the paper's stricter definition (a positive with a wrong
    /// identification is a false positive *and* the misbehavior remains
    /// undetected), record with [`ConfusionCounts::record_identified`].
    pub fn record(&mut self, truth: bool, detected: bool) {
        match (truth, detected) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Records one outcome under the paper's identification-sensitive
    /// definition: `truth` is whether a misbehavior is active, `alarm`
    /// whether any alarm was raised, and `correct` whether the identified
    /// condition matches the ground truth.
    pub fn record_identified(&mut self, truth: bool, alarm: bool, correct: bool) {
        match (truth, alarm) {
            (true, true) if correct => self.true_positives += 1,
            (true, true) => {
                // Alarm with wrong identification: counted as a false
                // positive, per §V ("Otherwise, a positive detection
                // result is considered as a false positive").
                self.false_positives += 1;
            }
            (true, false) => self.false_negatives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &ConfusionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_negatives += other.true_negatives;
    }

    /// Total recorded outcomes.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// `FP / (FP + TN)`; 0 when no negatives were recorded.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// `FN / (FN + TP)`; 0 when no positives were recorded.
    pub fn false_negative_rate(&self) -> f64 {
        ratio(
            self.false_negatives,
            self.false_negatives + self.true_positives,
        )
    }

    /// `TP / (TP + FN)` (recall / sensitivity); 0 when no positives.
    pub fn true_positive_rate(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// `TP / (TP + FP)`; 0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Recall, alias of [`ConfusionCounts::true_positive_rate`].
    pub fn recall(&self) -> f64 {
        self.true_positive_rate()
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Detection-probability aggregation over repeated seeded trials of one
/// campaign grid point: how many trials detected the injected condition
/// and how long detection took, the `eval_attack_prob`-style statistic
/// behind a detection-probability curve.
///
/// # Example
///
/// ```
/// use roboads_stats::DetectionRate;
///
/// let mut r = DetectionRate::default();
/// r.record(Some(0.2)); // detected after 0.2 s
/// r.record(Some(0.4));
/// r.record(None);      // missed
/// assert!((r.probability() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((r.mean_delay().unwrap() - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectionRate {
    /// Trials recorded.
    pub trials: u64,
    /// Trials in which the condition was detected.
    pub detections: u64,
    /// Sum of detection delays (seconds) over the detected trials.
    pub delay_sum: f64,
}

impl DetectionRate {
    /// Records one trial: `Some(delay_seconds)` when the condition was
    /// detected, `None` for a miss.
    pub fn record(&mut self, delay: Option<f64>) {
        self.trials += 1;
        if let Some(d) = delay {
            self.detections += 1;
            self.delay_sum += d;
        }
    }

    /// Fraction of trials that detected; 0 before any trial.
    pub fn probability(&self) -> f64 {
        ratio(self.detections, self.trials)
    }

    /// Mean time-to-detection over the detected trials; `None` when
    /// nothing was detected.
    pub fn mean_delay(&self) -> Option<f64> {
        if self.detections == 0 {
            None
        } else {
            Some(self.delay_sum / self.detections as f64)
        }
    }

    /// Merges another aggregation into this one (e.g. per-thread
    /// partials of the same grid point).
    pub fn merge(&mut self, other: &DetectionRate) {
        self.trials += other.trials;
        self.detections += other.detections;
        self.delay_sum += other.delay_sum;
    }
}

/// One operating point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RocPoint {
    /// False positive rate at this operating point.
    pub false_positive_rate: f64,
    /// True positive rate at this operating point.
    pub true_positive_rate: f64,
    /// The parameter (e.g. significance level α) that produced the point.
    pub parameter: f64,
}

/// A ROC curve assembled from parameter-sweep operating points.
///
/// # Example
///
/// ```
/// use roboads_stats::{RocCurve, RocPoint};
///
/// let mut roc = RocCurve::new();
/// roc.push(RocPoint { false_positive_rate: 0.0, true_positive_rate: 0.0, parameter: 0.0005 });
/// roc.push(RocPoint { false_positive_rate: 0.1, true_positive_rate: 0.9, parameter: 0.05 });
/// roc.push(RocPoint { false_positive_rate: 1.0, true_positive_rate: 1.0, parameter: 0.995 });
/// assert!(roc.area_under_curve() > 0.8);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        RocCurve::default()
    }

    /// Adds an operating point.
    pub fn push(&mut self, point: RocPoint) {
        self.points.push(point);
    }

    /// The operating points, sorted by false positive rate.
    pub fn sorted_points(&self) -> Vec<RocPoint> {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| {
            a.false_positive_rate
                .partial_cmp(&b.false_positive_rate)
                .expect("rates are finite")
        });
        pts
    }

    /// Raw points in insertion order.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Trapezoidal area under the curve, with the curve extended to the
    /// (0,0) and (1,1) corners.
    pub fn area_under_curve(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut pts = self.sorted_points();
        if pts.first().map(|p| p.false_positive_rate > 0.0) == Some(true) {
            pts.insert(
                0,
                RocPoint {
                    false_positive_rate: 0.0,
                    true_positive_rate: 0.0,
                    parameter: f64::NAN,
                },
            );
        }
        if pts.last().map(|p| p.false_positive_rate < 1.0) == Some(true) {
            pts.push(RocPoint {
                false_positive_rate: 1.0,
                true_positive_rate: 1.0,
                parameter: f64::NAN,
            });
        }
        let mut auc = 0.0;
        for pair in pts.windows(2) {
            let dx = pair[1].false_positive_rate - pair[0].false_positive_rate;
            auc += dx * 0.5 * (pair[0].true_positive_rate + pair[1].true_positive_rate);
        }
        auc
    }
}

impl FromIterator<RocPoint> for RocCurve {
    fn from_iter<I: IntoIterator<Item = RocPoint>>(iter: I) -> Self {
        RocCurve {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_from_known_counts() {
        let c = ConfusionCounts {
            true_positives: 90,
            false_positives: 5,
            false_negatives: 10,
            true_negatives: 95,
        };
        assert!((c.false_positive_rate() - 0.05).abs() < 1e-12);
        assert!((c.false_negative_rate() - 0.10).abs() < 1e-12);
        assert!((c.true_positive_rate() - 0.90).abs() < 1e-12);
        assert!((c.precision() - 90.0 / 95.0).abs() < 1e-12);
        assert_eq!(c.total(), 200);
    }

    #[test]
    fn empty_counts_do_not_divide_by_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.f1_score(), 0.0);
    }

    #[test]
    fn wrong_identification_counts_as_false_positive() {
        let mut c = ConfusionCounts::default();
        c.record_identified(true, true, false);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_positives, 0);
    }

    #[test]
    fn detection_rate_aggregates_probability_and_delay() {
        let mut r = DetectionRate::default();
        assert_eq!(r.probability(), 0.0);
        assert_eq!(r.mean_delay(), None);
        r.record(Some(0.1));
        r.record(None);
        let mut other = DetectionRate::default();
        other.record(Some(0.3));
        other.record(Some(0.2));
        r.merge(&other);
        assert_eq!(r.trials, 4);
        assert_eq!(r.detections, 3);
        assert!((r.probability() - 0.75).abs() < 1e-12);
        assert!((r.mean_delay().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionCounts::default();
        a.record(true, true);
        let mut b = ConfusionCounts::default();
        b.record(false, false);
        a.merge(&b);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn f1_of_perfect_detector_is_one() {
        let c = ConfusionCounts {
            true_positives: 50,
            false_positives: 0,
            false_negatives: 0,
            true_negatives: 50,
        };
        assert_eq!(c.f1_score(), 1.0);
    }

    #[test]
    fn auc_of_perfect_curve_is_one() {
        let roc: RocCurve = [
            RocPoint {
                false_positive_rate: 0.0,
                true_positive_rate: 1.0,
                parameter: 0.01,
            },
            RocPoint {
                false_positive_rate: 1.0,
                true_positive_rate: 1.0,
                parameter: 0.99,
            },
        ]
        .into_iter()
        .collect();
        assert!((roc.area_under_curve() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_diagonal_is_half() {
        let roc: RocCurve = (0..=10)
            .map(|i| {
                let r = i as f64 / 10.0;
                RocPoint {
                    false_positive_rate: r,
                    true_positive_rate: r,
                    parameter: r,
                }
            })
            .collect();
        assert!((roc.area_under_curve() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_points_order() {
        let mut roc = RocCurve::new();
        roc.push(RocPoint {
            false_positive_rate: 0.7,
            true_positive_rate: 1.0,
            parameter: 0.5,
        });
        roc.push(RocPoint {
            false_positive_rate: 0.1,
            true_positive_rate: 0.8,
            parameter: 0.01,
        });
        let pts = roc.sorted_points();
        assert!(pts[0].false_positive_rate < pts[1].false_positive_rate);
        assert_eq!(roc.len(), 2);
        assert!(!roc.is_empty());
    }

    #[test]
    fn empty_curve_auc_zero() {
        assert_eq!(RocCurve::new().area_under_curve(), 0.0);
    }
}
